//! Model-check suite for the mesh's lock-free primitives (compiled
//! only under `--cfg sw_check`, where [`crate::ring`] runs on the
//! checker-instrumented types).
//!
//! The correct models prove, across every explored interleaving under
//! the simulated C11 memory model: the SPSC ring is race-free and FIFO
//! per link, full/empty detection is exact, and the backoff fuse
//! always trips. Each property is paired with a seeded-defect mutant
//! (the `*-mutant-*` models, see the `cfg(sw_check)` blocks in
//! `ring.rs`) that the checker must catch — run them via the
//! `sw-check` binary or the crate's `model_check` test.

use crate::ring::{Backoff, SpscRing};
use std::sync::Arc;
use sw_arch::V256;
use sw_check::models::{Expect, NamedModel};
use sw_check::time::Duration;
use sw_check::{thread, Config, ViolationKind};

fn no_tune(_: &mut Config) {}

/// The fuse model sleeps through many no-progress quiescence cycles
/// (that is the point of a timed-park fuse), so raise the livelock
/// strike budget above `timeout / PARK_SLEEP`.
fn fuse_tune(cfg: &mut Config) {
    cfg.livelock_limit = 128;
}

/// Producer streams 3 words through a capacity-2 ring while the
/// consumer drains it: order must survive every interleaving, and the
/// slot accesses must never race.
fn ring_spsc_fifo() {
    let r = Arc::new(SpscRing::new(2));
    let p = r.clone();
    let t = thread::spawn(move || {
        for i in 0..3u64 {
            while !p.try_push(V256::splat(i as f64)) {
                thread::yield_now();
            }
        }
    });
    for i in 0..3u64 {
        let v = loop {
            match r.try_pop() {
                Some(v) => break v,
                None => thread::yield_now(),
            }
        };
        assert_eq!(v, V256::splat(i as f64), "FIFO order violated");
    }
    assert_eq!(r.try_pop(), None, "ring should be drained");
    t.join().unwrap();
}

/// Full/empty detection on a capacity-1 ring, single-threaded: the
/// boundary arithmetic (free-running indices, wrap mask) is exact.
fn ring_full_empty() {
    let r = SpscRing::new(1);
    assert_eq!(r.try_pop(), None, "fresh ring must be empty");
    assert!(r.try_push(V256::splat(1.0)));
    assert!(
        !r.try_push(V256::splat(2.0)),
        "capacity-1 ring must report full"
    );
    assert_eq!(r.try_pop(), Some(V256::splat(1.0)));
    assert_eq!(r.try_pop(), None);
    // Wrap once more to cross the index mask.
    assert!(r.try_push(V256::splat(3.0)));
    assert_eq!(r.try_pop(), Some(V256::splat(3.0)));
}

/// The deadlock fuse must trip in bounded (virtual) time when nothing
/// ever makes progress — the property that turns a wedged peer into a
/// structured `MeshError::Deadlock` instead of a hang.
fn backoff_fuse_trips() {
    let mut b = Backoff::new(Duration::from_micros(200));
    let mut rounds = 0u32;
    while b.snooze() {
        rounds += 1;
        assert!(rounds < 1_000, "fuse never tripped");
    }
}

/// Mutant: tail published with `Relaxed` — consumer slot read races.
fn ring_mutant_relaxed_tail() {
    let r = Arc::new(SpscRing::new(2));
    let p = r.clone();
    let t = thread::spawn(move || {
        assert!(p.try_push_mutant_relaxed_tail(V256::splat(7.0)));
    });
    let v = loop {
        match r.try_pop() {
            Some(v) => break v,
            None => thread::yield_now(),
        }
    };
    assert_eq!(v, V256::splat(7.0));
    t.join().unwrap();
}

/// Mutant: slot written after the publish — consumer can pop junk.
fn ring_mutant_slot_after_publish() {
    let r = Arc::new(SpscRing::new(2));
    let p = r.clone();
    let t = thread::spawn(move || {
        assert!(p.try_push_mutant_slot_after_publish(V256::splat(7.0)));
    });
    let v = loop {
        match r.try_pop() {
            Some(v) => break v,
            None => thread::yield_now(),
        }
    };
    assert_eq!(v, V256::splat(7.0));
    t.join().unwrap();
}

/// Mutant: the fuse check is skipped — the waiter parks forever.
fn backoff_mutant_fuse_skip() {
    let mut b = Backoff::new(Duration::from_micros(200));
    let mut rounds = 0u32;
    loop {
        assert!(b.snooze_mutant_fuse_skip(), "mutant fuse cannot trip");
        rounds += 1;
        assert!(rounds < 10_000, "livelock detector should fire first");
    }
}

/// The mesh crate's registered models, consumed by the `sw-check`
/// binary and the crate's own `model_check` integration test.
pub fn models() -> Vec<NamedModel> {
    vec![
        NamedModel {
            name: "mesh/ring-spsc-fifo",
            about: "SPSC ring is race-free and FIFO per link under weak memory",
            expect: Expect::Pass,
            tune: no_tune,
            body: ring_spsc_fifo,
        },
        NamedModel {
            name: "mesh/ring-full-empty",
            about: "full/empty detection exact across the index wrap",
            expect: Expect::Pass,
            tune: no_tune,
            body: ring_full_empty,
        },
        NamedModel {
            name: "mesh/backoff-fuse",
            about: "deadlock fuse trips in bounded virtual time with no progress",
            expect: Expect::Pass,
            tune: fuse_tune,
            body: backoff_fuse_trips,
        },
        NamedModel {
            name: "mesh/ring-mutant-relaxed-tail",
            about: "SEEDED DEFECT: tail published Relaxed; slot access races",
            expect: Expect::Violation(ViolationKind::Race),
            tune: no_tune,
            body: ring_mutant_relaxed_tail,
        },
        NamedModel {
            name: "mesh/ring-mutant-slot-after-publish",
            about: "SEEDED DEFECT: slot written after publish; consumer races",
            expect: Expect::Violation(ViolationKind::Race),
            tune: no_tune,
            body: ring_mutant_slot_after_publish,
        },
        NamedModel {
            name: "mesh/backoff-mutant-fuse-skip",
            about: "SEEDED DEFECT: fuse check skipped; waiter parks forever",
            expect: Expect::Violation(ViolationKind::Livelock),
            tune: no_tune,
            body: backoff_mutant_fuse_skip,
        },
    ]
}
