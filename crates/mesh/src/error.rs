//! Structured mesh failures.

use std::fmt;
use std::time::Duration;

/// A mesh operation that could not complete.
///
/// The register-communication networks are blocking: a broadcast into a
/// full receive buffer and a `getr`/`getc` on an empty one both wait.
/// When the wait exceeds the mesh's deadlock fuse the operation returns
/// this error instead of hanging — the runtime converts it into a
/// structured DGEMM error carrying a rendezvous summary (the old
/// `panic!` behavior survives behind `Mesh::panic_on_deadlock`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// A blocked operation outlived the deadlock timeout.
    Deadlock {
        /// `(row, col)` of the CPE whose operation blocked.
        coord: (u8, u8),
        /// The blocked operation (`"row-broadcast"`, `"getr"`, …).
        op: &'static str,
        /// The fuse that tripped.
        timeout: Duration,
    },
}

impl MeshError {
    /// `(row, col)` of the CPE that observed the failure.
    pub fn coord(&self) -> (u8, u8) {
        match self {
            MeshError::Deadlock { coord, .. } => *coord,
        }
    }
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::Deadlock { coord, op, timeout } => write!(
                f,
                "mesh deadlock: CPE ({}, {}) {op} blocked >{timeout:?}",
                coord.0, coord.1
            ),
        }
    }
}

impl std::error::Error for MeshError {}
