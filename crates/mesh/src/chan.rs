//! A minimal bounded MPSC channel (std-only).
//!
//! The mesh previously used `crossbeam::channel`; this module provides
//! the small subset the ports need — bounded capacity, blocking sends
//! with a timeout, timed/non-blocking receives — on top of
//! `std::sync::{Mutex, Condvar}`, so the workspace builds without
//! external dependencies. Senders are cloneable; per-sender FIFO order
//! is preserved (there is a single queue guarded by one lock).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Creates a bounded channel with room for `cap` in-flight values.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "channel capacity must be positive");
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(cap),
            senders: 1,
            receiver_alive: true,
        }),
        cap,
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    cap: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

/// Why a send did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError {
    /// The buffer stayed full for the whole timeout.
    Timeout,
    /// The receiver was dropped.
    Disconnected,
}

/// Why a timed receive did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No value arrived within the timeout.
    Timeout,
    /// All senders were dropped and the buffer is empty.
    Disconnected,
}

/// The sending half; clone one per producer.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        // Survive poisoning: a peer that panicked mid-send must not
        // turn an unrelated port clone into a second panic.
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Blocks until there is room (or `timeout` elapses / the receiver
    /// is gone).
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !st.receiver_alive {
                return Err(SendTimeoutError::Disconnected);
            }
            if st.queue.len() < self.inner.cap {
                st.queue.push_back(value);
                drop(st);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout);
            }
            let (guard, _) = self
                .inner
                .not_full
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }
}

/// The receiving half (single consumer).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receiver_alive = false;
        self.inner.not_full.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives (or `timeout` elapses / all senders
    /// are gone with the buffer drained).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .inner
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let v = st.queue.pop_front();
        if v.is_some() {
            drop(st);
            self.inner.not_full.notify_one();
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send_timeout(i, Duration::from_secs(1)).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), i);
        }
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn send_times_out_when_full() {
        let (tx, _rx) = bounded(1);
        tx.send_timeout(1, Duration::from_millis(10)).unwrap();
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(10)),
            Err(SendTimeoutError::Timeout)
        );
    }

    #[test]
    fn recv_times_out_when_empty() {
        let (_tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_surfaces() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert_eq!(
            tx.send_timeout(1, Duration::from_millis(10)),
            Err(SendTimeoutError::Disconnected)
        );
        let (tx, rx) = bounded::<i32>(1);
        tx.send_timeout(7, Duration::from_millis(10)).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn backpressure_unblocks_across_threads() {
        let (tx, rx) = bounded(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100 {
                    tx.send_timeout(i, Duration::from_secs(5)).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), i);
            }
        });
    }
}
