//! Mesh construction and per-CPE ports.

use crate::chan::{bounded, Receiver, RecvTimeoutError, Sender};
use crate::error::MeshError;
use crate::stats::{GridCounters, MeshCounters, MeshGridStats, MeshStats};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use sw_arch::consts::{MESH_RECV_BUFFER_ENTRIES, MESH_TRANSIT_CYCLES};
use sw_arch::coord::{Coord, MESH_COLS, MESH_ROWS, N_CPES};
use sw_arch::V256;
use sw_faults::FaultInjector;
use sw_probe::trace::{Tracer, TrackId};

/// Default time a blocked send/receive waits before declaring the
/// communication scheme deadlocked.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// The 8×8 register-communication mesh. Build one per core group, hand
/// the 64 [`MeshPort`]s to the CPE threads.
pub struct Mesh {
    ports: Mutex<Option<Vec<MeshPort>>>,
    counters: Arc<MeshCounters>,
    grid: Arc<GridCounters>,
    panic_on_deadlock: Arc<AtomicBool>,
}

impl Default for Mesh {
    fn default() -> Self {
        Self::new()
    }
}

impl Mesh {
    /// Builds a mesh with the default deadlock timeout.
    pub fn new() -> Self {
        Self::with_timeout(DEFAULT_TIMEOUT)
    }

    /// Builds a mesh whose blocked operations fail after `timeout`
    /// (with [`MeshError::Deadlock`], or a panic when
    /// [`Mesh::panic_on_deadlock`] is set).
    pub fn with_timeout(timeout: Duration) -> Self {
        let counters = Arc::new(MeshCounters::default());
        let grid = Arc::new(GridCounters::default());
        let panic_on_deadlock = Arc::new(AtomicBool::new(false));
        // One bounded MPSC channel per (receiver, direction); the
        // channel preserves per-sender FIFO order, which is the ordering
        // guarantee the hardware's point-to-point mesh links give.
        let mut row_tx = Vec::with_capacity(N_CPES);
        let mut row_rx = Vec::with_capacity(N_CPES);
        let mut col_tx = Vec::with_capacity(N_CPES);
        let mut col_rx = Vec::with_capacity(N_CPES);
        for _ in 0..N_CPES {
            let (t, r) = bounded::<V256>(MESH_RECV_BUFFER_ENTRIES);
            row_tx.push(t);
            row_rx.push(Some(r));
            let (t, r) = bounded::<V256>(MESH_RECV_BUFFER_ENTRIES);
            col_tx.push(t);
            col_rx.push(Some(r));
        }
        let ports = (0..N_CPES)
            .map(|id| {
                let coord = Coord::from_id(id);
                let row_mates: Vec<Sender<V256>> = coord
                    .row_mates()
                    .filter(|m| *m != coord)
                    .map(|m| row_tx[m.id()].clone())
                    .collect();
                let col_mates: Vec<Sender<V256>> = coord
                    .col_mates()
                    .filter(|m| *m != coord)
                    .map(|m| col_tx[m.id()].clone())
                    .collect();
                MeshPort {
                    coord,
                    row_rx: row_rx[id].take().expect("port built once"),
                    col_rx: col_rx[id].take().expect("port built once"),
                    row_mates,
                    col_mates,
                    counters: Arc::clone(&counters),
                    grid: Arc::clone(&grid),
                    panic_on_deadlock: Arc::clone(&panic_on_deadlock),
                    injector: None,
                    sends: AtomicU64::new(0),
                    timeout,
                    trace: None,
                }
            })
            .collect();
        Mesh {
            ports: Mutex::new(Some(ports)),
            counters,
            grid,
            panic_on_deadlock,
        }
    }

    /// Restores the pre-structured-error behavior: blocked operations
    /// `panic!` with a diagnostic instead of returning
    /// [`MeshError::Deadlock`]. The escape hatch for harnesses built
    /// around the old propagating panic.
    pub fn panic_on_deadlock(&self) {
        self.panic_on_deadlock.store(true, Ordering::Relaxed);
    }

    /// Installs a fault injector consulted on every broadcast (word
    /// drops and the wedge scenario). Like [`Mesh::set_tracer`], must
    /// be called before the ports are taken.
    pub fn set_fault_injector(&self, injector: &Arc<FaultInjector>) {
        let mut guard = self.ports.lock().unwrap_or_else(|e| e.into_inner());
        let ports = guard
            .as_mut()
            .expect("Mesh::set_fault_injector must be called before the ports are taken");
        for p in ports.iter_mut() {
            p.injector = Some(Arc::clone(injector));
        }
    }

    /// Per-CPE traffic snapshot (the rendezvous summary's input).
    pub fn grid_stats(&self) -> MeshGridStats {
        self.grid.snapshot()
    }

    /// Attaches a simulated-time tracer: every broadcast then emits a
    /// [`MESH_TRANSIT_CYCLES`]-long span on the link it occupies, one
    /// track per row link and one per column link (process `"mesh"`).
    /// Link time is a shared per-track cursor, so broadcasts from CPEs
    /// sharing a link serialize on the trace exactly as they would on
    /// the wire. Must be called before [`Mesh::ports`]; a disabled
    /// tracer is a no-op.
    pub fn set_tracer(&self, tracer: &Tracer) {
        if !tracer.is_enabled() {
            return;
        }
        let mut guard = self.ports.lock().unwrap();
        let ports = guard
            .as_mut()
            .expect("Mesh::set_tracer must be called before the ports are taken");
        let rows: Vec<LinkTrace> = (0..MESH_ROWS)
            .map(|r| LinkTrace::new(tracer.track("mesh", format!("row {r}"))))
            .collect();
        let cols: Vec<LinkTrace> = (0..MESH_COLS)
            .map(|c| LinkTrace::new(tracer.track("mesh", format!("col {c}"))))
            .collect();
        for p in ports.iter_mut() {
            p.trace = Some(PortTrace {
                tracer: tracer.clone(),
                row: rows[p.coord.row as usize].clone(),
                col: cols[p.coord.col as usize].clone(),
            });
        }
    }

    /// Takes the 64 ports (id order). Panics if called twice — each CPE
    /// thread owns its port exclusively.
    pub fn ports(&self) -> Vec<MeshPort> {
        self.ports
            .lock()
            .unwrap()
            .take()
            .expect("Mesh::ports may only be taken once")
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> MeshStats {
        self.counters.snapshot()
    }
}

/// One mesh link's timeline: a trace track plus the simulated-cycle
/// cursor all broadcasts on that link advance through.
#[derive(Clone)]
struct LinkTrace {
    track: TrackId,
    clock: Arc<AtomicU64>,
}

impl LinkTrace {
    fn new(track: TrackId) -> Self {
        LinkTrace {
            track,
            clock: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Claims the next `MESH_TRANSIT_CYCLES` window and emits the span.
    fn emit(&self, tracer: &Tracer, name: &'static str, copies: u64) {
        let t0 = self.clock.fetch_add(MESH_TRANSIT_CYCLES, Ordering::Relaxed);
        tracer.span_args(
            self.track,
            "mesh",
            name,
            t0,
            t0 + MESH_TRANSIT_CYCLES,
            &[("bytes", copies * 32)],
        );
    }
}

/// Per-port tracing state installed by [`Mesh::set_tracer`].
struct PortTrace {
    tracer: Tracer,
    row: LinkTrace,
    col: LinkTrace,
}

/// One CPE's window onto the mesh: its send links to row/column mates
/// and its two receive buffers.
pub struct MeshPort {
    coord: Coord,
    row_rx: Receiver<V256>,
    col_rx: Receiver<V256>,
    row_mates: Vec<Sender<V256>>,
    col_mates: Vec<Sender<V256>>,
    counters: Arc<MeshCounters>,
    grid: Arc<GridCounters>,
    panic_on_deadlock: Arc<AtomicBool>,
    injector: Option<Arc<FaultInjector>>,
    /// Broadcasts issued by this port (the injector's deterministic
    /// per-send coordinate).
    sends: AtomicU64,
    timeout: Duration,
    trace: Option<PortTrace>,
}

impl MeshPort {
    /// The CPE this port belongs to.
    #[inline]
    pub fn coord(&self) -> Coord {
        self.coord
    }

    fn cell(&self) -> &crate::stats::CellCounters {
        self.grid
            .cell(self.coord.row as usize, self.coord.col as usize)
    }

    /// The shared broadcast path of both networks: consults the fault
    /// injector (wedge suppression, per-mate word drops), enqueues to
    /// the surviving mates, and converts a blocked send into
    /// [`MeshError::Deadlock`] (or the legacy panic).
    fn bcast(&self, v: V256, col_net: bool, op: &'static str) -> Result<(), MeshError> {
        let send_idx = self.sends.fetch_add(1, Ordering::Relaxed);
        if let Some(inj) = &self.injector {
            if inj.cpe_wedged(self.coord.id()) {
                // The wedged CPE silently stops sending: its group
                // peers starve and the deadlock fuse trips downstream.
                inj.note_wedge_suppression();
                return Ok(());
            }
        }
        let mates = if col_net {
            &self.col_mates
        } else {
            &self.row_mates
        };
        let mut delivered = 0u64;
        for (i, tx) in mates.iter().enumerate() {
            if let Some(inj) = &self.injector {
                if inj.mesh_drop(self.coord.id(), send_idx * 8 + i as u64) {
                    continue; // the word is lost on this link
                }
            }
            if tx.send_timeout(v, self.timeout).is_err() {
                if self.panic_on_deadlock.load(Ordering::Relaxed) {
                    panic!(
                        "mesh deadlock: {} {op} blocked >{:?} (mate #{i} not draining)",
                        self.coord, self.timeout
                    );
                }
                return Err(MeshError::Deadlock {
                    coord: (self.coord.row, self.coord.col),
                    op,
                    timeout: self.timeout,
                });
            }
            delivered += 1;
        }
        if col_net {
            self.counters.add_col_sent(delivered);
        } else {
            self.counters.add_row_sent(delivered);
        }
        self.cell().add_sent(col_net, delivered);
        if let Some(t) = &self.trace {
            let link = if col_net { &t.col } else { &t.row };
            let name = if col_net { "col.bcast" } else { "row.bcast" };
            link.emit(&t.tracer, name, delivered);
        }
        Ok(())
    }

    fn get(&self, col_net: bool, op: &'static str) -> Result<V256, MeshError> {
        let rx = if col_net { &self.col_rx } else { &self.row_rx };
        match rx.recv_timeout(self.timeout) {
            Ok(v) => {
                if col_net {
                    self.counters.add_col_recv(1);
                } else {
                    self.counters.add_row_recv(1);
                }
                self.cell().add_recv(col_net, 1);
                Ok(v)
            }
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                // One word of unmet demand: the rendezvous summary's
                // deadlock signature.
                self.cell().add_starved(col_net);
                if self.panic_on_deadlock.load(Ordering::Relaxed) {
                    panic!(
                        "mesh deadlock: {} {op} starved >{:?}",
                        self.coord, self.timeout
                    );
                }
                Err(MeshError::Deadlock {
                    coord: (self.coord.row, self.coord.col),
                    op,
                    timeout: self.timeout,
                })
            }
        }
    }

    /// Row broadcast: puts `v` into the row receive buffer of the other
    /// 7 CPEs in this CPE's mesh row (what `vldr`'s broadcast half
    /// does). Blocks on full buffers; fails on deadlock timeout.
    pub fn row_bcast(&self, v: V256) -> Result<(), MeshError> {
        self.bcast(v, false, "row-broadcast")
    }

    /// Column broadcast: puts `v` into the column receive buffer of the
    /// other 7 CPEs in this CPE's mesh column (what `lddec`'s broadcast
    /// half does).
    pub fn col_bcast(&self, v: V256) -> Result<(), MeshError> {
        self.bcast(v, true, "col-broadcast")
    }

    /// Receives one word from the row network (the `getr` instruction).
    pub fn getr(&self) -> Result<V256, MeshError> {
        self.get(false, "getr")
    }

    /// Receives one word from the column network (the `getc`
    /// instruction).
    pub fn getc(&self) -> Result<V256, MeshError> {
        self.get(true, "getc")
    }

    /// Non-blocking `getr`, for tests and drain checks.
    pub fn try_getr(&self) -> Option<V256> {
        let v = self.row_rx.try_recv();
        if v.is_some() {
            self.counters.add_row_recv(1);
            self.cell().add_recv(false, 1);
        }
        v
    }

    /// Non-blocking `getc`.
    pub fn try_getc(&self) -> Option<V256> {
        let v = self.col_rx.try_recv();
        if v.is_some() {
            self.counters.add_col_recv(1);
            self.cell().add_recv(true, 1);
        }
        v
    }

    /// Broadcasts a whole panel (length multiple of 4 doubles) along the
    /// row, 256 bits at a time — the panel-granularity view of the
    /// per-iteration `vldr` stream the kernel performs.
    pub fn row_bcast_panel(&self, panel: &[f64]) -> Result<(), MeshError> {
        assert_eq!(
            panel.len() % 4,
            0,
            "panel length must be a multiple of 4 doubles"
        );
        for chunk in panel.chunks_exact(4) {
            self.row_bcast(V256::load(chunk))?;
        }
        Ok(())
    }

    /// Broadcasts a whole panel along the column.
    pub fn col_bcast_panel(&self, panel: &[f64]) -> Result<(), MeshError> {
        assert_eq!(
            panel.len() % 4,
            0,
            "panel length must be a multiple of 4 doubles"
        );
        for chunk in panel.chunks_exact(4) {
            self.col_bcast(V256::load(chunk))?;
        }
        Ok(())
    }

    /// Receives a whole panel from the row network.
    pub fn recv_row_panel(&self, out: &mut [f64]) -> Result<(), MeshError> {
        assert_eq!(
            out.len() % 4,
            0,
            "panel length must be a multiple of 4 doubles"
        );
        for chunk in out.chunks_exact_mut(4) {
            self.getr()?.store(chunk);
        }
        Ok(())
    }

    /// Receives a whole panel from the column network.
    pub fn recv_col_panel(&self, out: &mut [f64]) -> Result<(), MeshError> {
        assert_eq!(
            out.len() % 4,
            0,
            "panel length must be a multiple of 4 doubles"
        );
        for chunk in out.chunks_exact_mut(4) {
            self.getc()?.store(chunk);
        }
        Ok(())
    }
}

// A port crossing threads is the whole point; the channel endpoints are
// Send, and Coord/counters are Send + Sync.
const _: () = {
    fn assert_send<T: Send>() {}
    fn check() {
        assert_send::<MeshPort>();
    }
    let _ = check;
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_taken_once() {
        let mesh = Mesh::new();
        let p = mesh.ports();
        assert_eq!(p.len(), N_CPES);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mesh.ports())).is_err());
    }

    #[test]
    fn traced_broadcasts_serialize_on_the_link() {
        let tracer = Tracer::enabled();
        let mesh = Mesh::new();
        mesh.set_tracer(&tracer);
        let ports = mesh.ports();
        // Two senders in row 3 and one in column 5 — the row spans must
        // share one track and tile it back to back.
        ports[Coord::new(3, 0).id()].row_bcast(V256::ZERO).unwrap();
        ports[Coord::new(3, 1).id()].row_bcast(V256::ZERO).unwrap();
        ports[Coord::new(0, 5).id()].col_bcast(V256::ZERO).unwrap();
        let data = tracer.take();
        assert_eq!(data.tracks.len(), MESH_ROWS + MESH_COLS);
        assert_eq!(data.spans.len(), 3);
        let row_spans: Vec<_> = data
            .spans
            .iter()
            .filter(|s| s.name == "row.bcast")
            .collect();
        assert_eq!(row_spans.len(), 2);
        assert_eq!(row_spans[0].track, row_spans[1].track);
        let mut starts = [row_spans[0].start, row_spans[1].start];
        starts.sort_unstable();
        assert_eq!(starts, [0, MESH_TRANSIT_CYCLES]);
        assert_eq!(row_spans[0].end - row_spans[0].start, MESH_TRANSIT_CYCLES);
        // 7 delivered copies of 32 bytes each.
        assert_eq!(row_spans[0].args, vec![("bytes", 7 * 32)]);
    }

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let mesh = Mesh::new();
        mesh.set_tracer(&Tracer::disabled());
        let ports = mesh.ports();
        assert!(ports[0].trace.is_none());
    }

    #[test]
    fn mates_exclude_self() {
        let mesh = Mesh::new();
        let ports = mesh.ports();
        for p in &ports {
            assert_eq!(p.row_mates.len(), sw_arch::coord::MESH_COLS - 1);
            assert_eq!(p.col_mates.len(), sw_arch::coord::MESH_ROWS - 1);
        }
    }
}
