//! Mesh construction and per-CPE ports.
//!
//! Two transports back the same [`MeshPort`] API:
//!
//! * [`MeshTransport::Ring`] (the default): each receiver owns seven
//!   lock-free SPSC rings per network, one per potential sender. The
//!   collective data-sharing schedule (§III-B of the paper) guarantees
//!   at most one active sender per row/column group between barriers —
//!   an invariant `sw-lint`'s multi-sender rendezvous pass checks
//!   statically — so a receive drains whichever single ring is live
//!   and caches it for the next word.
//! * [`MeshTransport::Fallback`]: the original bounded Mutex+Condvar
//!   MPSC channel per (receiver, network). Kept for harnesses that
//!   genuinely interleave multiple senders into one buffer between
//!   synchronization points, and as the baseline `mesh_bench` measures
//!   the ring path against.
//!
//! On top of either transport, the port offers *bulk* operations
//! ([`MeshPort::row_bcast_panel`], [`MeshPort::get_panel`],
//! [`MeshPort::row_bcast_words`], …) that move a whole panel in one
//! synchronization episode with one batched counter/trace update —
//! while still consuming one `send_idx` per word, so the fault
//! injector's per-word drop/wedge decisions are bit-for-bit identical
//! to the per-word path.

use crate::chan::{bounded, Receiver, Sender};
use crate::error::MeshError;
use crate::ring::{Backoff, SpscRing};
use crate::stats::{GridCounters, MeshCounters, MeshGridStats, MeshStats};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use sw_arch::consts::{MESH_RECV_BUFFER_ENTRIES, MESH_TRANSIT_CYCLES};
use sw_arch::coord::{Coord, MESH_COLS, MESH_ROWS, N_CPES};
use sw_arch::V256;
use sw_faults::FaultInjector;
use sw_probe::flight::{self, EventKind, FlightRecorder};
use sw_probe::trace::{Tracer, TrackId};

/// Default time a blocked send/receive waits before declaring the
/// communication scheme deadlocked.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// Which link implementation carries mesh words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeshTransport {
    /// Lock-free per-(sender, receiver) SPSC rings — the fast path.
    /// Requires the collective schedule's single-active-sender
    /// discipline between synchronization points (receives drain one
    /// live ring; concurrent senders would interleave arbitrarily).
    #[default]
    Ring,
    /// The original Mutex+Condvar MPSC channel per receiver. Safe for
    /// arbitrary sender interleavings; slower.
    Fallback,
}

/// The 8×8 register-communication mesh. Build one per core group, hand
/// the 64 [`MeshPort`]s to the CPE threads.
pub struct Mesh {
    ports: Mutex<Option<Vec<MeshPort>>>,
    counters: Arc<MeshCounters>,
    grid: Arc<GridCounters>,
    panic_on_deadlock: Arc<AtomicBool>,
}

impl Default for Mesh {
    fn default() -> Self {
        Self::new()
    }
}

impl Mesh {
    /// Builds a mesh with the default deadlock timeout.
    pub fn new() -> Self {
        Self::with_timeout(DEFAULT_TIMEOUT)
    }

    /// Builds a mesh whose blocked operations fail after `timeout`
    /// (with [`MeshError::Deadlock`], or a panic when
    /// [`Mesh::panic_on_deadlock`] is set).
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_transport(timeout, MeshTransport::default())
    }

    /// Builds a mesh on an explicit [`MeshTransport`].
    pub fn with_transport(timeout: Duration, transport: MeshTransport) -> Self {
        let counters = Arc::new(MeshCounters::default());
        let grid = Arc::new(GridCounters::default());
        let panic_on_deadlock = Arc::new(AtomicBool::new(false));
        let links = match transport {
            MeshTransport::Ring => build_ring_links(),
            MeshTransport::Fallback => build_chan_links(),
        };
        let ports = links
            .into_iter()
            .enumerate()
            .map(|(id, (row_tx, row_rx, col_tx, col_rx))| MeshPort {
                coord: Coord::from_id(id),
                row_rx,
                col_rx,
                row_tx,
                col_tx,
                counters: Arc::clone(&counters),
                grid: Arc::clone(&grid),
                panic_on_deadlock: Arc::clone(&panic_on_deadlock),
                injector: None,
                sends: AtomicU64::new(0),
                timeout,
                trace: None,
                flight: None,
            })
            .collect();
        Mesh {
            ports: Mutex::new(Some(ports)),
            counters,
            grid,
            panic_on_deadlock,
        }
    }

    /// Restores the pre-structured-error behavior: blocked operations
    /// `panic!` with a diagnostic instead of returning
    /// [`MeshError::Deadlock`]. The escape hatch for harnesses built
    /// around the old propagating panic.
    pub fn panic_on_deadlock(&self) {
        // Relaxed: advisory debug flag. No data is published under
        // it — the only consumer turns an error return into a panic,
        // and a stale read merely delays that escalation by one call.
        self.panic_on_deadlock.store(true, Ordering::Relaxed);
    }

    /// Installs a fault injector consulted on every broadcast (word
    /// drops and the wedge scenario). Like [`Mesh::set_tracer`], must
    /// be called before the ports are taken.
    pub fn set_fault_injector(&self, injector: &Arc<FaultInjector>) {
        let mut guard = self.ports.lock().unwrap_or_else(|e| e.into_inner());
        let ports = guard
            .as_mut()
            .expect("Mesh::set_fault_injector must be called before the ports are taken");
        for p in ports.iter_mut() {
            p.injector = Some(Arc::clone(injector));
        }
    }

    /// Attaches the run's flight recorder: every synchronization
    /// episode (and every injected mesh fault) is then recorded on the
    /// owning CPE's event ring, stamped with that CPE's current clock.
    /// The port records *events only* — mesh time is charged by the
    /// `CpeCtx` wrappers, because kernel-driven mesh traffic is already
    /// inside the kernel's cycle report. Like [`Mesh::set_tracer`],
    /// must be called before the ports are taken.
    pub fn set_flight_recorder(&self, recorder: &Arc<FlightRecorder>) {
        let mut guard = self.ports.lock().unwrap_or_else(|e| e.into_inner());
        let ports = guard
            .as_mut()
            .expect("Mesh::set_flight_recorder must be called before the ports are taken");
        for p in ports.iter_mut() {
            p.flight = Some(Arc::clone(recorder));
        }
    }

    /// Per-CPE traffic snapshot (the rendezvous summary's input).
    pub fn grid_stats(&self) -> MeshGridStats {
        self.grid.snapshot()
    }

    /// Attaches a simulated-time tracer: every broadcast then emits a
    /// [`MESH_TRANSIT_CYCLES`]-per-word span on the link it occupies,
    /// one track per row link and one per column link (process
    /// `"mesh"`). Link time is a shared per-track cursor, so broadcasts
    /// from CPEs sharing a link serialize on the trace exactly as they
    /// would on the wire. Must be called before [`Mesh::ports`]; a
    /// disabled tracer is a no-op.
    pub fn set_tracer(&self, tracer: &Tracer) {
        if !tracer.is_enabled() {
            return;
        }
        let mut guard = self.ports.lock().unwrap();
        let ports = guard
            .as_mut()
            .expect("Mesh::set_tracer must be called before the ports are taken");
        let rows: Vec<LinkTrace> = (0..MESH_ROWS)
            .map(|r| LinkTrace::new(tracer.track("mesh", format!("row {r}"))))
            .collect();
        let cols: Vec<LinkTrace> = (0..MESH_COLS)
            .map(|c| LinkTrace::new(tracer.track("mesh", format!("col {c}"))))
            .collect();
        for p in ports.iter_mut() {
            p.trace = Some(PortTrace {
                tracer: tracer.clone(),
                row: rows[p.coord.row as usize].clone(),
                col: cols[p.coord.col as usize].clone(),
            });
        }
    }

    /// Takes the 64 ports (id order). Panics if called twice — each CPE
    /// thread owns its port exclusively.
    pub fn ports(&self) -> Vec<MeshPort> {
        self.ports
            .lock()
            .unwrap()
            .take()
            .expect("Mesh::ports may only be taken once")
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> MeshStats {
        self.counters.snapshot()
    }
}

/// One CPE's links for both networks:
/// `(row_tx, row_rx, col_tx, col_rx)`.
type PortLinks = (TxLinks, RxLinks, TxLinks, RxLinks);

/// Wires the ring transport: for each network, every receiver owns one
/// SPSC ring per mate, and each mate holds the producer end. Both the
/// receiver's ring list and the sender's link list are in mate-iteration
/// order, so the fault injector's per-mate drop index is the same as on
/// the fallback transport.
fn build_ring_links() -> Vec<PortLinks> {
    // rings[receiver][sender] per network; only same-row / same-column
    // pairs are populated.
    let mut row_rings: Vec<Vec<Option<Arc<SpscRing>>>> = vec![vec![None; N_CPES]; N_CPES];
    let mut col_rings: Vec<Vec<Option<Arc<SpscRing>>>> = vec![vec![None; N_CPES]; N_CPES];
    for id in 0..N_CPES {
        let coord = Coord::from_id(id);
        for m in coord.row_mates().filter(|m| *m != coord) {
            row_rings[id][m.id()] = Some(Arc::new(SpscRing::new(MESH_RECV_BUFFER_ENTRIES)));
        }
        for m in coord.col_mates().filter(|m| *m != coord) {
            col_rings[id][m.id()] = Some(Arc::new(SpscRing::new(MESH_RECV_BUFFER_ENTRIES)));
        }
    }
    let ring = |grid: &[Vec<Option<Arc<SpscRing>>>], rx: usize, tx: usize| {
        Arc::clone(grid[rx][tx].as_ref().expect("ring exists for mate pair"))
    };
    (0..N_CPES)
        .map(|id| {
            let coord = Coord::from_id(id);
            let row_tx = TxLinks::Ring(
                coord
                    .row_mates()
                    .filter(|m| *m != coord)
                    .map(|m| ring(&row_rings, m.id(), id))
                    .collect(),
            );
            let col_tx = TxLinks::Ring(
                coord
                    .col_mates()
                    .filter(|m| *m != coord)
                    .map(|m| ring(&col_rings, m.id(), id))
                    .collect(),
            );
            let row_rx = RxLinks::Ring {
                rings: coord
                    .row_mates()
                    .filter(|m| *m != coord)
                    .map(|m| ring(&row_rings, id, m.id()))
                    .collect(),
                last: Cell::new(0),
            };
            let col_rx = RxLinks::Ring {
                rings: coord
                    .col_mates()
                    .filter(|m| *m != coord)
                    .map(|m| ring(&col_rings, id, m.id()))
                    .collect(),
                last: Cell::new(0),
            };
            (row_tx, row_rx, col_tx, col_rx)
        })
        .collect()
}

/// Wires the fallback transport: one bounded MPSC channel per
/// (receiver, network); the channel preserves per-sender FIFO order,
/// which is the ordering guarantee the hardware's point-to-point mesh
/// links give.
fn build_chan_links() -> Vec<PortLinks> {
    let mut row_tx = Vec::with_capacity(N_CPES);
    let mut row_rx = Vec::with_capacity(N_CPES);
    let mut col_tx = Vec::with_capacity(N_CPES);
    let mut col_rx = Vec::with_capacity(N_CPES);
    for _ in 0..N_CPES {
        let (t, r) = bounded::<V256>(MESH_RECV_BUFFER_ENTRIES);
        row_tx.push(t);
        row_rx.push(Some(r));
        let (t, r) = bounded::<V256>(MESH_RECV_BUFFER_ENTRIES);
        col_tx.push(t);
        col_rx.push(Some(r));
    }
    (0..N_CPES)
        .map(|id| {
            let coord = Coord::from_id(id);
            let row_links = TxLinks::Chan(
                coord
                    .row_mates()
                    .filter(|m| *m != coord)
                    .map(|m| row_tx[m.id()].clone())
                    .collect(),
            );
            let col_links = TxLinks::Chan(
                coord
                    .col_mates()
                    .filter(|m| *m != coord)
                    .map(|m| col_tx[m.id()].clone())
                    .collect(),
            );
            (
                row_links,
                RxLinks::Chan(row_rx[id].take().expect("port built once")),
                col_links,
                RxLinks::Chan(col_rx[id].take().expect("port built once")),
            )
        })
        .collect()
}

/// A port's send side for one network: one link per mate, in mate
/// order (the order the fault injector's drop index is keyed on).
enum TxLinks {
    Ring(Vec<Arc<SpscRing>>),
    Chan(Vec<Sender<V256>>),
}

impl TxLinks {
    fn len(&self) -> usize {
        match self {
            TxLinks::Ring(r) => r.len(),
            TxLinks::Chan(c) => c.len(),
        }
    }

    /// Sends `v` to mate `i`, blocking up to `timeout` when the mate's
    /// buffer is full. Returns `false` on the deadlock fuse.
    fn send(&self, i: usize, v: V256, timeout: Duration) -> bool {
        match self {
            TxLinks::Ring(rings) => {
                let ring = &rings[i];
                if ring.try_push(v) {
                    return true;
                }
                let mut backoff = Backoff::new(timeout);
                loop {
                    if ring.try_push(v) {
                        return true;
                    }
                    if !backoff.snooze() {
                        return false;
                    }
                }
            }
            TxLinks::Chan(txs) => txs[i].send_timeout(v, timeout).is_ok(),
        }
    }
}

/// A port's receive side for one network. The ring variant scans its
/// per-sender rings starting from the last one that produced a word —
/// under the collective schedule exactly one is live between barriers,
/// so the scan is a cache hit after the first word of an episode.
enum RxLinks {
    Ring {
        rings: Vec<Arc<SpscRing>>,
        last: Cell<usize>,
    },
    Chan(Receiver<V256>),
}

impl RxLinks {
    /// Non-blocking receive.
    fn try_recv(&self) -> Option<V256> {
        match self {
            RxLinks::Ring { rings, last } => {
                let n = rings.len();
                let start = last.get();
                for k in 0..n {
                    let idx = (start + k) % n;
                    if let Some(v) = rings[idx].try_pop() {
                        last.set(idx);
                        return Some(v);
                    }
                }
                None
            }
            RxLinks::Chan(rx) => rx.try_recv(),
        }
    }

    /// Blocking receive with the deadlock fuse. `None` means the fuse
    /// tripped.
    fn recv(&self, timeout: Duration) -> Option<V256> {
        match self {
            RxLinks::Ring { .. } => {
                if let Some(v) = self.try_recv() {
                    return Some(v);
                }
                let mut backoff = Backoff::new(timeout);
                loop {
                    if let Some(v) = self.try_recv() {
                        return Some(v);
                    }
                    if !backoff.snooze() {
                        return None;
                    }
                }
            }
            RxLinks::Chan(rx) => rx.recv_timeout(timeout).ok(),
        }
    }
}

/// One mesh link's timeline: a trace track plus the simulated-cycle
/// cursor all broadcasts on that link advance through.
#[derive(Clone)]
struct LinkTrace {
    track: TrackId,
    clock: Arc<AtomicU64>,
}

impl LinkTrace {
    fn new(track: TrackId) -> Self {
        LinkTrace {
            track,
            clock: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Claims the next `n_words * MESH_TRANSIT_CYCLES` window and emits
    /// one span covering it. For `n_words == 1` this is exactly the old
    /// per-word span; a batch occupies the link for the same simulated
    /// time as its words would individually, in one span.
    fn emit(&self, tracer: &Tracer, name: &'static str, copies: u64, n_words: u64) {
        if n_words == 0 {
            return;
        }
        let dur = n_words * MESH_TRANSIT_CYCLES;
        // Relaxed: the clock is a statistics ledger, not a
        // synchronization point. The RMW keeps `clock == Σ busy`
        // exact under concurrent adds; readers either join first or
        // accept a momentarily stale total.
        let t0 = self.clock.fetch_add(dur, Ordering::Relaxed);
        tracer.span_args(
            self.track,
            "mesh",
            name,
            t0,
            t0 + dur,
            &[("bytes", copies * 32)],
        );
    }
}

/// Per-port tracing state installed by [`Mesh::set_tracer`].
struct PortTrace {
    tracer: Tracer,
    row: LinkTrace,
    col: LinkTrace,
}

/// One CPE's window onto the mesh: its send links to row/column mates
/// and its two receive buffers.
///
/// A port is `Send` but deliberately `!Sync` (the receive side caches
/// the live ring in a [`Cell`]): exactly one thread drives it, which is
/// what makes the SPSC ring transport sound.
pub struct MeshPort {
    coord: Coord,
    row_rx: RxLinks,
    col_rx: RxLinks,
    row_tx: TxLinks,
    col_tx: TxLinks,
    counters: Arc<MeshCounters>,
    grid: Arc<GridCounters>,
    panic_on_deadlock: Arc<AtomicBool>,
    injector: Option<Arc<FaultInjector>>,
    /// Broadcasts issued by this port (the injector's deterministic
    /// per-send coordinate).
    sends: AtomicU64,
    timeout: Duration,
    trace: Option<PortTrace>,
    /// The run's black box; episodes/faults are recorded on this
    /// port's CPE ring (events only, no time charging — see
    /// [`Mesh::set_flight_recorder`]).
    flight: Option<Arc<FlightRecorder>>,
}

impl MeshPort {
    /// The CPE this port belongs to.
    #[inline]
    pub fn coord(&self) -> Coord {
        self.coord
    }

    fn cell(&self) -> &crate::stats::CellCounters {
        self.grid
            .cell(self.coord.row as usize, self.coord.col as usize)
    }

    /// Records one synchronization episode on this CPE's flight ring.
    fn flight_episode(&self, col_net: bool, get: bool, outcome: u32, words: u64) {
        if let Some(f) = &self.flight {
            f.record(
                self.coord.id(),
                EventKind::MeshEpisode,
                flight::mesh_episode_code(col_net, get, outcome),
                words,
            );
        }
    }

    /// Records an injected mesh fault on this CPE's flight ring.
    fn flight_fault(&self, code: u32, arg: u64) {
        if let Some(f) = &self.flight {
            f.record(self.coord.id(), EventKind::FaultDecision, code, arg);
        }
    }

    fn deadlock(&self, op: &'static str, detail: std::fmt::Arguments<'_>) -> MeshError {
        // Relaxed: pairs with the advisory store in
        // `panic_on_deadlock` — see the audit note there.
        if self.panic_on_deadlock.load(Ordering::Relaxed) {
            panic!("mesh deadlock: {} {op} {detail}", self.coord);
        }
        MeshError::Deadlock {
            coord: (self.coord.row, self.coord.col),
            op,
            timeout: self.timeout,
        }
    }

    /// The shared broadcast path of both networks, batched over
    /// `n_words` words produced by `word_at`: consults the fault
    /// injector per word (wedge suppression, per-mate word drops),
    /// enqueues to the surviving mates, and updates counters and trace
    /// ONCE for the whole batch. A blocked send becomes
    /// [`MeshError::Deadlock`] (or the legacy panic) after first
    /// flushing the accounting of the words that completed — exactly
    /// what `n_words` per-word calls would have recorded.
    fn bcast_stream(
        &self,
        n_words: usize,
        word_at: impl Fn(usize) -> V256,
        col_net: bool,
        op: &'static str,
    ) -> Result<(), MeshError> {
        if n_words == 0 {
            return Ok(());
        }
        // Relaxed: monotone send counter used for fault-injection
        // bookkeeping and stats. The RMW guarantees no lost counts;
        // ordering against the payload is provided by the ring's own
        // release/acquire publish, never by this counter.
        let send_base = self.sends.fetch_add(n_words as u64, Ordering::Relaxed);
        if let Some(inj) = &self.injector {
            if inj.cpe_wedged(self.coord.id()) {
                // The wedged CPE silently stops sending: its group
                // peers starve and the deadlock fuse trips downstream.
                // One suppression per word, as the per-word path counts.
                inj.note_wedge_suppressions(n_words as u64);
                self.flight_fault(flight::fault_code::MESH_WEDGE, send_base);
                self.flight_episode(col_net, false, flight::mesh_outcome::WEDGED, n_words as u64);
                return Ok(());
            }
        }
        let links = if col_net { &self.col_tx } else { &self.row_tx };
        let mut delivered = 0u64;
        let flush = |delivered: u64, completed_words: u64| {
            if delivered > 0 {
                if col_net {
                    self.counters.add_col_sent(delivered);
                } else {
                    self.counters.add_row_sent(delivered);
                }
                self.cell().add_sent(col_net, delivered);
            }
            if let Some(t) = &self.trace {
                let link = if col_net { &t.col } else { &t.row };
                let name = if col_net { "col.bcast" } else { "row.bcast" };
                link.emit(&t.tracer, name, delivered, completed_words);
            }
        };
        for w in 0..n_words {
            let send_idx = send_base + w as u64;
            let v = word_at(w);
            for i in 0..links.len() {
                if let Some(inj) = &self.injector {
                    if inj.mesh_drop(self.coord.id(), send_idx * 8 + i as u64) {
                        self.flight_fault(flight::fault_code::MESH_DROP, send_idx * 8 + i as u64);
                        continue; // the word is lost on this link
                    }
                }
                if !links.send(i, v, self.timeout) {
                    // Words 0..w completed; word w accounts nothing,
                    // matching a per-word call that errors mid-mates.
                    flush(delivered, w as u64);
                    self.flight_episode(col_net, false, flight::mesh_outcome::DEADLOCK, w as u64);
                    return Err(self.deadlock(
                        op,
                        format_args!("blocked >{:?} (mate #{i} not draining)", self.timeout),
                    ));
                }
                delivered += 1;
            }
        }
        flush(delivered, n_words as u64);
        self.flight_episode(col_net, false, flight::mesh_outcome::OK, n_words as u64);
        Ok(())
    }

    /// The shared receive path of both networks, batched over
    /// `n_words`: drains words into `sink(word_index, word)` and
    /// updates counters once. A timeout first accounts the words that
    /// did arrive, then records one starved word — exactly what
    /// `n_words` per-word calls would have recorded.
    fn get_stream(
        &self,
        n_words: usize,
        mut sink: impl FnMut(usize, V256),
        col_net: bool,
        op: &'static str,
    ) -> Result<(), MeshError> {
        let rx = if col_net { &self.col_rx } else { &self.row_rx };
        let mut got = 0u64;
        let flush = |got: u64| {
            if got > 0 {
                if col_net {
                    self.counters.add_col_recv(got);
                } else {
                    self.counters.add_row_recv(got);
                }
                self.cell().add_recv(col_net, got);
            }
        };
        for w in 0..n_words {
            match rx.recv(self.timeout) {
                Some(v) => {
                    sink(w, v);
                    got += 1;
                }
                None => {
                    // One word of unmet demand: the rendezvous
                    // summary's deadlock signature.
                    flush(got);
                    self.cell().add_starved(col_net);
                    self.flight_episode(col_net, true, flight::mesh_outcome::STARVED, got);
                    return Err(self.deadlock(op, format_args!("starved >{:?}", self.timeout)));
                }
            }
        }
        flush(got);
        if n_words > 0 {
            self.flight_episode(col_net, true, flight::mesh_outcome::OK, got);
        }
        Ok(())
    }

    /// Row broadcast: puts `v` into the row receive buffer of the other
    /// 7 CPEs in this CPE's mesh row (what `vldr`'s broadcast half
    /// does). Blocks on full buffers; fails on deadlock timeout.
    pub fn row_bcast(&self, v: V256) -> Result<(), MeshError> {
        self.bcast_stream(1, |_| v, false, "row-broadcast")
    }

    /// Column broadcast: puts `v` into the column receive buffer of the
    /// other 7 CPEs in this CPE's mesh column (what `lddec`'s broadcast
    /// half does).
    pub fn col_bcast(&self, v: V256) -> Result<(), MeshError> {
        self.bcast_stream(1, |_| v, true, "col-broadcast")
    }

    /// Receives one word from the row network (the `getr` instruction).
    pub fn getr(&self) -> Result<V256, MeshError> {
        let mut out = V256::ZERO;
        self.get_stream(1, |_, v| out = v, false, "getr")?;
        Ok(out)
    }

    /// Receives one word from the column network (the `getc`
    /// instruction).
    pub fn getc(&self) -> Result<V256, MeshError> {
        let mut out = V256::ZERO;
        self.get_stream(1, |_, v| out = v, true, "getc")?;
        Ok(out)
    }

    /// Non-blocking `getr`, for tests and drain checks.
    pub fn try_getr(&self) -> Option<V256> {
        let v = self.row_rx.try_recv();
        if v.is_some() {
            self.counters.add_row_recv(1);
            self.cell().add_recv(false, 1);
        }
        v
    }

    /// Non-blocking `getc`.
    pub fn try_getc(&self) -> Option<V256> {
        let v = self.col_rx.try_recv();
        if v.is_some() {
            self.counters.add_col_recv(1);
            self.cell().add_recv(true, 1);
        }
        v
    }

    /// Broadcasts a group of 256-bit words along the row in one
    /// synchronization episode (one batched counter/trace update; one
    /// `send_idx` consumed per word).
    pub fn row_bcast_words(&self, words: &[V256]) -> Result<(), MeshError> {
        self.bcast_stream(words.len(), |w| words[w], false, "row-broadcast")
    }

    /// Broadcasts a group of 256-bit words along the column in one
    /// synchronization episode.
    pub fn col_bcast_words(&self, words: &[V256]) -> Result<(), MeshError> {
        self.bcast_stream(words.len(), |w| words[w], true, "col-broadcast")
    }

    /// Receives a group of 256-bit words from the row network in one
    /// synchronization episode.
    pub fn getr_words(&self, out: &mut [V256]) -> Result<(), MeshError> {
        self.get_stream(out.len(), |w, v| out[w] = v, false, "getr")
    }

    /// Receives a group of 256-bit words from the column network in one
    /// synchronization episode.
    pub fn getc_words(&self, out: &mut [V256]) -> Result<(), MeshError> {
        self.get_stream(out.len(), |w, v| out[w] = v, true, "getc")
    }

    /// Broadcasts a whole panel (length multiple of 4 doubles) along
    /// the row, 256 bits at a time — the panel-granularity view of the
    /// per-iteration `vldr` stream the kernel performs. The entire
    /// panel is one synchronization episode with one batched update to
    /// counters and trace.
    pub fn row_bcast_panel(&self, panel: &[f64]) -> Result<(), MeshError> {
        assert_eq!(
            panel.len() % 4,
            0,
            "panel length must be a multiple of 4 doubles"
        );
        self.bcast_stream(
            panel.len() / 4,
            |w| V256::load(&panel[4 * w..4 * w + 4]),
            false,
            "row-broadcast",
        )
    }

    /// Broadcasts a whole panel along the column.
    pub fn col_bcast_panel(&self, panel: &[f64]) -> Result<(), MeshError> {
        assert_eq!(
            panel.len() % 4,
            0,
            "panel length must be a multiple of 4 doubles"
        );
        self.bcast_stream(
            panel.len() / 4,
            |w| V256::load(&panel[4 * w..4 * w + 4]),
            true,
            "col-broadcast",
        )
    }

    /// Receives a whole panel (length multiple of 4 doubles) from the
    /// row (`col_net == false`) or column network in one
    /// synchronization episode.
    pub fn get_panel(&self, col_net: bool, out: &mut [f64]) -> Result<(), MeshError> {
        assert_eq!(
            out.len() % 4,
            0,
            "panel length must be a multiple of 4 doubles"
        );
        let op = if col_net { "getc" } else { "getr" };
        self.get_stream(
            out.len() / 4,
            |w, v| v.store(&mut out[4 * w..4 * w + 4]),
            col_net,
            op,
        )
    }

    /// Receives a whole panel from the row network.
    pub fn recv_row_panel(&self, out: &mut [f64]) -> Result<(), MeshError> {
        self.get_panel(false, out)
    }

    /// Receives a whole panel from the column network.
    pub fn recv_col_panel(&self, out: &mut [f64]) -> Result<(), MeshError> {
        self.get_panel(true, out)
    }
}

// A port crossing threads is the whole point; the link endpoints are
// Send, and Coord/counters are Send + Sync. (It is intentionally NOT
// Sync — see the type docs.)
const _: () = {
    fn assert_send<T: Send>() {}
    fn check() {
        assert_send::<MeshPort>();
    }
    let _ = check;
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_taken_once() {
        let mesh = Mesh::new();
        let p = mesh.ports();
        assert_eq!(p.len(), N_CPES);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mesh.ports())).is_err());
    }

    #[test]
    fn traced_broadcasts_serialize_on_the_link() {
        let tracer = Tracer::enabled();
        let mesh = Mesh::new();
        mesh.set_tracer(&tracer);
        let ports = mesh.ports();
        // Two senders in row 3 and one in column 5 — the row spans must
        // share one track and tile it back to back.
        ports[Coord::new(3, 0).id()].row_bcast(V256::ZERO).unwrap();
        ports[Coord::new(3, 1).id()].row_bcast(V256::ZERO).unwrap();
        ports[Coord::new(0, 5).id()].col_bcast(V256::ZERO).unwrap();
        let data = tracer.take();
        assert_eq!(data.tracks.len(), MESH_ROWS + MESH_COLS);
        assert_eq!(data.spans.len(), 3);
        let row_spans: Vec<_> = data
            .spans
            .iter()
            .filter(|s| s.name == "row.bcast")
            .collect();
        assert_eq!(row_spans.len(), 2);
        assert_eq!(row_spans[0].track, row_spans[1].track);
        let mut starts = [row_spans[0].start, row_spans[1].start];
        starts.sort_unstable();
        assert_eq!(starts, [0, MESH_TRANSIT_CYCLES]);
        assert_eq!(row_spans[0].end - row_spans[0].start, MESH_TRANSIT_CYCLES);
        // 7 delivered copies of 32 bytes each.
        assert_eq!(row_spans[0].args, vec![("bytes", 7 * 32)]);
    }

    #[test]
    fn batched_broadcast_emits_one_span_same_link_time() {
        let tracer = Tracer::enabled();
        let mesh = Mesh::new();
        mesh.set_tracer(&tracer);
        let ports = mesh.ports();
        let words = [V256::ZERO; 4];
        ports[Coord::new(3, 0).id()]
            .row_bcast_words(&words)
            .unwrap();
        ports[Coord::new(3, 1).id()].row_bcast(V256::ZERO).unwrap();
        let data = tracer.take();
        let row_spans: Vec<_> = data
            .spans
            .iter()
            .filter(|s| s.name == "row.bcast")
            .collect();
        assert_eq!(row_spans.len(), 2, "one span per episode, not per word");
        let mut spans = row_spans.clone();
        spans.sort_by_key(|s| s.start);
        // The 4-word batch occupies 4 transit windows; the following
        // single word starts where the batch left off.
        assert_eq!(spans[0].start, 0);
        assert_eq!(spans[0].end, 4 * MESH_TRANSIT_CYCLES);
        assert_eq!(spans[0].args, vec![("bytes", 4 * 7 * 32)]);
        assert_eq!(spans[1].start, 4 * MESH_TRANSIT_CYCLES);
        assert_eq!(spans[1].end, 5 * MESH_TRANSIT_CYCLES);
    }

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let mesh = Mesh::new();
        mesh.set_tracer(&Tracer::disabled());
        let ports = mesh.ports();
        assert!(ports[0].trace.is_none());
    }

    #[test]
    fn mates_exclude_self() {
        for transport in [MeshTransport::Ring, MeshTransport::Fallback] {
            let mesh = Mesh::with_transport(DEFAULT_TIMEOUT, transport);
            let ports = mesh.ports();
            for p in &ports {
                assert_eq!(p.row_tx.len(), sw_arch::coord::MESH_COLS - 1);
                assert_eq!(p.col_tx.len(), sw_arch::coord::MESH_ROWS - 1);
            }
        }
    }

    #[test]
    fn word_and_batch_paths_count_identically() {
        let word = Mesh::new();
        let wp = word.ports();
        let tx = &wp[Coord::new(2, 0).id()];
        let rx = &wp[Coord::new(2, 5).id()];
        for i in 0..8 {
            tx.row_bcast(V256::splat(i as f64)).unwrap();
        }
        let mut got_words = [0.0; 32];
        for chunk in got_words.chunks_exact_mut(4) {
            rx.getr().unwrap().store(chunk);
        }

        let batch = Mesh::new();
        let bp = batch.ports();
        let words: Vec<V256> = (0..8).map(|i| V256::splat(i as f64)).collect();
        bp[Coord::new(2, 0).id()].row_bcast_words(&words).unwrap();
        let mut got_panel = [0.0; 32];
        bp[Coord::new(2, 5).id()]
            .get_panel(false, &mut got_panel)
            .unwrap();

        assert_eq!(got_words, got_panel);
        assert_eq!(word.stats(), batch.stats());
        assert_eq!(word.grid_stats(), batch.grid_stats());
    }
}
