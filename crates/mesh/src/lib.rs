//! The register-communication mesh of the CPE cluster.
//!
//! The 64 CPEs of a core group communicate over an 8×8 mesh network in a
//! producer/consumer mode (§II): a source CPE loads 256-bit data into a
//! register and puts it into the mesh via its *send buffer*; destination
//! CPEs pull it from their *receive buffers*. Two collective operations
//! exist — **row broadcast** (to every CPE of the sender's mesh row) and
//! **column broadcast** (to every CPE of the sender's column) — and they
//! are exactly what the paper's collective data sharing scheme (§III-B)
//! is built from.
//!
//! This crate provides the functional implementation used by the
//! 64-thread runtime: [`Mesh::new`] hands out one [`MeshPort`] per CPE;
//! ports move [`sw_arch::V256`] words through bounded buffers, so
//! producers block when consumers lag, just like the hardware's finite
//! buffers. Receive buffers are separate per direction (row vs column),
//! matching the separate `getr`/`getc` instructions. Two
//! [`MeshTransport`]s back the buffers: lock-free per-sender SPSC rings
//! (the default fast path, sound under the collective schedule's
//! single-active-sender discipline) and the original Mutex MPSC channel
//! kept as a fallback for arbitrary interleavings.
//!
//! A blocked port returns [`MeshError::Deadlock`] after a configurable
//! timeout instead of hanging the test suite — communication schemes
//! with mismatched send/receive counts (the classic register-
//! communication deadlock on real hardware) surface as structured
//! errors the runtime converts into a per-group rendezvous summary.
//! Harnesses built around the old propagating panic can restore it with
//! [`Mesh::panic_on_deadlock`]. A [`sw_faults::FaultInjector`] installed
//! via [`Mesh::set_fault_injector`] can deterministically drop words and
//! wedge a CPE (suppress all its sends) to exercise that path.

pub mod chan;
#[cfg(sw_check)]
pub mod check_models;
pub mod error;
pub mod port;
mod ring;
pub mod stats;

pub use error::MeshError;
pub use port::{Mesh, MeshPort, MeshTransport};
pub use stats::{CellTraffic, MeshGridStats, MeshStats};

#[cfg(test)]
mod tests {
    use super::*;
    use sw_arch::{Coord, V256};

    #[test]
    fn row_broadcast_reaches_row_only() {
        let mesh = Mesh::new();
        let mut ports = mesh.ports();
        // Sender (2,3) broadcasts along row 2; every other CPE in row 2
        // receives it; nobody else is sent anything.
        let v = V256::splat(7.0);
        ports[Coord::new(2, 3).id()].row_bcast(v).unwrap();
        for c in 0..8 {
            if c == 3 {
                continue;
            }
            let got = ports[Coord::new(2, c).id()].getr().unwrap();
            assert_eq!(got, v);
        }
        // All receive buffers now empty.
        for p in &mut ports {
            assert!(p.try_getr().is_none());
            assert!(p.try_getc().is_none());
        }
    }

    #[test]
    fn col_broadcast_reaches_col_only() {
        let mesh = Mesh::new();
        let mut ports = mesh.ports();
        let v = V256::new([1.0, 2.0, 3.0, 4.0]);
        ports[Coord::new(5, 1).id()].col_bcast(v).unwrap();
        for r in 0..8 {
            if r == 5 {
                continue;
            }
            assert_eq!(ports[Coord::new(r, 1).id()].getc().unwrap(), v);
        }
        for p in &mut ports {
            assert!(p.try_getr().is_none());
        }
    }

    #[test]
    fn fifo_order_preserved_per_sender() {
        let mesh = Mesh::new();
        let ports = mesh.ports();
        let sender = &ports[Coord::new(0, 0).id()];
        for i in 0..4 {
            sender.row_bcast(V256::splat(i as f64)).unwrap();
        }
        let receiver = &ports[Coord::new(0, 7).id()];
        for i in 0..4 {
            assert_eq!(receiver.getr().unwrap(), V256::splat(i as f64));
        }
    }

    #[test]
    fn panel_roundtrip_across_threads() {
        let mesh = Mesh::new();
        let ports = mesh.ports();
        let panel: Vec<f64> = (0..256).map(|i| i as f64).collect();
        std::thread::scope(|s| {
            let mut iter = ports.into_iter();
            let sender_port = iter.next().unwrap(); // (0,0)
            let rest: Vec<_> = iter.collect();
            let panel_ref = &panel;
            s.spawn(move || {
                sender_port.row_bcast_panel(panel_ref).unwrap();
            });
            for p in rest {
                let panel_ref = &panel;
                s.spawn(move || {
                    if p.coord().row == 0 && p.coord().col != 0 {
                        let mut out = vec![0.0; 256];
                        p.recv_row_panel(&mut out).unwrap();
                        assert_eq!(&out, panel_ref);
                    }
                });
            }
        });
    }

    #[test]
    fn backpressure_blocks_then_drains() {
        // Send far beyond buffer capacity from one thread; the sender
        // must block until the receivers drain, and all data arrives in
        // order.
        let mesh = Mesh::new();
        let ports = mesh.ports();
        let cap = sw_arch::consts::MESH_RECV_BUFFER_ENTRIES;
        std::thread::scope(|s| {
            let mut iter = ports.into_iter();
            let sender = iter.next().unwrap();
            let handle = s.spawn(move || {
                for i in 0..(4 * cap) {
                    sender.row_bcast(V256::splat(i as f64)).unwrap();
                }
            });
            let mut receivers: Vec<_> = iter.filter(|p| p.coord().row == 0).collect();
            std::thread::sleep(std::time::Duration::from_millis(20));
            for i in 0..(4 * cap) {
                for p in &mut receivers {
                    assert_eq!(p.getr().unwrap(), V256::splat(i as f64));
                }
            }
            handle.join().unwrap();
        });
    }

    #[test]
    fn deadlock_surfaces_as_structured_error() {
        let timeout = std::time::Duration::from_millis(50);
        let mesh = Mesh::with_timeout(timeout);
        let ports = mesh.ports();
        let err = ports[Coord::new(0, 3).id()].getr().unwrap_err(); // nobody ever sends
        assert_eq!(
            err,
            MeshError::Deadlock {
                coord: (0, 3),
                op: "getr",
                timeout,
            }
        );
        // The starved receive is visible in the per-CPE grid snapshot.
        assert_eq!(mesh.grid_stats().cells[0][3].row_starved, 1);
    }

    #[test]
    fn deadlock_panics_behind_escape_hatch() {
        let mesh = Mesh::with_timeout(std::time::Duration::from_millis(50));
        mesh.panic_on_deadlock();
        let ports = mesh.ports();
        let p = &ports[0];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = p.getr(); // nobody ever sends
        }));
        assert!(err.is_err());
    }

    #[test]
    fn wedged_cpe_sends_nothing_and_peers_starve() {
        use sw_faults::{FaultInjector, FaultSpec, WedgeSpec};
        let timeout = std::time::Duration::from_millis(50);
        let mesh = Mesh::with_timeout(timeout);
        let mut spec = FaultSpec::seeded(1);
        spec.wedge = Some(WedgeSpec {
            cpe: Coord::new(2, 3).id(),
            epoch: 0,
        });
        let inj = FaultInjector::new(spec);
        mesh.set_fault_injector(&inj);
        let ports = mesh.ports();
        ports[Coord::new(2, 3).id()].row_bcast(V256::ZERO).unwrap();
        assert!(ports[Coord::new(2, 0).id()].getr().is_err());
        assert_eq!(mesh.stats().row_words_sent, 0);
        assert_eq!(inj.stats().injected_mesh_wedge, 1);
    }

    #[test]
    fn fallback_transport_handles_interleaved_senders() {
        // Two senders in the same row push before the receiver drains —
        // the MPSC fallback merges them into one FIFO per receiver, the
        // guarantee tests that genuinely interleave senders rely on.
        let mesh = Mesh::with_transport(std::time::Duration::from_secs(5), MeshTransport::Fallback);
        let ports = mesh.ports();
        ports[Coord::new(1, 0).id()]
            .row_bcast(V256::splat(1.0))
            .unwrap();
        ports[Coord::new(1, 2).id()]
            .row_bcast(V256::splat(2.0))
            .unwrap();
        // (1,7) got one word from each sender, in arrival order.
        let rx = &ports[Coord::new(1, 7).id()];
        assert_eq!(rx.getr().unwrap(), V256::splat(1.0));
        assert_eq!(rx.getr().unwrap(), V256::splat(2.0));
    }

    #[test]
    fn transports_agree_on_traffic_and_data() {
        let run = |transport| {
            let mesh = Mesh::with_transport(std::time::Duration::from_secs(5), transport);
            let ports = mesh.ports();
            // 8 words: exactly the receive-buffer capacity, so the
            // single-threaded send-then-drain below cannot block.
            let panel: Vec<f64> = (0..32).map(|i| i as f64 * 0.5).collect();
            ports[Coord::new(4, 4).id()]
                .row_bcast_panel(&panel)
                .unwrap();
            ports[Coord::new(4, 4).id()]
                .col_bcast_panel(&panel)
                .unwrap();
            let mut row_out = vec![0.0; 32];
            let mut col_out = vec![0.0; 32];
            ports[Coord::new(4, 0).id()]
                .get_panel(false, &mut row_out)
                .unwrap();
            ports[Coord::new(7, 4).id()]
                .get_panel(true, &mut col_out)
                .unwrap();
            assert_eq!(row_out, panel);
            assert_eq!(col_out, panel);
            (mesh.stats(), mesh.grid_stats())
        };
        assert_eq!(run(MeshTransport::Ring), run(MeshTransport::Fallback));
    }

    #[test]
    fn stats_count_messages() {
        let mesh = Mesh::new();
        let ports = mesh.ports();
        ports[0].row_bcast(V256::ZERO).unwrap();
        ports[0].col_bcast(V256::ZERO).unwrap();
        drop(ports);
        let s = mesh.stats();
        // A row broadcast enqueues 7 copies; so does a column broadcast.
        assert_eq!(s.row_words_sent, 7);
        assert_eq!(s.col_words_sent, 7);
        let g = mesh.grid_stats();
        assert_eq!(g.cells[0][0].row_sent, 7);
        assert_eq!(g.cells[0][0].col_sent, 7);
    }
}
