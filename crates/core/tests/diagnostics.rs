//! End-to-end diagnostics-bundle round trips: a structured failure
//! must auto-emit a bundle that `sw-diagnose`'s renderer parses, and
//! the bundle's busy-cycle attribution must obey the recorder's
//! `clock == Σ busy` invariant on every ring.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;
use sw_dgemm::diagnostics::{render_bundle_str, BUNDLE_SCHEMA, DIAG_DIR_ENV};
use sw_dgemm::{
    gen, AbftPolicy, BlockingParams, DgemmError, DgemmRunner, FaultSpec, Variant, WedgeSpec,
};
use sw_probe::json::Value;

/// `SW_DIAG_DIR` is process-global; serialize the tests that set it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the bundle directory pointed at a fresh temp subdir,
/// returning the bundles it produced (as parsed JSON plus raw text).
fn with_diag_dir<F: FnOnce()>(tag: &str, f: F) -> Vec<(Value, String)> {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir: PathBuf =
        std::env::temp_dir().join(format!("sw-diag-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var(DIAG_DIR_ENV, &dir);
    f();
    std::env::remove_var(DIAG_DIR_ENV);
    let mut bundles = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for e in entries.flatten() {
            let raw = std::fs::read_to_string(e.path()).expect("bundle readable");
            let v = Value::parse(&raw).expect("bundle is valid JSON");
            bundles.push((v, raw));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    bundles
}

/// Every ring's attribution must tile its clock exactly across the
/// four lanes — the bundle-level face of the recorder invariant.
fn assert_attribution_invariant(bundle: &Value) {
    let attrs = bundle
        .as_obj()
        .and_then(|o| o.get("attribution"))
        .and_then(Value::as_arr)
        .expect("bundle has attribution");
    assert_eq!(attrs.len(), 64, "one attribution row per CPE");
    for a in attrs {
        let o = a.as_obj().unwrap();
        let g = |k: &str| o.get(k).and_then(Value::as_u64).unwrap();
        assert_eq!(
            g("clock"),
            g("compute") + g("dma") + g("mesh") + g("barrier"),
            "clock == sum of lane busy cycles on cpe {}",
            g("cpe")
        );
    }
}

#[test]
fn mesh_wedge_emits_bundle_that_diagnose_renders() {
    let p = BlockingParams::test_small();
    let a = gen::random_matrix(128, 128, 11);
    let b = gen::random_matrix(128, 128, 12);
    let c0 = gen::random_matrix(128, 128, 13);

    let bundles = with_diag_dir("wedge", || {
        let mut c = c0.clone();
        let spec = FaultSpec {
            wedge: Some(WedgeSpec { cpe: 18, epoch: 0 }),
            ..FaultSpec::seeded(0)
        };
        let err = DgemmRunner::new(Variant::Pe)
            .params(p)
            .faults(spec)
            .mesh_timeout(Duration::from_millis(200))
            .run(1.5, &a, &b, 0.5, &mut c)
            .expect_err("the wedge must trip the deadlock fuse");
        assert!(matches!(err, DgemmError::MeshDeadlock { .. }));
    });
    assert_eq!(bundles.len(), 1, "exactly one bundle for one failed run");
    let (bundle, raw) = &bundles[0];
    let obj = bundle.as_obj().unwrap();
    assert_eq!(
        obj.get("schema").and_then(Value::as_str),
        Some(BUNDLE_SCHEMA)
    );
    let err = obj.get("error").unwrap().as_obj().unwrap();
    assert_eq!(
        err.get("kind").and_then(Value::as_str),
        Some("mesh-deadlock")
    );
    assert!(err.contains_key("rendezvous_summary"));
    assert_attribution_invariant(bundle);

    // The wedge decision must be on the rings — and the first-cause
    // scan must point at a cause event, not a symptom.
    let fc = obj
        .get("first_cause")
        .and_then(Value::as_obj)
        .expect("wedge run has a first cause");
    let fc_kind = fc.get("kind").and_then(Value::as_str).unwrap();
    assert!(
        fc_kind == "fault-decision" || fc_kind == "mesh-episode",
        "first cause is a cause event, got {fc_kind}"
    );
    assert!(raw.contains("mesh-wedge"), "wedge decision recorded");

    // Fault tallies rode along (the injector was installed).
    assert!(obj.get("fault_stats").and_then(Value::as_obj).is_some());

    // And the renderer accepts the bundle end to end.
    let report = render_bundle_str(raw).expect("sw-diagnose renders the bundle");
    assert!(report.contains("incident report"));
    assert!(report.contains("mesh-deadlock"));
    assert!(report.contains("first cause"));
}

#[test]
fn abft_mismatch_emits_bundle_with_critical_path() {
    let p = BlockingParams::test_small();
    let a = gen::random_matrix(128, 128, 21);
    let b = gen::random_matrix(128, 128, 22);
    let c0 = gen::random_matrix(128, 128, 23);

    let bundles = with_diag_dir("abft", || {
        let mut c = c0.clone();
        let spec = FaultSpec {
            bitflip_every_epoch: true,
            ..FaultSpec::seeded(7)
        };
        let err = DgemmRunner::new(Variant::Sched)
            .params(p)
            .faults(spec)
            .abft(AbftPolicy::Detect)
            .run(1.0, &a, &b, 0.0, &mut c)
            .expect_err("Detect must surface the flip");
        assert!(matches!(err, DgemmError::AbftMismatch { .. }));
    });
    assert_eq!(bundles.len(), 1);
    let (bundle, raw) = &bundles[0];
    let obj = bundle.as_obj().unwrap();
    let err = obj.get("error").unwrap().as_obj().unwrap();
    assert_eq!(
        err.get("kind").and_then(Value::as_str),
        Some("abft-mismatch")
    );
    assert!(err.contains_key("block"));
    assert_attribution_invariant(bundle);

    // The plan validated before the failure, so the timing model's
    // critical path is in the bundle with exact cycle attribution.
    let cp = obj
        .get("critical_path")
        .and_then(Value::as_obj)
        .expect("shared-variant bundle has a critical path");
    let makespan = cp.get("makespan_cycles").and_then(Value::as_u64).unwrap();
    assert!(makespan > 0);
    let segs = cp.get("segments").and_then(Value::as_arr).unwrap();
    assert!(!segs.is_empty() && segs.len() <= 3);
    for s in segs {
        let o = s.as_obj().unwrap();
        assert!(o.get("cycles").and_then(Value::as_u64).unwrap() <= makespan);
    }

    let report = render_bundle_str(raw).expect("renders");
    assert!(report.contains("abft-mismatch"));
    assert!(report.contains("critical path"));
}

#[test]
fn clean_runs_and_shape_errors_emit_nothing() {
    let a = gen::random_matrix(128, 128, 31);
    let b = gen::random_matrix(128, 128, 32);

    let bundles = with_diag_dir("clean", || {
        let mut c = gen::random_matrix(128, 128, 33);
        DgemmRunner::new(Variant::Pe)
            .params(BlockingParams::test_small())
            .run(1.0, &a, &b, 0.0, &mut c)
            .expect("clean run succeeds");

        // Shape errors never started a run: no evidence, no bundle.
        let mut bad = gen::random_matrix(64, 64, 34);
        let err = DgemmRunner::new(Variant::Pe)
            .run(1.0, &a, &b, 0.0, &mut bad)
            .expect_err("shape mismatch");
        assert!(matches!(err, DgemmError::BadDims(_)));
    });
    assert!(bundles.is_empty(), "no bundles for clean/BadDims runs");
}
