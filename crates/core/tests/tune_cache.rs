//! Tune-cache contracts, end to end: winners round-trip through the
//! on-disk file across instances (processes), corrupt or truncated
//! cache files degrade to a re-search instead of an error, the staged
//! search is deterministic so independent processes converge on the
//! same cache contents, concurrent readers and writers are safe, and
//! `DgemmRunner` consults the `$SW_TUNE_CACHE`-backed global cache.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use sw_dgemm::tunecache::{TuneCache, TUNE_CACHE_ENV};
use sw_dgemm::tuner::{resolve_in, TunePolicy};
use sw_dgemm::{gen, reference, CachedTune, DgemmRunner, Variant};
use sw_probe::metrics;

/// `SW_TUNE_CACHE` (and the `OnceLock` behind `TuneCache::global`) is
/// process-global; only [`runner_consults_the_global_cache`] may touch
/// either, and this lock keeps that invariant obvious.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn tmp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("sw-tune-test-{}-{tag}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// A shape the aligned SCHED kernel can cover exactly with several
/// feasible blockings (pm = 16; pn ∈ {4, 8}; pk = 16).
const SHAPE: (usize, usize, usize) = (128, 64, 128);

fn resolve_at(cache: &TuneCache, policy: TunePolicy) -> Option<sw_dgemm::BlockingParams> {
    let (m, n, k) = SHAPE;
    resolve_in(
        cache,
        policy,
        Variant::Sched,
        m,
        n,
        k,
        Default::default(),
        Default::default(),
    )
}

/// A searched winner written by one instance is read back — without
/// any search — by a fresh instance over the same file, modelling the
/// next process.
#[test]
fn winner_round_trips_across_instances() {
    let path = tmp_path("roundtrip");
    let cold = resolve_at(&TuneCache::at(&path), TunePolicy::Search { top_k: 2 })
        .expect("search finds a blocking for the aligned shape");
    let warm = resolve_at(&TuneCache::at(&path), TunePolicy::CacheOnly);
    assert_eq!(warm, Some(cold), "fresh instance reads the same winner");
    // The persisted entry carries the winner's predicted rate too.
    let (m, n, k) = SHAPE;
    let key = TuneCache::key(
        Variant::Sched,
        Default::default(),
        Default::default(),
        m,
        n,
        k,
    );
    let entry = TuneCache::at(&path).get(&key).expect("entry persisted");
    assert!(entry.gflops > 0.0);
    let _ = std::fs::remove_file(&path);
}

/// A corrupt cache file is treated as empty — `CacheOnly` declines,
/// nothing panics — and the next search overwrites it with a valid
/// file.
#[test]
fn corrupt_file_degrades_to_a_re_search() {
    let path = tmp_path("corrupt");
    std::fs::write(&path, b"{not json at all\x00\xff").unwrap();
    let cache = TuneCache::at(&path);
    assert_eq!(resolve_at(&cache, TunePolicy::CacheOnly), None);
    assert!(cache.is_empty());
    let searched =
        resolve_at(&cache, TunePolicy::Search { top_k: 2 }).expect("re-search still works");
    // The rewrite is a well-formed file a fresh instance can load.
    assert_eq!(
        resolve_at(&TuneCache::at(&path), TunePolicy::CacheOnly),
        Some(searched)
    );
    let _ = std::fs::remove_file(&path);
}

/// Truncation mid-file (a crashed writer without the atomic rename)
/// degrades the same way: empty cache, no error.
#[test]
fn truncated_file_degrades_to_empty() {
    let whole = tmp_path("whole");
    let cache = TuneCache::at(&whole);
    let (m, n, k) = SHAPE;
    let key = TuneCache::key(
        Variant::Sched,
        Default::default(),
        Default::default(),
        m,
        n,
        k,
    );
    cache.put(
        &key,
        CachedTune {
            params: Variant::Sched.paper_params(),
            gflops: 700.0,
        },
    );
    let text = std::fs::read_to_string(&whole).unwrap();
    let truncated = tmp_path("truncated");
    std::fs::write(&truncated, &text[..text.len() / 2]).unwrap();
    let half = TuneCache::at(&truncated);
    assert!(half.is_empty(), "truncated JSON loads as the empty cache");
    assert_eq!(resolve_at(&half, TunePolicy::CacheOnly), None);
    let _ = std::fs::remove_file(&whole);
    let _ = std::fs::remove_file(&truncated);
}

/// The staged search is deterministic, so two independent caches (two
/// processes that never shared a file) converge on identical winners.
#[test]
fn independent_processes_converge_on_the_same_winner() {
    let (pa, pb) = (tmp_path("proc-a"), tmp_path("proc-b"));
    let a = resolve_at(&TuneCache::at(&pa), TunePolicy::Search { top_k: 4 }).unwrap();
    let b = resolve_at(&TuneCache::at(&pb), TunePolicy::Search { top_k: 4 }).unwrap();
    assert_eq!(a, b, "same request, same winner, regardless of process");
    let _ = std::fs::remove_file(&pa);
    let _ = std::fs::remove_file(&pb);
}

/// Concurrent readers and writers over one shared cache instance:
/// no panics, the original entry survives, and every writer's entry
/// lands.
#[test]
fn concurrent_readers_and_writers_are_safe() {
    let path = tmp_path("concurrent");
    let cache = Arc::new(TuneCache::at(&path));
    let entry = CachedTune {
        params: Variant::Sched.paper_params(),
        gflops: 700.0,
    };
    cache.put("shared/key", entry);
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for i in 0..32 {
                    let hit = cache.get("shared/key").expect("shared entry always hit");
                    assert_eq!(hit.params, Variant::Sched.paper_params());
                    if i % 8 == 0 {
                        cache.put(
                            &format!("writer/{t}"),
                            CachedTune {
                                params: Variant::Sched.paper_params(),
                                gflops: t as f64,
                            },
                        );
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no reader or writer panicked");
    }
    assert_eq!(cache.len(), 1 + 8, "shared entry plus one per writer");
    let _ = std::fs::remove_file(&path);
}

/// `DgemmRunner::tune(Search)` resolves its blocking through the
/// global `$SW_TUNE_CACHE`-backed cache: the first run searches and
/// persists, the second hits without searching, and both compute the
/// correct product.
#[test]
fn runner_consults_the_global_cache() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = tmp_path("global");
    std::env::set_var(TUNE_CACHE_ENV, &path);
    let (m, n, k) = SHAPE;
    let (a, b) = (gen::random_matrix(m, k, 42), gen::random_matrix(k, n, 43));
    let searches = metrics::global().counter("tune.searches");
    let hits = metrics::global().counter("tune.cache.hits");
    let run = |seed| {
        let mut c = gen::random_matrix(m, n, seed);
        let mut expect = c.clone();
        DgemmRunner::new(Variant::Sched)
            .tune(TunePolicy::Search { top_k: 2 })
            .run(1.5, &a, &b, 0.5, &mut c)
            .expect("tuned run succeeds");
        reference::dgemm_chunked_fma(1.5, &a, &b, 0.5, &mut expect, 16);
        assert!(c == expect, "tuned blocking still computes the product");
    };
    let s0 = searches.get();
    run(44);
    assert!(searches.get() > s0, "the cold run searched");
    assert!(path.exists(), "the winner was persisted to $SW_TUNE_CACHE");
    let (s1, h1) = (searches.get(), hits.get());
    run(45);
    assert_eq!(searches.get(), s1, "the warm run performed no search");
    assert!(hits.get() > h1, "the warm run hit the cache");
    std::env::remove_var(TUNE_CACHE_ENV);
    let _ = std::fs::remove_file(&path);
}
