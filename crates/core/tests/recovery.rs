//! Core-group reuse after a cancelled run: a structured failure tears
//! a run down through `CancellableBarrier::cancel` (every CPE unwinds
//! with `BarrierCancelled`), and the same caller-owned [`CoreGroup`]
//! must then run further DGEMMs as if nothing happened — the
//! barrier-level regression behind `DgemmRunner::run_on`'s recovery
//! promise.

use std::path::PathBuf;
use std::time::Duration;
use sw_dgemm::diagnostics::DIAG_DIR_ENV;
use sw_dgemm::{
    gen, reference, BlockingParams, DgemmError, DgemmRunner, FaultSpec, Variant, WedgeSpec,
};
use sw_sim::{CancelToken, CoreGroup};

#[test]
fn core_group_reusable_after_cancelled_run() {
    // Keep the failure's diagnostics bundle out of the source tree.
    let dir: PathBuf =
        std::env::temp_dir().join(format!("sw-diag-test-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var(DIAG_DIR_ENV, &dir);

    let p = BlockingParams::test_small();
    let a = gen::random_matrix(128, 128, 21);
    let b = gen::random_matrix(128, 128, 22);
    let c0 = gen::random_matrix(128, 128, 23);
    let mut cg = CoreGroup::new();

    // Run 1: a wedged CPE trips the deadlock fuse; the aborting CPE
    // cancels the run's barriers and all 63 peers unwind.
    let mut c = c0.clone();
    let err = DgemmRunner::new(Variant::Pe)
        .params(p)
        .faults(FaultSpec {
            wedge: Some(WedgeSpec { cpe: 18, epoch: 0 }),
            ..FaultSpec::seeded(0)
        })
        .mesh_timeout(Duration::from_millis(200))
        .run_on(&mut cg, 1.5, &a, &b, 0.5, &mut c)
        .expect_err("the wedge must trip the deadlock fuse");
    assert!(matches!(err, DgemmError::MeshDeadlock { .. }));

    // Runs 2 and 3: the same group, no faults. The persistent CPE pool
    // and fresh per-run barriers make both succeed with exact numerics.
    for seed in [31u64, 32] {
        let a = gen::random_matrix(128, 128, seed);
        let b = gen::random_matrix(128, 128, seed + 100);
        let c0 = gen::random_matrix(128, 128, seed + 200);
        let mut c = c0.clone();
        DgemmRunner::new(Variant::Pe)
            .params(p)
            .run_on(&mut cg, 1.5, &a, &b, 0.5, &mut c)
            .expect("clean run on the recovered group succeeds");
        let mut expect = c0.clone();
        reference::dgemm_naive(1.5, &a, &b, 0.5, &mut expect);
        let tol = reference::gemm_tolerance(&a, &b, 1.5);
        assert!(
            c.max_abs_diff(&expect) <= tol,
            "recovered group computes correctly (seed {seed})"
        );
    }

    std::env::remove_var(DIAG_DIR_ENV);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checks one clean run on `cg` against the naive reference.
fn assert_clean_run(cg: &mut CoreGroup, seed: u64) {
    let p = BlockingParams::test_small();
    let a = gen::random_matrix(128, 128, seed);
    let b = gen::random_matrix(128, 128, seed + 100);
    let c0 = gen::random_matrix(128, 128, seed + 200);
    let mut c = c0.clone();
    DgemmRunner::new(Variant::Sched)
        .params(p)
        .run_on(cg, 1.5, &a, &b, 0.5, &mut c)
        .expect("clean run on the recovered group succeeds");
    let mut expect = c0.clone();
    reference::dgemm_naive(1.5, &a, &b, 0.5, &mut expect);
    let tol = reference::gemm_tolerance(&a, &b, 1.5);
    assert!(
        c.max_abs_diff(&expect) <= tol,
        "recovered group computes correctly (seed {seed})"
    );
}

#[test]
fn cancel_token_surfaces_cancelled_and_group_stays_reusable() {
    let p = BlockingParams::test_small();
    let a = gen::random_matrix(128, 128, 41);
    let b = gen::random_matrix(128, 128, 42);
    let c0 = gen::random_matrix(128, 128, 43);
    let mut cg = CoreGroup::new();

    // Run 1: a token fired *before* the run starts is fully
    // deterministic — every CPE unwinds at its first barrier and the
    // structured error carries the explicit-cancel reason, not a fault.
    let token = CancelToken::new();
    token.cancel();
    let mut c = c0.clone();
    let err = DgemmRunner::new(Variant::Sched)
        .params(p)
        .cancel(token)
        .run_on(&mut cg, 1.5, &a, &b, 0.5, &mut c)
        .expect_err("a pre-fired token must cancel the run");
    assert_eq!(err, DgemmError::Cancelled { deadline: false });

    // Run 2: same, but fired by the deadline path — the reason is
    // preserved so a service can tell shed-by-deadline from faults.
    let token = CancelToken::new();
    token.cancel_deadline();
    let mut c = c0.clone();
    let err = DgemmRunner::new(Variant::Sched)
        .params(p)
        .cancel(token)
        .run_on(&mut cg, 1.5, &a, &b, 0.5, &mut c)
        .expect_err("a pre-fired deadline token must cancel the run");
    assert_eq!(err, DgemmError::Cancelled { deadline: true });

    // Runs 3 and 4: the group is reusable with exact numerics — the
    // regression behind `run_on`'s recovery promise after a cancel.
    for seed in [51u64, 52] {
        assert_clean_run(&mut cg, seed);
    }
}

#[test]
fn mid_run_cancel_frees_the_group_promptly() {
    // Fire the token from another thread mid-run. The exact interleave
    // is timing-dependent — the run may finish first — but every
    // outcome must be one of {Ok, Cancelled}, and the group must be
    // clean afterwards either way.
    let p = BlockingParams::test_small();
    let a = gen::random_matrix(256, 128, 61);
    let b = gen::random_matrix(128, 256, 62);
    let c0 = gen::random_matrix(256, 256, 63);
    let mut cg = CoreGroup::new();
    let mut saw_cancel = false;
    for delay_us in [0u64, 50, 200, 1000, 5000] {
        let token = CancelToken::new();
        if delay_us == 0 {
            // Deterministic floor for the loop's assertion: fired
            // before the run starts, the cancel must win.
            token.cancel_deadline();
        }
        let firer = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(delay_us));
                token.cancel_deadline();
            })
        };
        let mut c = c0.clone();
        match DgemmRunner::new(Variant::Sched)
            .params(p)
            .cancel(token)
            .run_on(&mut cg, 1.5, &a, &b, 0.5, &mut c)
        {
            Ok(_) => {}
            Err(DgemmError::Cancelled { deadline }) => {
                assert!(deadline, "the deadline reason must be preserved");
                saw_cancel = true;
            }
            Err(other) => panic!("unexpected error under cancel: {other}"),
        }
        firer.join().unwrap();
    }
    assert!(
        saw_cancel,
        "at least the delay-0 fire must cancel before the run completes"
    );
    assert_clean_run(&mut cg, 71);
}
