//! Core-group reuse after a cancelled run: a structured failure tears
//! a run down through `CancellableBarrier::cancel` (every CPE unwinds
//! with `BarrierCancelled`), and the same caller-owned [`CoreGroup`]
//! must then run further DGEMMs as if nothing happened — the
//! barrier-level regression behind `DgemmRunner::run_on`'s recovery
//! promise.

use std::path::PathBuf;
use std::time::Duration;
use sw_dgemm::diagnostics::DIAG_DIR_ENV;
use sw_dgemm::{
    gen, reference, BlockingParams, DgemmError, DgemmRunner, FaultSpec, Variant, WedgeSpec,
};
use sw_sim::CoreGroup;

#[test]
fn core_group_reusable_after_cancelled_run() {
    // Keep the failure's diagnostics bundle out of the source tree.
    let dir: PathBuf =
        std::env::temp_dir().join(format!("sw-diag-test-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var(DIAG_DIR_ENV, &dir);

    let p = BlockingParams::test_small();
    let a = gen::random_matrix(128, 128, 21);
    let b = gen::random_matrix(128, 128, 22);
    let c0 = gen::random_matrix(128, 128, 23);
    let mut cg = CoreGroup::new();

    // Run 1: a wedged CPE trips the deadlock fuse; the aborting CPE
    // cancels the run's barriers and all 63 peers unwind.
    let mut c = c0.clone();
    let err = DgemmRunner::new(Variant::Pe)
        .params(p)
        .faults(FaultSpec {
            wedge: Some(WedgeSpec { cpe: 18, epoch: 0 }),
            ..FaultSpec::seeded(0)
        })
        .mesh_timeout(Duration::from_millis(200))
        .run_on(&mut cg, 1.5, &a, &b, 0.5, &mut c)
        .expect_err("the wedge must trip the deadlock fuse");
    assert!(matches!(err, DgemmError::MeshDeadlock { .. }));

    // Runs 2 and 3: the same group, no faults. The persistent CPE pool
    // and fresh per-run barriers make both succeed with exact numerics.
    for seed in [31u64, 32] {
        let a = gen::random_matrix(128, 128, seed);
        let b = gen::random_matrix(128, 128, seed + 100);
        let c0 = gen::random_matrix(128, 128, seed + 200);
        let mut c = c0.clone();
        DgemmRunner::new(Variant::Pe)
            .params(p)
            .run_on(&mut cg, 1.5, &a, &b, 0.5, &mut c)
            .expect("clean run on the recovered group succeeds");
        let mut expect = c0.clone();
        reference::dgemm_naive(1.5, &a, &b, 0.5, &mut expect);
        let tol = reference::gemm_tolerance(&a, &b, 1.5);
        assert!(
            c.max_abs_diff(&expect) <= tol,
            "recovered group computes correctly (seed {seed})"
        );
    }

    std::env::remove_var(DIAG_DIR_ENV);
    let _ = std::fs::remove_dir_all(&dir);
}
