//! Staged block-size autotuner (the paper's future-work direction).
//!
//! The paper chooses its blocking by hand from the §III-C model plus
//! spot measurements. This tuner closes that loop automatically, in
//! stages ordered by cost so the expensive work only sees survivors:
//!
//! 1. **Enumerate** every legal `(pM, pN, pK) × (rM, rN)` blocking for
//!    the requested — possibly non-square, possibly tall-skinny —
//!    target shape. Register tiles come from
//!    [`model::enumerate_register_blockings`]; feasibility is
//!    [`BlockingParams::validate`] plus an `sw-lint` pass (LDM layout
//!    and i-cache) over the candidate's looped kernel stream.
//! 2. **Rank cheaply**, with no simulation: the §III-C/§IV analytic
//!    bandwidth model bounds what memory can sustain, the static stall
//!    prover ([`sw_lint::score_stalls`]) bounds what the kernel
//!    schedule can sustain, and a padding-waste factor discounts
//!    blockings whose CG blocks overshoot the target shape. A
//!    candidate's score is the minimum of the two rates times the
//!    waste factor.
//! 3. **Validate** only the `top_k` survivors (plus the paper's
//!    hand-picked blocking as a seeded baseline) with the timed
//!    discrete-event estimate ([`crate::timing::estimate_shared`]).
//! 4. **Persist** the winner in the on-disk tune cache
//!    ([`crate::tunecache::TuneCache`]) so the next call with the same
//!    shape class resolves with zero search cost.
//!
//! [`resolve`] is the cache-then-search entry point
//! [`crate::DgemmRunner`] and `sw-serve` use per call under a
//! [`TunePolicy`]; [`search`] is the full staged search; [`tune`]
//! keeps the original ranked-table interface for the CLI and the
//! autotune example.

use crate::error::DgemmError;
use crate::lint::candidate_kernel;
use crate::mapping::Mapping;
use crate::model;
use crate::params::BlockingParams;
use crate::timing::estimate_shared;
use crate::tunecache::{CachedTune, TuneCache};
use crate::variants::Variant;
use sw_arch::consts::{FLOPS_PER_CYCLE_PER_CPE, PEAK_GFLOPS_CG, VREG_LANES};
use sw_isa::EngineBackend;
use sw_lint::{lint_stream, score_stalls, Bound};
use sw_mem::dma::{BandwidthModel, DmaMode};
use sw_probe::metrics;
use sw_sim::MeshTransport;

/// How a [`crate::DgemmRunner`] (or `sw-serve`) resolves its blocking
/// when the caller did not pin `.params(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TunePolicy {
    /// No tuning: the legacy paper-then-test candidate list.
    #[default]
    Off,
    /// Consult the tune cache; on a miss, fall back to the legacy
    /// candidates without searching (never pays search cost).
    CacheOnly,
    /// Consult the cache; on a miss, run the staged search timing the
    /// `top_k` survivors, and persist the winner.
    Search {
        /// Survivors stage 3 times on a cache miss.
        top_k: usize,
    },
}

/// A tuning target: the problem shape plus the resolution context the
/// winner depends on (and is cached under).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneRequest {
    /// Variant whose blocking space is searched (not RAW).
    pub variant: Variant,
    /// Target rows.
    pub m: usize,
    /// Target columns.
    pub n: usize,
    /// Target depth.
    pub k: usize,
    /// Survivors the timed stage validates.
    pub top_k: usize,
    /// Restrict candidates to blockings whose CG blocks divide the
    /// target exactly (the aligned-kernel condition the runner needs).
    pub exact: bool,
    /// Cap, in CG blocks per axis, on the timed-stage evaluation size;
    /// `None` times the full rounded target. The runner path caps the
    /// grid so a cache-miss search stays cheap.
    pub eval_cap_blocks: Option<usize>,
    /// Mesh transport of the resolution context (cache-key axis).
    pub transport: MeshTransport,
    /// Engine backend of the resolution context (cache-key axis).
    pub backend: EngineBackend,
}

impl TuneRequest {
    /// A full-fidelity request for an arbitrary shape: top 8 timed at
    /// the rounded target, candidates not restricted to exact divisors.
    pub fn shaped(variant: Variant, m: usize, n: usize, k: usize) -> Self {
        TuneRequest {
            variant,
            m,
            n,
            k,
            top_k: 8,
            exact: false,
            eval_cap_blocks: None,
            transport: MeshTransport::default(),
            backend: EngineBackend::default(),
        }
    }

    /// A square target near `t` — the classic tuner invocation.
    pub fn square(variant: Variant, t: usize) -> Self {
        TuneRequest::shaped(variant, t, t, t)
    }
}

/// One stage-2 candidate with its analytic scores (no simulation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The blocking.
    pub params: BlockingParams,
    /// LDM doubles consumed.
    pub ldm_doubles: usize,
    /// What main memory can sustain under the §III-C reduction, Gflops.
    pub model_gflops: f64,
    /// What the statically-proven kernel schedule can sustain, Gflops.
    pub kernel_gflops: f64,
    /// Fraction of the rounded problem's flops the target needs
    /// (padding waste; 1.0 when the blocking divides exactly).
    pub waste: f64,
    /// Ranking score: `min(model, kernel) · waste`.
    pub score_gflops: f64,
    /// Whether the stall proof was exact (it is for every generated
    /// kernel within budget).
    pub stall_exact: bool,
}

/// One timed (stage-3) result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneResult {
    /// The blocking.
    pub params: BlockingParams,
    /// Effective Gflops toward the *target* shape: the timed rate
    /// discounted by the padding-waste factor. This is the ranking
    /// metric — a blocking that rounds 96 columns up to 256 pays for
    /// all 256.
    pub gflops: f64,
    /// Undiscounted timed Gflops at the evaluated dimensions.
    pub raw_gflops: f64,
    /// LDM doubles consumed.
    pub ldm_doubles: usize,
    /// The dimensions the timed stage evaluated.
    pub dims: (usize, usize, usize),
}

/// Where the enumerated candidates went — the evidence that the cheap
/// stages, not the timed one, did the pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Candidates formed by the enumeration.
    pub enumerated: usize,
    /// Rejected by [`BlockingParams::validate`].
    pub rejected_validate: usize,
    /// Rejected because the CG blocks do not divide an exact-shape
    /// request.
    pub rejected_shape: usize,
    /// Rejected by the lint pass over the candidate's kernel stream.
    pub rejected_lint: usize,
    /// Survivors scored by stage 2.
    pub feasible: usize,
    /// Candidates the timed stage evaluated (including the seeded
    /// paper baseline).
    pub timed: usize,
    /// Register tiles the enumeration considered.
    pub register_tiles: usize,
    /// Register tiles that produced at least one feasible candidate.
    pub register_tiles_supported: usize,
}

impl SearchStats {
    /// Percentage of feasible candidates the cheap ranking pruned
    /// before any timed run.
    pub fn pruned_pct(&self) -> f64 {
        if self.feasible == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.timed.min(self.feasible) as f64 / self.feasible as f64)
    }
}

/// The staged search's full output.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOutcome {
    /// Timed results, best first. Never empty.
    pub results: Vec<TuneResult>,
    /// Stage-2 scored candidates, best score first.
    pub candidates: Vec<Candidate>,
    /// Funnel accounting.
    pub stats: SearchStats,
}

impl TuneOutcome {
    /// The winner.
    pub fn best(&self) -> &TuneResult {
        &self.results[0]
    }

    /// The timed result for a specific blocking, if stage 3 saw it.
    pub fn timed_for(&self, p: &BlockingParams) -> Option<&TuneResult> {
        self.results.iter().find(|r| r.params == *p)
    }
}

/// Rounds the target up to whole CG blocks (at least one per axis).
fn rounded_dims(p: &BlockingParams, m: usize, n: usize, k: usize) -> (usize, usize, usize) {
    let round = |t: usize, b: usize| t.next_multiple_of(b).max(b);
    (round(m, p.bm()), round(n, p.bn()), round(k, p.bk()))
}

/// `target flops / rounded flops` — the fraction of the padded
/// problem's work the caller actually asked for.
fn waste_factor(p: &BlockingParams, m: usize, n: usize, k: usize) -> f64 {
    let (rm, rn, rk) = rounded_dims(p, m, n, k);
    ((m * n) as f64 * k as f64) / ((rm * rn) as f64 * rk as f64)
}

/// Stage-2 memory-side bound: peak times the fraction of the required
/// bandwidth (`F·W / S`, §III-C.1) the calibrated DMA channel
/// sustains at this blocking's access pattern.
fn model_gflops(
    variant: Variant,
    p: &BlockingParams,
    m: usize,
    n: usize,
    k: usize,
    bw: &BandwidthModel,
) -> f64 {
    let (rm, _, rk) = rounded_dims(p, m, n, k);
    let s = model::cg_bandwidth_reduction(p.bk(), p.bn(), rm);
    // The A/C stream's DMA run length is what the ROW_MODE remap
    // changes; B rides PE_MODE panels of pK doubles either way.
    let (ac_mode, ac_run) = match variant.mapping() {
        Mapping::Pe => (DmaMode::Pe, 8 * p.pm),
        Mapping::Row => (DmaMode::Row, 8 * p.bm()),
    };
    let footprint = 8 * rm * rk;
    let sustained = bw
        .sustained_gbs(ac_mode, ac_run, footprint)
        .min(bw.sustained_gbs(DmaMode::Pe, 8 * p.pk, footprint));
    let required = PEAK_GFLOPS_CG * model::W_BYTES_PER_FLOP / s;
    PEAK_GFLOPS_CG * (sustained / required).min(1.0)
}

/// The staged search. `Err` only for an untunable request (RAW, zero
/// dimensions) or an empty feasible space; the cache is not consulted
/// here — see [`resolve`].
pub fn search(req: &TuneRequest, bw: &BandwidthModel) -> Result<TuneOutcome, DgemmError> {
    if req.variant == Variant::Raw {
        return Err(DgemmError::BadParams(
            "RAW has no shared-scheme blocking space to tune; \
             pick a data-sharing variant (PE/ROW/DB/SCHED)"
                .to_string(),
        ));
    }
    if req.m == 0 || req.n == 0 || req.k == 0 {
        return Err(DgemmError::BadDims(format!(
            "cannot tune for empty problem {}x{}x{}",
            req.m, req.n, req.k
        )));
    }
    metrics::global().counter("tune.searches").inc();
    let db = req.variant.double_buffered();
    let style = req.variant.kernel_style();
    let mut stats = SearchStats::default();

    // Stage 1: enumerate and filter.
    let tiles = model::enumerate_register_blockings();
    stats.register_tiles = tiles.len();
    let mut scored: Vec<Candidate> = Vec::new();
    for tile in &tiles {
        let mut tile_feasible = false;
        let pm_step = tile.rm * VREG_LANES;
        for pm in (1..=3).map(|i| i * pm_step) {
            for pn in (1..=(96 / tile.rn).max(1)).map(|j| j * tile.rn) {
                for pk in (16..=160).step_by(16) {
                    stats.enumerated += 1;
                    let p = BlockingParams {
                        pm,
                        pn,
                        pk,
                        rm: tile.rm,
                        rn: tile.rn,
                    };
                    if p.validate(db).is_err() {
                        stats.rejected_validate += 1;
                        continue;
                    }
                    if req.exact && !p.divides(req.m, req.n, req.k) {
                        stats.rejected_shape += 1;
                        continue;
                    }
                    let (layout, prog) = candidate_kernel(&p, style, db);
                    if lint_stream(&prog, Some(&layout)).error_count() > 0 {
                        stats.rejected_lint += 1;
                        continue;
                    }
                    stats.feasible += 1;
                    tile_feasible = true;

                    // Stage 2: analytic rank — no simulation.
                    let sc = score_stalls(&prog);
                    let flops = 2.0 * (p.pm * p.pn * p.pk) as f64;
                    let kernel_eff = (flops
                        / (FLOPS_PER_CYCLE_PER_CPE as f64 * sc.cycles.max(1) as f64))
                        .min(1.0);
                    let kernel_gflops = PEAK_GFLOPS_CG * kernel_eff;
                    let model_gflops = model_gflops(req.variant, &p, req.m, req.n, req.k, bw);
                    let waste = waste_factor(&p, req.m, req.n, req.k);
                    scored.push(Candidate {
                        params: p,
                        ldm_doubles: p.ldm_doubles(db),
                        model_gflops,
                        kernel_gflops,
                        waste,
                        score_gflops: model_gflops.min(kernel_gflops) * waste,
                        stall_exact: sc.bound == Bound::Exact,
                    });
                }
            }
        }
        if tile_feasible {
            stats.register_tiles_supported += 1;
        }
    }
    if scored.is_empty() {
        return Err(DgemmError::BadParams(format!(
            "no feasible blocking for {} at {}x{}x{}{}",
            req.variant,
            req.m,
            req.n,
            req.k,
            if req.exact {
                " (exact divisors required)"
            } else {
                ""
            }
        )));
    }
    scored.sort_by(|a, b| {
        b.score_gflops
            .total_cmp(&a.score_gflops)
            .then(a.ldm_doubles.cmp(&b.ldm_doubles))
            .then(key_of(&a.params).cmp(&key_of(&b.params)))
    });

    // Stage 3: time the survivors, always seeding the paper's
    // hand-picked blocking as the baseline to beat.
    let mut chosen: Vec<BlockingParams> = scored
        .iter()
        .take(req.top_k.max(1))
        .map(|c| c.params)
        .collect();
    let paper = req.variant.paper_params();
    if !chosen.contains(&paper) && scored.iter().any(|c| c.params == paper) {
        chosen.push(paper);
    }
    let mut results = Vec::with_capacity(chosen.len());
    for p in chosen {
        let (mut dm, mut dn, mut dk) = rounded_dims(&p, req.m, req.n, req.k);
        if let Some(cap) = req.eval_cap_blocks {
            let cap = cap.max(1);
            dm = dm.min(cap * p.bm());
            dn = dn.min(cap * p.bn());
            dk = dk.min(cap * p.bk());
        }
        let r = estimate_shared(req.variant, dm, dn, dk, p, bw)?;
        let waste = waste_factor(&p, req.m, req.n, req.k);
        results.push(TuneResult {
            params: p,
            gflops: r.gflops * waste,
            raw_gflops: r.gflops,
            ldm_doubles: p.ldm_doubles(db),
            dims: (dm, dn, dk),
        });
    }
    stats.timed = results.len();
    results.sort_by(|a, b| {
        b.gflops
            .total_cmp(&a.gflops)
            .then(a.ldm_doubles.cmp(&b.ldm_doubles))
            .then(key_of(&a.params).cmp(&key_of(&b.params)))
    });
    Ok(TuneOutcome {
        results,
        candidates: scored,
        stats,
    })
}

/// Deterministic tie-break ordering for blockings.
fn key_of(p: &BlockingParams) -> (usize, usize, usize, usize, usize) {
    (p.pm, p.pn, p.pk, p.rm, p.rn)
}

/// Cache-then-search blocking resolution — the per-call entry point
/// behind [`crate::DgemmRunner::tune`] and `sw-serve`'s dispatch.
///
/// Returns `None` when the policy declines to choose (off, cache miss
/// under `CacheOnly`, or an empty feasible space); the caller falls
/// back to the legacy candidate list. A warm hit performs one map
/// lookup — no enumeration, no proving, no simulation.
pub fn resolve(
    policy: TunePolicy,
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
    transport: MeshTransport,
    backend: EngineBackend,
) -> Option<BlockingParams> {
    resolve_in(
        TuneCache::global(),
        policy,
        variant,
        m,
        n,
        k,
        transport,
        backend,
    )
}

/// [`resolve`] against an explicit cache instance (tests).
#[allow(clippy::too_many_arguments)]
pub fn resolve_in(
    cache: &TuneCache,
    policy: TunePolicy,
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
    transport: MeshTransport,
    backend: EngineBackend,
) -> Option<BlockingParams> {
    let top_k = match policy {
        TunePolicy::Off => return None,
        TunePolicy::CacheOnly => None,
        TunePolicy::Search { top_k } => Some(top_k),
    };
    if variant == Variant::Raw {
        return None;
    }
    let key = TuneCache::key(variant, transport, backend, m, n, k);
    if let Some(hit) = cache.get(&key) {
        // The class is coarser than the shape: trust a cached winner
        // only where the aligned kernel can actually run it.
        if hit.params.validate(variant.double_buffered()).is_ok() && hit.params.divides(m, n, k) {
            return Some(hit.params);
        }
    }
    let top_k = top_k?;
    let req = TuneRequest {
        top_k,
        exact: true,
        eval_cap_blocks: Some(3),
        transport,
        backend,
        ..TuneRequest::shaped(variant, m, n, k)
    };
    let outcome = search(&req, &BandwidthModel::calibrated()).ok()?;
    let best = outcome.best();
    cache.put(
        &key,
        CachedTune {
            params: best.params,
            gflops: best.gflops,
        },
    );
    Some(best.params)
}

/// The classic ranked-table interface: staged search near a square
/// `target`, returning the timed table (top 16 plus the paper
/// baseline), best first.
pub fn tune(
    variant: Variant,
    target: usize,
    model: &BandwidthModel,
) -> Result<Vec<TuneResult>, DgemmError> {
    let req = TuneRequest {
        top_k: 16,
        ..TuneRequest::square(variant, target)
    };
    Ok(search(&req, model)?.results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_choice_is_near_optimal() {
        let model = BandwidthModel::calibrated();
        let results = tune(Variant::Sched, 9216, &model).unwrap();
        assert!(!results.is_empty());
        let best = results[0];
        let paper = results
            .iter()
            .find(|r| r.params == Variant::Sched.paper_params())
            .expect("the paper's blocking is always timed as the baseline");
        // The paper's hand-picked (pN=32, pK=96) should be within a few
        // percent of the tuner's best.
        assert!(
            paper.gflops > 0.93 * best.gflops,
            "paper choice {:.1} vs best {:.1} ({:?})",
            paper.gflops,
            best.gflops,
            best.params
        );
    }

    #[test]
    fn all_results_feasible_and_sorted() {
        let model = BandwidthModel::calibrated();
        let results = tune(Variant::Db, 4608, &model).unwrap();
        for w in results.windows(2) {
            assert!(w[0].gflops >= w[1].gflops);
        }
        for r in &results {
            assert!(r.params.validate(true).is_ok());
            assert!(r.ldm_doubles < sw_arch::consts::LDM_DOUBLES);
        }
    }

    #[test]
    fn raw_is_a_structured_error() {
        let err = tune(Variant::Raw, 4608, &BandwidthModel::calibrated()).unwrap_err();
        assert!(matches!(err, DgemmError::BadParams(_)), "{err:?}");
        let err = search(
            &TuneRequest::square(Variant::Raw, 4608),
            &BandwidthModel::calibrated(),
        )
        .unwrap_err();
        assert!(matches!(err, DgemmError::BadParams(_)));
    }

    #[test]
    fn empty_problem_is_a_structured_error() {
        let err = search(
            &TuneRequest::shaped(Variant::Sched, 0, 256, 768),
            &BandwidthModel::calibrated(),
        )
        .unwrap_err();
        assert!(matches!(err, DgemmError::BadDims(_)));
    }

    #[test]
    fn register_space_is_widened_and_4x4_still_wins_at_paper_shape() {
        let model = BandwidthModel::calibrated();
        let req = TuneRequest {
            top_k: 4,
            ..TuneRequest::square(Variant::Sched, 4608)
        };
        let outcome = search(&req, &model).unwrap();
        // The enumeration considers the full rM·rN + rM + rN < 32
        // space, not a hard-coded 4×4 …
        assert!(
            outcome.stats.register_tiles > 10,
            "only {} register tiles considered",
            outcome.stats.register_tiles
        );
        assert!(outcome.stats.register_tiles_supported >= 1);
        // … and the paper's 4×4 tile still wins.
        let best = outcome.best();
        assert_eq!((best.params.rm, best.params.rn), (4, 4));
    }

    #[test]
    fn cheap_stages_prune_before_any_timed_run() {
        let model = BandwidthModel::calibrated();
        let req = TuneRequest {
            top_k: 4,
            ..TuneRequest::square(Variant::Sched, 4608)
        };
        let outcome = search(&req, &model).unwrap();
        let s = outcome.stats;
        assert_eq!(
            s.enumerated,
            s.rejected_validate + s.rejected_shape + s.rejected_lint + s.feasible,
            "funnel must account for every candidate: {s:?}"
        );
        assert!(s.feasible > 20, "search space collapsed: {s:?}");
        assert!(
            s.pruned_pct() >= 80.0,
            "timed stage saw too many candidates: {s:?}"
        );
        // Scores are finite and sorted.
        for w in outcome.candidates.windows(2) {
            assert!(w[0].score_gflops >= w[1].score_gflops);
        }
        assert!(outcome
            .candidates
            .iter()
            .all(|c| c.score_gflops.is_finite() && c.stall_exact));
    }

    #[test]
    fn tall_skinny_shape_beats_paper_blocking() {
        // n = 96 wastes 2.7× of the paper's bN = 256 CG block; the
        // tuner must find a narrower pN.
        let model = BandwidthModel::calibrated();
        let req = TuneRequest {
            top_k: 6,
            ..TuneRequest::shaped(Variant::Sched, 2304, 96, 2304)
        };
        let outcome = search(&req, &model).unwrap();
        let best = outcome.best();
        let paper = outcome
            .timed_for(&Variant::Sched.paper_params())
            .expect("paper baseline is seeded");
        assert!(
            best.gflops > 1.02 * paper.gflops,
            "tuned {:?} at {:.1} vs paper {:.1}",
            best.params,
            best.gflops,
            paper.gflops
        );
        assert!(
            best.params.pn < Variant::Sched.paper_params().pn,
            "expected a narrower pN for n = 96, got {:?}",
            best.params
        );
    }

    #[test]
    fn exact_mode_only_offers_divisors() {
        let model = BandwidthModel::calibrated();
        let req = TuneRequest {
            top_k: 4,
            exact: true,
            ..TuneRequest::shaped(Variant::Sched, 256, 128, 256)
        };
        let outcome = search(&req, &model).unwrap();
        for r in &outcome.results {
            assert!(r.params.divides(256, 128, 256), "{:?}", r.params);
        }
        for c in &outcome.candidates {
            assert!(c.params.divides(256, 128, 256));
        }
    }

    #[test]
    fn search_is_deterministic() {
        let model = BandwidthModel::calibrated();
        let req = TuneRequest {
            top_k: 4,
            ..TuneRequest::shaped(Variant::Db, 1536, 768, 1536)
        };
        let a = search(&req, &model).unwrap();
        let b = search(&req, &model).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn resolve_policies() {
        let cache = TuneCache::ephemeral();
        let (m, n, k) = (256, 128, 256);
        let t = MeshTransport::default();
        let be = EngineBackend::default();
        // Off never chooses.
        assert!(resolve_in(&cache, TunePolicy::Off, Variant::Sched, m, n, k, t, be).is_none());
        // CacheOnly on a cold cache declines without searching.
        assert!(resolve_in(
            &cache,
            TunePolicy::CacheOnly,
            Variant::Sched,
            m,
            n,
            k,
            t,
            be
        )
        .is_none());
        // Search fills the cache …
        let p = resolve_in(
            &cache,
            TunePolicy::Search { top_k: 2 },
            Variant::Sched,
            m,
            n,
            k,
            t,
            be,
        )
        .expect("feasible space is non-empty");
        assert!(p.divides(m, n, k));
        // … and CacheOnly now resolves to the same blocking.
        let hit = resolve_in(
            &cache,
            TunePolicy::CacheOnly,
            Variant::Sched,
            m,
            n,
            k,
            t,
            be,
        )
        .expect("warm hit");
        assert_eq!(hit, p);
        // RAW declines under every policy.
        assert!(resolve_in(
            &cache,
            TunePolicy::Search { top_k: 2 },
            Variant::Raw,
            m,
            n,
            k,
            t,
            be
        )
        .is_none());
    }
}
