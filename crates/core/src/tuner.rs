//! Block-size auto-tuner (the paper's future-work direction).
//!
//! The paper chooses its blocking by hand from the §III-C model plus
//! spot measurements. This tuner closes the loop automatically: it
//! enumerates every feasible thread-level blocking (pM = 16 as the
//! collective scheme requires, pN a multiple of rN, pK a multiple of
//! 16, LDM capacity honoured), ranks candidates with the timing
//! simulator at a target problem size, and returns the ranked table.

use crate::error::DgemmError;
use crate::params::BlockingParams;
use crate::timing::estimate_shared;
use crate::variants::Variant;
use sw_mem::dma::BandwidthModel;

/// One tuner candidate with its simulated performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneResult {
    /// Candidate blocking.
    pub params: BlockingParams,
    /// Simulated Gflops at the (rounded) target size.
    pub gflops: f64,
    /// LDM doubles consumed.
    pub ldm_doubles: usize,
    /// The actual dimensions evaluated (target rounded to multiples of
    /// the candidate's CG blocks).
    pub dims: (usize, usize, usize),
}

/// Tunes a data-sharing variant near a square problem of size
/// `target`. Returns all feasible candidates, best first.
pub fn tune(
    variant: Variant,
    target: usize,
    model: &BandwidthModel,
) -> Result<Vec<TuneResult>, DgemmError> {
    assert!(
        variant != Variant::Raw,
        "the tuner explores the shared-scheme blocking space"
    );
    let db = variant.double_buffered();
    let mut out = Vec::new();
    for pk in (16..=160).step_by(16) {
        for pn in (4..=96).step_by(4) {
            let params = BlockingParams {
                pm: 16,
                pn,
                pk,
                rm: 4,
                rn: 4,
            };
            if params.validate(db).is_err() {
                continue;
            }
            let round = |t: usize, b: usize| t.next_multiple_of(b).max(b);
            let dims = (
                round(target, params.bm()),
                round(target, params.bn()),
                round(target, params.bk()),
            );
            let r = estimate_shared(variant, dims.0, dims.1, dims.2, params, model)?;
            out.push(TuneResult {
                params,
                gflops: r.gflops,
                ldm_doubles: params.ldm_doubles(db),
                dims,
            });
        }
    }
    out.sort_by(|a, b| b.gflops.partial_cmp(&a.gflops).unwrap());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_choice_is_near_optimal() {
        let model = BandwidthModel::calibrated();
        let results = tune(Variant::Sched, 9216, &model).unwrap();
        assert!(!results.is_empty());
        let best = results[0];
        let paper = results
            .iter()
            .find(|r| r.params.pn == 32 && r.params.pk == 96)
            .expect("the paper's blocking must be feasible");
        // The paper's hand-picked (pN=32, pK=96) should be within a few
        // percent of the tuner's best.
        assert!(
            paper.gflops > 0.93 * best.gflops,
            "paper choice {:.1} vs best {:.1} ({:?})",
            paper.gflops,
            best.gflops,
            best.params
        );
    }

    #[test]
    fn all_results_feasible_and_sorted() {
        let model = BandwidthModel::calibrated();
        let results = tune(Variant::Db, 4608, &model).unwrap();
        for w in results.windows(2) {
            assert!(w[0].gflops >= w[1].gflops);
        }
        for r in &results {
            assert!(r.params.validate(true).is_ok());
            assert!(r.ldm_doubles < sw_arch::consts::LDM_DOUBLES);
        }
    }

    #[test]
    #[should_panic]
    fn raw_not_tunable_here() {
        let _ = tune(Variant::Raw, 4608, &BandwidthModel::calibrated());
    }
}
