//! The analytic block-size model of §III-C.
//!
//! The paper derives its blocking sizes from bandwidth-reduction
//! arguments at each level of the memory hierarchy:
//!
//! * **CG level** — with B resident in LDM, the traffic of Algorithm 1
//!   is `mnk(2/bK + 1/bN) + kn` elements, giving a bandwidth reduction
//!   ratio `S ≈ 2 / (2/bK + 1/bN)`. Sustaining peak requires
//!   `F·W / S < Bt`; at the optimum `bK = 2·bN` this yields
//!   `bN > F·W / Bt` (≈175 for the CPE cluster, whence `bK ≥ 350`).
//! * **Thread level** — the LDM capacity bound
//!   `pM·pN + pN·pK + pK·pM < 8192` with `pK` a multiple of 16.
//! * **Register level** — `rM·rN + rM + rN < 32`, with reduction
//!   `2 / (1/rM + 1/rN)` maximized at `rM = rN` (= 4).

use sw_arch::consts::{DMA_THEORETICAL_GBS, LDM_DOUBLES, PEAK_GFLOPS_CG};

/// Bytes each flop must fetch in double precision (the paper's `W`).
pub const W_BYTES_PER_FLOP: f64 = 8.0;

/// CG-level traffic of Algorithm 1 in matrix elements: C is fetched and
/// written `K` times, A fetched `N` times, B fetched once.
pub fn cg_traffic_elements(m: usize, n: usize, k: usize, bk: usize, bn: usize) -> f64 {
    let (m, n, k) = (m as f64, n as f64, k as f64);
    let (bk, bn) = (bk as f64, bn as f64);
    2.0 * (k / bk) * m * n + (n / bn) * m * k + k * n
}

/// CG-level bandwidth reduction ratio
/// `S = 2 / (2/bK + 1/bN + 1/m)` (§III-C.1).
pub fn cg_bandwidth_reduction(bk: usize, bn: usize, m: usize) -> f64 {
    2.0 / (2.0 / bk as f64 + 1.0 / bn as f64 + 1.0 / m as f64)
}

/// Required main-memory bandwidth (GB/s) to sustain the full peak with
/// the given CG blocking: `Br = F·W / S`.
pub fn required_bandwidth_gbs(bk: usize, bn: usize) -> f64 {
    let s = 2.0 / (2.0 / bk as f64 + 1.0 / bn as f64);
    PEAK_GFLOPS_CG * W_BYTES_PER_FLOP / s
}

/// The paper's lower bound on `bN`: `bN > F·W / Bt` (with the optimal
/// choice `bK = 2·bN`). Evaluates to ≈174.7 for the SW26010 CG.
pub fn min_bn() -> f64 {
    PEAK_GFLOPS_CG * W_BYTES_PER_FLOP / DMA_THEORETICAL_GBS
}

/// Register-level bandwidth reduction between LDM and registers:
/// `2·rM·rN·pK / (rM·pK + rN·pK + 2·rM·rN) ≈ 2 / (1/rM + 1/rN)`.
pub fn register_bandwidth_reduction(rm: usize, rn: usize, pk: usize) -> f64 {
    let (rm, rn, pk) = (rm as f64, rn as f64, pk as f64);
    2.0 * rm * rn * pk / (rm * pk + rn * pk + 2.0 * rm * rn)
}

/// One feasible register blocking with its reduction ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegisterChoice {
    /// A registers.
    pub rm: usize,
    /// B registers.
    pub rn: usize,
    /// Registers consumed (`rM·rN + rM + rN`).
    pub registers: usize,
    /// Asymptotic LDM-bandwidth reduction `2/(1/rM + 1/rN)`.
    pub reduction: f64,
}

/// Enumerates all register blockings satisfying `rM·rN + rM + rN < 32`,
/// sorted by descending reduction. The best is `rM = rN = 4`
/// (§III-C.3).
pub fn enumerate_register_blockings() -> Vec<RegisterChoice> {
    let mut out = Vec::new();
    for rm in 1..32 {
        for rn in 1..32 {
            let regs = rm * rn + rm + rn;
            if regs < 32 {
                out.push(RegisterChoice {
                    rm,
                    rn,
                    registers: regs,
                    reduction: 2.0 / (1.0 / rm as f64 + 1.0 / rn as f64),
                });
            }
        }
    }
    out.sort_by(|a, b| {
        b.reduction
            .total_cmp(&a.reduction)
            .then(a.registers.cmp(&b.registers))
    });
    out
}

/// True when thread-level blocks fit the LDM capacity bound of
/// §III-C.2 (`< 8192` doubles), with optional double buffering of A
/// and C.
pub fn fits_ldm(pm: usize, pn: usize, pk: usize, double_buffered: bool) -> bool {
    let copies = if double_buffered { 2 } else { 1 };
    copies * (pm * pn + pm * pk) + pk * pn < LDM_DOUBLES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bn_bound() {
        // F = 742.4 Gflops/s, W = 8 B/flop, Bt = 34 GB/s:
        // bN > 174.7, and the paper states bN ≥ 175, bK ≥ 350.
        let b = min_bn();
        assert!((b - 174.68).abs() < 0.1, "min bN was {b}");
    }

    #[test]
    fn paper_blockings_satisfy_the_bound() {
        // bN = 8·48 = 384 (single) and 8·32 = 256 (double) both exceed
        // 175, and bK = 768 exceeds 350.
        assert!(384.0 > min_bn());
        assert!(256.0 > min_bn());
        // And the required bandwidth with those is below the channel.
        assert!(required_bandwidth_gbs(768, 384) < DMA_THEORETICAL_GBS);
        assert!(required_bandwidth_gbs(768, 256) < DMA_THEORETICAL_GBS);
    }

    #[test]
    fn reduction_improves_with_block_size() {
        assert!(cg_bandwidth_reduction(768, 384, 9216) > cg_bandwidth_reduction(384, 192, 9216));
        // And approaches 2/(2/bK + 1/bN) for large m.
        let s = cg_bandwidth_reduction(768, 384, usize::MAX / 2);
        assert!((s - 2.0 / (2.0 / 768.0 + 1.0 / 384.0)).abs() < 1e-6);
    }

    #[test]
    fn traffic_formula_matches_hand_count() {
        // m=n=k=768, bK=768, bN=384: 2·1·mn + 2·mk + kn.
        let t = cg_traffic_elements(768, 768, 768, 768, 384);
        let expect = (2 * 768 * 768 + 2 * 768 * 768 + 768 * 768) as f64;
        assert!((t - expect).abs() < 1.0);
    }

    #[test]
    fn best_practical_register_blocking_is_4x4() {
        // Under the raw constraint rM·rN + rM + rN < 32 the asymmetric
        // 4×5 tile scores slightly higher (reduction 4.44 at 29
        // registers) — but it leaves only 3 spare registers, too few
        // for the α/zero/temporary registers the real kernel needs.
        let all = enumerate_register_blockings();
        assert_eq!((all[0].rm.min(all[0].rn), all[0].rm.max(all[0].rn)), (4, 5));
        // Among blockings leaving ≥6 spare registers (α + zero + 4
        // epilogue temporaries), the paper's 4×4 is the best.
        let practical = all
            .iter()
            .find(|c| c.registers <= 32 - 6)
            .expect("some practical blocking");
        assert_eq!(
            (practical.rm, practical.rn),
            (4, 4),
            "best practical was {practical:?}"
        );
        assert_eq!(practical.registers, 24);
        assert!((practical.reduction - 4.0).abs() < 1e-12);
        // 5x5 is infeasible (35 registers).
        assert!(all.iter().all(|c| !(c.rm == 5 && c.rn == 5)));
    }

    #[test]
    fn register_reduction_asymptote() {
        // For large pK the reduction approaches 2/(1/rM + 1/rN) = 4.
        let r = register_bandwidth_reduction(4, 4, 100_000);
        assert!((r - 4.0).abs() < 0.01);
    }

    #[test]
    fn ldm_feasibility_matches_paper() {
        // Paper single-buffered choice fits; doubled it doesn't.
        assert!(fits_ldm(16, 48, 96, false));
        assert!(!fits_ldm(16, 48, 96, true));
        // Paper double-buffered choice fits.
        assert!(fits_ldm(16, 32, 96, true));
    }
}
