//! DGEMM for the SW26010 core group — the paper's contribution.
//!
//! This crate implements `C = α·A·B + β·C` (non-transposed, column-major,
//! dimensions multiples of the block factors — the case the paper
//! implements) on the simulated core group, with the full optimization
//! ladder of §V:
//!
//! | Variant | Adds |
//! |---------|------|
//! | [`Variant::Raw`]   | straightforward thread-blocked loop, `PE_MODE` DMA |
//! | [`Variant::Pe`]    | three-level blocking + collective data sharing (§III) |
//! | [`Variant::Row`]   | `ROW_MODE` data-thread mapping for A and C (§IV-A) |
//! | [`Variant::Db`]    | double buffering (§IV-B, Algorithm 2) |
//! | [`Variant::Sched`] | instruction-scheduled kernel (§IV-C, Algorithm 3) |
//!
//! Each variant runs in two modes sharing the same blocking plans:
//! *functional* (really computes, on the 64-thread simulator —
//! [`api::DgemmRunner`]) and *timing* (discrete-event estimate of
//! sustained Gflops at arbitrary sizes — [`timing::estimate`]).
//!
//! Beyond the paper's text, the crate includes the analytic block-size
//! model of §III-C ([`model`]), and an auto-tuner ([`tuner`]) in the
//! spirit of the paper's future work.

pub mod abft;
pub mod api;
pub mod diagnostics;
pub mod error;
pub mod gen;
pub mod lint;
pub mod mapping;
pub mod model;
pub mod multi;
pub mod padding;
pub mod params;
pub mod plan;
pub mod reference;
pub mod sharing;
pub mod streamed;
pub mod timing;
pub mod tunecache;
pub mod tuner;
pub mod variants;

pub use abft::AbftPolicy;
pub use api::{dgemm, dgemm_ex, DgemmReport, DgemmRunner, Op};
pub use error::DgemmError;
pub use lint::{lint_variant, LintPolicy};
pub use multi::{dgemm_multi_cg, estimate_multi_cg};
pub use params::BlockingParams;
pub use plan::GemmPlan;
pub use sw_faults::{FaultSpec, FaultStats, StuckSpec, WedgeSpec};
pub use sw_isa::EngineBackend;
pub use sw_mem::HostMatrix as Matrix;
pub use sw_mem::MemError;
pub use sw_sim::{MeshPath, MeshTransport};
pub use timing::{estimate, estimate_with, TimingReport};
pub use tunecache::{CachedTune, TuneCache};
pub use tuner::{search, tune, TuneOutcome, TunePolicy, TuneRequest, TuneResult};
pub use variants::batched::dgemm_batched;
pub use variants::Variant;
