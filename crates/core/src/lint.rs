//! Lint-on-build: the `sw-lint` analyzer threaded through plan
//! construction.
//!
//! Before a [`crate::DgemmRunner`] executes a plan, the kernel streams
//! that plan implies — all four thread roles of every collective strip
//! step, against the exact LDM layout `thread_body` allocates — are
//! statically analyzed: mesh rendezvous counting, LDM bounds and
//! double-buffer hazards, and structural stream checks. A clean report
//! here rules out the whole-mesh deadlock and silent-corruption
//! failure modes *before* a single simulated cycle runs.
//!
//! Linting a plan is memoized process-wide (like the kernel timing
//! cache in [`crate::timing`]): the report depends only on the kernel
//! shape, mapping, style, and buffering, so a sweep lints each distinct
//! plan shape once.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::error::DgemmError;
use crate::mapping::Mapping;
use crate::params::BlockingParams;
use crate::sharing::step_role;
use crate::variants::raw::RawParams;
use crate::variants::Variant;
use sw_arch::consts::DMA_TRANSACTION_DOUBLES;
use sw_arch::Coord;
use sw_isa::kernels::{BlockKernelCfg, KernelStyle, Operand};
use sw_isa::{gen_block_kernel_looped, Instr};
use sw_lint::{codes, lint_core_group, lint_stream, LdmLayout, LdmRegion, LintReport};

/// What the runner does with lint findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintPolicy {
    /// Error-severity findings abort the run ([`DgemmError::Lint`]).
    Deny,
    /// Findings are printed to stderr; the run proceeds.
    #[default]
    Warn,
    /// The analyzer does not run.
    Off,
}

/// The kernel streams of the shared variants iterate `pk` in chunks of
/// four; use that unroll whenever the shape allows (the generators
/// require `unroll | pk`).
fn unroll_for(pk: usize) -> usize {
    if pk.is_multiple_of(4) {
        4
    } else {
        1
    }
}

/// Unchecked replica of [`sw_mem::Ldm`]'s 128 B-aligned bump
/// allocation: the linter must be able to lay out an *oversized* plan
/// and report the overrun, where the real allocator would refuse.
struct Bump(usize);

impl Bump {
    fn alloc(&mut self, len: usize) -> (usize, usize) {
        let off = self.0.next_multiple_of(DMA_TRANSACTION_DOUBLES);
        self.0 = off + len;
        (off, len)
    }
}

/// Replicates `thread_body`'s LDM allocation order (A buffers, C
/// buffers, B buffer — 128 B-aligned bump allocation) plus one double
/// for α, and returns the layout with the DMA-owned partner halves
/// marked as hazards.
fn shared_layout(p: &BlockingParams, double_buffered: bool) -> (LdmLayout, BlockKernelCfg) {
    let nbuf = if double_buffered { 2 } else { 1 };
    let mut ldm = Bump(0);
    let a_bufs: Vec<_> = (0..nbuf).map(|_| ldm.alloc(p.pm * p.pk)).collect();
    let c_bufs: Vec<_> = (0..nbuf).map(|_| ldm.alloc(p.pm * p.pn)).collect();
    let b_buf = ldm.alloc(p.pk * p.pn);
    let alpha = ldm.alloc(1);

    let mut regions = Vec::new();
    for (i, &(off, len)) in a_bufs.iter().enumerate() {
        let r = LdmRegion::new(format!("A buffer {i}"), off, len);
        // While block i computes out of buffer i%2, the prefetch DMA
        // fills the partner buffer — compute must not touch it.
        regions.push(if i == 1 {
            LdmRegion {
                dma_hazard: true,
                ..r
            }
        } else {
            r
        });
    }
    for (i, &(off, len)) in c_bufs.iter().enumerate() {
        let r = LdmRegion::new(format!("C buffer {i}"), off, len);
        regions.push(if i == 1 {
            LdmRegion {
                dma_hazard: true,
                ..r
            }
        } else {
            r
        });
    }
    regions.push(LdmRegion::new("B buffer", b_buf.0, b_buf.1));
    regions.push(LdmRegion::new("alpha", alpha.0, alpha.1));

    let cfg = BlockKernelCfg {
        pm: p.pm,
        pn: p.pn,
        pk: p.pk,
        a_src: Operand::Ldm, // per-role; patched per stream
        b_src: Operand::Ldm,
        a_base: a_bufs[0].0,
        b_base: b_buf.0,
        c_base: c_bufs[0].0,
        alpha_addr: alpha.0,
    };
    (LdmLayout { regions }, cfg)
}

/// The tuner's per-candidate artifact: the exact LDM layout
/// `thread_body` would allocate for the blocking, plus the all-local
/// looped kernel stream — the steady-state schedule every collective
/// role shares modulo operand sources. Stage 1 lints the stream
/// against the layout for feasibility; stage 2 feeds it to the static
/// stall prover for a per-candidate cycle bound.
pub(crate) fn candidate_kernel(
    p: &BlockingParams,
    style: KernelStyle,
    double_buffered: bool,
) -> (LdmLayout, Vec<Instr>) {
    let (layout, cfg) = shared_layout(p, double_buffered);
    let prog = gen_block_kernel_looped(&cfg, style, unroll_for(p.pk));
    (layout, prog)
}

/// Lints all 8 collective steps of a shared-variant plan: per step, the
/// 64 role-assigned streams are analyzed as one core group (mesh
/// rendezvous included) against the double-buffer-aware layout.
pub fn lint_shared(
    p: &BlockingParams,
    mapping: Mapping,
    style: KernelStyle,
    double_buffered: bool,
) -> LintReport {
    let (layout, base_cfg) = shared_layout(p, double_buffered);
    let unroll = unroll_for(p.pk);
    let mut report = LintReport::new();
    for step in 0..8 {
        // Only four distinct role pairs exist per step; generate each
        // stream once and fan the references out over the mesh.
        let mut programs: Vec<((Operand, Operand), Vec<Instr>)> = Vec::new();
        let mut streams: Vec<usize> = Vec::with_capacity(64);
        for coord in Coord::all() {
            let role = step_role(mapping, step, coord);
            let key = (role.a, role.b);
            let idx = programs
                .iter()
                .position(|(k, _)| *k == key)
                .unwrap_or_else(|| {
                    let cfg = BlockKernelCfg {
                        a_src: role.a,
                        b_src: role.b,
                        ..base_cfg
                    };
                    programs.push((key, gen_block_kernel_looped(&cfg, style, unroll)));
                    programs.len() - 1
                });
            streams.push(idx);
        }
        let refs: Vec<&[Instr]> = streams.iter().map(|&i| programs[i].1.as_slice()).collect();
        report.merge(lint_core_group(&refs, Some(&layout)));
    }
    report.sort_and_dedup();
    report
}

/// Lints the RAW baseline's thread-local kernel against its panel
/// layout (C sub-block, A panel, B panel — no sharing, no hazards).
pub fn lint_raw(p: RawParams) -> LintReport {
    let mut ldm = Bump(0);
    let c_buf = ldm.alloc(p.pm * p.pn);
    let a_buf = ldm.alloc(p.pm * p.kc);
    let b_buf = ldm.alloc(p.kc * p.pn);
    let alpha = ldm.alloc(1);
    let layout = LdmLayout {
        regions: vec![
            LdmRegion::new("C sub-block", c_buf.0, c_buf.1),
            LdmRegion::new("A panel", a_buf.0, a_buf.1),
            LdmRegion::new("B panel", b_buf.0, b_buf.1),
            LdmRegion::new("alpha", alpha.0, alpha.1),
        ],
    };
    let cfg = BlockKernelCfg {
        pm: p.pm,
        pn: p.pn,
        pk: p.kc,
        a_src: Operand::Ldm,
        b_src: Operand::Ldm,
        a_base: a_buf.0,
        b_base: b_buf.0,
        c_base: c_buf.0,
        alpha_addr: alpha.0,
    };
    let prog = gen_block_kernel_looped(&cfg, KernelStyle::Naive, unroll_for(p.kc));
    let mut report = lint_stream(&prog, Some(&layout));
    // The generator register-unrolls the sub-block's whole tile grid
    // (4×16 tiles at the production 64×64 blocking); a deployable RAW
    // kernel loops over tiles, so the synthetic stream's instruction
    // footprint is a generator artifact, not a property of the
    // baseline. Every other check applies unchanged.
    report
        .diagnostics
        .retain(|d| d.code != codes::ICACHE_OVERFLOW);
    report
}

/// Process-wide memo of lint reports keyed by everything the report
/// depends on: a variant tag, the kernel shape, and the buffering.
type Key = (u8, usize, usize, usize, bool);

fn lint_cache() -> &'static Mutex<HashMap<Key, LintReport>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, LintReport>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn memoized(key: Key, compute: impl FnOnce() -> LintReport) -> LintReport {
    if let Some(r) = lint_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&key)
    {
        return r.clone();
    }
    let report = compute();
    lint_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, report.clone());
    report
}

/// [`lint_raw`], memoized process-wide.
pub fn lint_raw_cached(p: RawParams) -> LintReport {
    memoized((0, p.pm, p.pn, p.kc, false), || lint_raw(p))
}

/// [`lint_shared`] for the shared variant's mapping/style/buffering,
/// memoized process-wide.
pub fn lint_shared_cached(variant: Variant, params: &BlockingParams) -> LintReport {
    assert!(variant != Variant::Raw, "use lint_raw_cached for RAW");
    let style = if variant.kernel_style() == KernelStyle::Scheduled {
        2
    } else {
        1
    };
    let tag = style
        + if variant.mapping() == Mapping::Row {
            2
        } else {
            0
        };
    let key = (
        tag,
        params.pm,
        params.pn,
        params.pk,
        variant.double_buffered(),
    );
    let p = *params;
    memoized(key, move || {
        lint_shared(
            &p,
            variant.mapping(),
            variant.kernel_style(),
            variant.double_buffered(),
        )
    })
}

/// Lints the plan a variant would run at the given blockings (`params`
/// is ignored for RAW, `raw_params` for the shared variants), memoized
/// process-wide.
pub fn lint_variant(
    variant: Variant,
    params: &BlockingParams,
    raw_params: RawParams,
) -> LintReport {
    match variant {
        Variant::Raw => lint_raw_cached(raw_params),
        v => lint_shared_cached(v, params),
    }
}

/// Applies a policy to a report: `Deny` turns Error findings into a
/// [`DgemmError::Lint`], `Warn` prints them, `Off` is a no-op (the
/// caller should not even have produced the report).
pub fn enforce(policy: LintPolicy, report: &LintReport) -> Result<(), DgemmError> {
    match policy {
        LintPolicy::Off => Ok(()),
        LintPolicy::Warn => {
            if !report.is_clean() {
                eprintln!("sw-lint:\n{}", report.render_text());
            }
            Ok(())
        }
        LintPolicy::Deny => {
            if report.error_count() > 0 {
                return Err(DgemmError::Lint(report.render_text()));
            }
            if !report.is_clean() {
                eprintln!("sw-lint:\n{}", report.render_text());
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole acceptance bar: all five Fig. 6 variants lint clean
    /// at both the paper's production blocking and the test blocking.
    #[test]
    fn all_variants_lint_clean() {
        for v in Variant::ALL {
            for (p, rp) in [
                (v.paper_params(), RawParams::paper()),
                (v.test_params(), RawParams::test_small()),
            ] {
                let report = lint_variant(v, &p, rp);
                assert!(
                    report.is_clean(),
                    "{v} with {p:?}:\n{}",
                    report.render_text()
                );
            }
        }
    }

    #[test]
    fn deny_policy_rejects_bad_plan() {
        // A deliberately LDM-overflowing RAW blocking (validate() would
        // refuse it; the linter sees the kernel overrun directly).
        let bad = RawParams {
            pm: 64,
            pn: 112,
            kc: 16,
        };
        let report = lint_raw(bad);
        assert!(
            report.has_code(codes::LDM_OUT_OF_BOUNDS),
            "{}",
            report.render_text()
        );
        assert!(matches!(
            enforce(LintPolicy::Deny, &report),
            Err(DgemmError::Lint(_))
        ));
        assert!(enforce(LintPolicy::Off, &report).is_ok());
    }

    /// The mesh pass's static word counts are not just internally
    /// consistent — they equal the functional simulator's measured mesh
    /// traffic. A broadcast enqueues one copy per row/column mate, so
    /// the dynamic `sent` counters are 7× the static per-broadcaster
    /// counts; receives correspond one-to-one.
    #[test]
    fn static_comm_counts_match_dynamic_mesh_traffic() {
        use sw_lint::absint::interpret;
        use sw_lint::AbsintOptions;

        let v = Variant::Pe;
        let p = BlockingParams::test_small();
        // One CG block (grid 1×1×1): the run is exactly the 8
        // collective steps the static enumeration covers.
        let (m, n, k) = (p.bm(), p.bn(), p.bk());
        let a = crate::gen::random_matrix(m, k, 11);
        let b = crate::gen::random_matrix(k, n, 12);
        let mut c = crate::gen::random_matrix(m, n, 13);
        let report = crate::DgemmRunner::new(v)
            .params(p)
            .run(1.0, &a, &b, 0.0, &mut c)
            .unwrap();
        let mesh = report.stats.mesh;

        let (_, base_cfg) = shared_layout(&p, v.double_buffered());
        let unroll = unroll_for(p.pk);
        let mut sent = [0u64; 2];
        let mut recv = [0u64; 2];
        for step in 0..8 {
            for coord in Coord::all() {
                let role = step_role(v.mapping(), step, coord);
                let cfg = BlockKernelCfg {
                    a_src: role.a,
                    b_src: role.b,
                    ..base_cfg
                };
                let prog = gen_block_kernel_looped(&cfg, v.kernel_style(), unroll);
                let s = interpret(&prog, &AbsintOptions::default());
                assert!(s.exact, "role streams must fully resolve");
                for net in 0..2 {
                    sent[net] += s.comm.sent[net];
                    recv[net] += s.comm.recv[net];
                }
            }
        }
        assert_eq!(mesh.row_words_sent, 7 * sent[0]);
        assert_eq!(mesh.col_words_sent, 7 * sent[1]);
        assert_eq!(mesh.row_words_received, recv[0]);
        assert_eq!(mesh.col_words_received, recv[1]);
        // And the rendezvous balances: every enqueued copy is consumed.
        assert_eq!(mesh.row_words_sent, mesh.row_words_received);
        assert_eq!(mesh.col_words_sent, mesh.col_words_received);
    }

    #[test]
    fn lint_cache_returns_identical_reports() {
        let p = BlockingParams::test_small();
        let a = lint_variant(Variant::Sched, &p, RawParams::test_small());
        let b = lint_variant(Variant::Sched, &p, RawParams::test_small());
        assert_eq!(a.render_text(), b.render_text());
    }
}
