//! Failure diagnostics bundles: the post-mortem side of the flight
//! recorder.
//!
//! When a run dies with a structured [`DgemmError`] — a mesh deadlock,
//! an uncorrected ABFT mismatch, a spent retry budget, a lint denial —
//! the runner serializes everything the black box knows into **one
//! JSON file**: the per-CPE ring tails, the per-CPE busy-cycle
//! attribution, the fault-injection tallies, the global metrics
//! snapshot, the plan's critical path, and a suspected *first-cause*
//! event (the earliest fault decision, retry, or failed mesh episode
//! across all rings, in the globally-comparable simulated clock). The
//! `sw-diagnose` binary — or [`render_bundle_str`] directly — turns the
//! bundle back into a human incident report.
//!
//! Bundles are best-effort: emission failures never mask the run's own
//! error. The directory is `$SW_DIAG_DIR`, defaulting to
//! `diagnostics/` under the current directory (gitignored).

use crate::error::DgemmError;
use crate::plan::GemmPlan;
use crate::variants::Variant;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use sw_faults::FaultStats;
use sw_probe::flight::{self, EventKind, FlightRecorder, Lane};
use sw_probe::json::{self, Value};
use sw_probe::metrics::Registry;
use sw_sim::CoreGroup;

/// Schema tag written into every bundle; bump on breaking changes.
pub const BUNDLE_SCHEMA: &str = "sw-dgemm-diagnostics/1";

/// Environment variable overriding the bundle directory.
pub const DIAG_DIR_ENV: &str = "SW_DIAG_DIR";

/// Everything the dispatch path learned before it failed, handed to
/// the bundle writer alongside the error itself.
#[derive(Debug, Default)]
pub(crate) struct DiagInfo {
    /// Fault tallies, when an injector was installed.
    pub faults: Option<FaultStats>,
    /// The validated plan, once dispatch got that far.
    pub plan: Option<GemmPlan>,
    /// Caller-supplied discriminator (a request id in `sw-serve`),
    /// folded into the bundle filename so concurrent failures from
    /// different requests can never collide or be misattributed.
    pub tag: Option<String>,
}

/// Events of the last recorded tail serialized per ring; bounds the
/// bundle size to a few hundred KB at worst.
const TAIL_EVENTS: usize = 64;

/// Monotonic per-process bundle sequence: two failures in the same
/// millisecond (or the same request retried) still get distinct names.
static BUNDLE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Per-process emission cap; once reached, further bundles are counted
/// as dropped instead of written (a failing service must not fill the
/// disk with thousands of near-identical bundles).
static BUNDLE_CAP: AtomicU64 = AtomicU64::new(DEFAULT_BUNDLE_CAP);

/// Bundles suppressed by the cap since process start.
static BUNDLES_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Default per-process bundle cap (see [`set_bundle_cap`]).
pub const DEFAULT_BUNDLE_CAP: u64 = 256;

/// Overrides the per-process bundle cap. Services that expect fault
/// storms lower this; `u64::MAX` disables the cap.
pub fn set_bundle_cap(cap: u64) {
    BUNDLE_CAP.store(cap, Ordering::Relaxed);
}

/// How many bundles the cap has suppressed since process start.
pub fn bundles_dropped() -> u64 {
    BUNDLES_DROPPED.load(Ordering::Relaxed)
}

/// Whether the `seq`-th bundle (0-based) is admitted under `cap`.
fn admit(seq: u64, cap: u64) -> bool {
    seq < cap
}

/// Builds the collision-proof bundle filename: error class, wall-clock
/// stamp, pid, monotonic sequence, and (when present) the caller's
/// request discriminator. Uniqueness within a process is carried by
/// `seq` alone; pid + stamp keep names unique across processes sharing
/// one `$SW_DIAG_DIR`.
fn bundle_name(err: &DgemmError, stamp: u128, seq: u64, tag: Option<&str>) -> String {
    let base = format!(
        "diag-{}-{}-{}-{}",
        error_kind(err),
        stamp,
        std::process::id(),
        seq
    );
    match tag {
        Some(tag) => format!("{base}-{}.json", sanitize_tag(tag)),
        None => format!("{base}.json"),
    }
}

/// Filename-safe projection of a caller tag (alnum, `-`, `_` kept,
/// everything else mapped to `_`, capped at 48 chars).
fn sanitize_tag(tag: &str) -> String {
    tag.chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Emits a diagnostics bundle for a failed run, best-effort. Returns
/// the bundle path, or `None` when the error class carries no runtime
/// evidence (bad dims/params never started a run; a cancel is a policy
/// outcome, not an incident), the per-process cap is spent, or the
/// write failed.
pub(crate) fn emit_on_error(
    cg: &CoreGroup,
    err: &DgemmError,
    variant: Variant,
    dims: (usize, usize, usize),
    info: &DiagInfo,
) -> Option<PathBuf> {
    if matches!(
        err,
        DgemmError::BadDims(_) | DgemmError::BadParams(_) | DgemmError::Cancelled { .. }
    ) {
        return None;
    }
    let seq = BUNDLE_SEQ.fetch_add(1, Ordering::Relaxed);
    if !admit(seq, BUNDLE_CAP.load(Ordering::Relaxed)) {
        BUNDLES_DROPPED.fetch_add(1, Ordering::Relaxed);
        sw_probe::metrics::global()
            .counter("diag.bundles.dropped")
            .inc();
        return None;
    }
    let body = render_bundle_json(cg.flight(), err, variant, dims, info);
    let dir = std::env::var_os(DIAG_DIR_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("diagnostics"));
    std::fs::create_dir_all(&dir).ok()?;
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let path = dir.join(bundle_name(err, stamp, seq, info.tag.as_deref()));
    std::fs::write(&path, body).ok()?;
    Some(path)
}

/// The short machine-readable class of a [`DgemmError`].
fn error_kind(err: &DgemmError) -> &'static str {
    match err {
        DgemmError::BadParams(_) => "bad-params",
        DgemmError::BadDims(_) => "bad-dims",
        DgemmError::Mem(_) => "mem",
        DgemmError::Lint(_) => "lint",
        DgemmError::MeshDeadlock { .. } => "mesh-deadlock",
        DgemmError::AbftMismatch { .. } => "abft-mismatch",
        DgemmError::Cancelled { .. } => "cancelled",
    }
}

/// Human label for an event's `code`, dependent on the kind.
fn code_label(kind: EventKind, code: u32) -> String {
    match kind {
        EventKind::DmaIssue | EventKind::DmaComplete => flight::dma_op_name(code).to_string(),
        EventKind::MeshEpisode => flight::mesh_episode_name(code),
        EventKind::FaultDecision => flight::fault_code::name(code).to_string(),
        EventKind::BarrierArrive | EventKind::BarrierRelease => match code {
            0 => "all".to_string(),
            1 => "row".to_string(),
            s => format!("scope-{s}"),
        },
        EventKind::RetryAttempt => format!("attempt-{code}"),
        EventKind::KernelStart | EventKind::KernelEnd => String::new(),
    }
}

/// Cause rank of an event for the first-cause scan, `None` for pure
/// symptoms. Injected fault decisions are root causes by construction
/// and outrank everything; retries outrank failed mesh episodes,
/// because a starved/deadlocked episode is stamped at its *victim's*
/// frozen clock, which can precede the perpetrator's clock even though
/// the injected fault is causally first.
fn cause_rank(ev: &flight::FlightEvent) -> Option<u8> {
    match ev.kind {
        EventKind::FaultDecision => Some(0),
        EventKind::RetryAttempt => Some(1),
        EventKind::MeshEpisode if (ev.code >> 8) != flight::mesh_outcome::OK => Some(2),
        _ => None,
    }
}

/// Serializes the full bundle to a JSON string. Exposed for tests; the
/// runner calls it through [`emit_on_error`].
pub(crate) fn render_bundle_json(
    recorder: &FlightRecorder,
    err: &DgemmError,
    variant: Variant,
    dims: (usize, usize, usize),
    info: &DiagInfo,
) -> String {
    let (m, n, k) = dims;
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{}\",", json::escape(BUNDLE_SCHEMA));

    // --- error ------------------------------------------------------
    let _ = write!(
        out,
        "  \"error\": {{\"kind\": \"{}\", \"message\": \"{}\"",
        error_kind(err),
        json::escape(&err.to_string())
    );
    match err {
        DgemmError::MeshDeadlock { coord, summary } => {
            let _ = write!(
                out,
                ", \"coord\": [{}, {}], \"rendezvous_summary\": \"{}\"",
                coord.0,
                coord.1,
                json::escape(summary)
            );
        }
        DgemmError::AbftMismatch {
            block,
            attempts,
            detail,
        } => {
            let _ = write!(
                out,
                ", \"block\": [{}, {}, {}], \"attempts\": {attempts}, \"detail\": \"{}\"",
                block.0,
                block.1,
                block.2,
                json::escape(detail)
            );
        }
        _ => {}
    }
    out.push_str("},\n");

    // --- run --------------------------------------------------------
    let _ = writeln!(
        out,
        "  \"run\": {{\"variant\": \"{}\", \"m\": {m}, \"n\": {n}, \"k\": {k}}},",
        variant.name()
    );

    // --- per-CPE attribution (clock == Σ busy by recorder invariant) -
    out.push_str("  \"attribution\": [\n");
    let attrs = recorder.attribution();
    for (idx, a) in attrs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"cpe\": {}, \"clock\": {}, \"compute\": {}, \"dma\": {}, \"mesh\": {}, \
             \"barrier\": {}}}",
            a.ring,
            a.clock,
            a.busy[Lane::Compute as usize],
            a.busy[Lane::Dma as usize],
            a.busy[Lane::Mesh as usize],
            a.busy[Lane::Barrier as usize],
        );
        out.push_str(if idx + 1 < attrs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    // --- ring tails + first-cause scan ------------------------------
    let mut first_cause: Option<(u8, usize, flight::FlightEvent)> = None;
    out.push_str("  \"rings\": [\n");
    let mut first_ring = true;
    for ring in 0..flight::N_RINGS {
        let total = recorder.total(ring);
        if total == 0 {
            continue;
        }
        let tail = recorder.tail(ring);
        let tail = &tail[tail.len().saturating_sub(TAIL_EVENTS)..];
        for ev in recorder.tail(ring) {
            if let Some(rank) = cause_rank(&ev) {
                if first_cause
                    .as_ref()
                    .is_none_or(|(fr, r, f)| (rank, ev.clock, ring) < (*fr, f.clock, *r))
                {
                    first_cause = Some((rank, ring, ev));
                }
            }
        }
        if !first_ring {
            out.push_str(",\n");
        }
        first_ring = false;
        let ring_name = if ring == flight::MPE_RING {
            "mpe".to_string()
        } else {
            format!("cpe-{ring}")
        };
        let _ = write!(
            out,
            "    {{\"ring\": {ring}, \"name\": \"{ring_name}\", \"total_events\": {total}, \
             \"events\": ["
        );
        for (i, ev) in tail.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"seq\": {}, \"clock\": {}, \"kind\": \"{}\", \"code\": {}, \"label\": \
                 \"{}\", \"arg\": {}}}",
                ev.seq,
                ev.clock,
                ev.kind.name(),
                ev.code,
                json::escape(&code_label(ev.kind, ev.code)),
                ev.arg
            );
        }
        out.push_str("]}");
    }
    out.push_str("\n  ],\n");

    // --- suspected first cause --------------------------------------
    match &first_cause {
        Some((_, ring, ev)) => {
            let _ = writeln!(
                out,
                "  \"first_cause\": {{\"ring\": {ring}, \"seq\": {}, \"clock\": {}, \"kind\": \
                 \"{}\", \"label\": \"{}\", \"arg\": {}}},",
                ev.seq,
                ev.clock,
                ev.kind.name(),
                json::escape(&code_label(ev.kind, ev.code)),
                ev.arg
            );
        }
        None => out.push_str("  \"first_cause\": null,\n"),
    }

    // --- plan critical path (the timing model's view of this run) ---
    match critical_path_value(variant, dims, info) {
        Some(cp) => {
            let _ = writeln!(out, "  \"critical_path\": {cp},");
        }
        None => out.push_str("  \"critical_path\": null,\n"),
    }

    // --- fault tallies ----------------------------------------------
    match &info.faults {
        Some(fs) => {
            // FaultStats has no serializer of its own; publish into a
            // throwaway registry and reuse the snapshot's JSON.
            let reg = Registry::new();
            fs.publish(&reg);
            let _ = writeln!(out, "  \"fault_stats\": {},", reg.snapshot().to_json());
        }
        None => out.push_str("  \"fault_stats\": null,\n"),
    }

    // --- global metrics snapshot ------------------------------------
    let _ = writeln!(
        out,
        "  \"metrics\": {}",
        sw_probe::metrics::global().snapshot().to_json()
    );
    out.push_str("}\n");
    out
}

/// The plan's critical path, rendered as a JSON object — top segments
/// of the timing DAG the run *would* follow. `None` for RAW (no shared
/// DAG) or when no plan was validated before the failure.
fn critical_path_value(
    variant: Variant,
    dims: (usize, usize, usize),
    info: &DiagInfo,
) -> Option<String> {
    let plan = info.plan.as_ref()?;
    if variant == Variant::Raw {
        return None;
    }
    let (m, n, k) = dims;
    let model = sw_mem::dma::BandwidthModel::calibrated();
    let (dag, _) = crate::timing::build_shared_dag(variant, m, n, k, plan.params, &model).ok()?;
    let cp = dag.critical_path();
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"makespan_cycles\": {}, \"segments\": [",
        cp.makespan_cycles
    );
    for (i, (label, resource, cycles, count)) in cp.top_segments(3).iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"label\": \"{}\", \"resource\": \"{resource:?}\", \"cycles\": {cycles}, \
             \"count\": {count}, \"pct\": {:.2}}}",
            json::escape(label),
            if cp.makespan_cycles == 0 {
                0.0
            } else {
                100.0 * *cycles as f64 / cp.makespan_cycles as f64
            }
        );
    }
    s.push_str("]}");
    Some(s)
}

// ---------------------------------------------------------------------
// Rendering (the sw-diagnose side)
// ---------------------------------------------------------------------

/// Renders a serialized bundle as a human incident report: the error,
/// the suspected first cause, the busy-cycle attribution table, the
/// timeline tail of the most interesting rings, and the plan's
/// critical-path top segments.
pub fn render_bundle_str(src: &str) -> Result<String, String> {
    let v = Value::parse(src).map_err(|e| format!("bundle is not valid JSON: {e}"))?;
    let obj = v.as_obj().ok_or("bundle root is not an object")?;
    let schema = obj
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("bundle has no schema tag")?;
    if schema != BUNDLE_SCHEMA {
        return Err(format!(
            "unsupported bundle schema {schema:?} (expected {BUNDLE_SCHEMA:?})"
        ));
    }
    let mut out = String::new();
    out.push_str("== sw-dgemm incident report ==\n");

    if let Some(run) = obj.get("run").and_then(Value::as_obj) {
        let g = |k: &str| run.get(k).and_then(Value::as_u64).unwrap_or(0);
        let _ = writeln!(
            out,
            "run        : {} {}x{}x{}",
            run.get("variant").and_then(Value::as_str).unwrap_or("?"),
            g("m"),
            g("n"),
            g("k")
        );
    }
    let err = obj.get("error").and_then(Value::as_obj).ok_or("no error")?;
    let _ = writeln!(
        out,
        "error      : [{}] {}",
        err.get("kind").and_then(Value::as_str).unwrap_or("?"),
        err.get("message")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .lines()
            .next()
            .unwrap_or("")
    );
    match obj.get("first_cause") {
        Some(Value::Obj(fc)) => {
            let ring = fc.get("ring").and_then(Value::as_u64).unwrap_or(0);
            let who = if ring == flight::MPE_RING as u64 {
                "mpe".to_string()
            } else {
                format!("cpe-{ring}")
            };
            let _ = writeln!(
                out,
                "first cause: {} {} on {who} at clock {} (seq {}, arg {})",
                fc.get("kind").and_then(Value::as_str).unwrap_or("?"),
                fc.get("label").and_then(Value::as_str).unwrap_or(""),
                fc.get("clock").and_then(Value::as_u64).unwrap_or(0),
                fc.get("seq").and_then(Value::as_u64).unwrap_or(0),
                fc.get("arg").and_then(Value::as_u64).unwrap_or(0),
            );
        }
        _ => out.push_str("first cause: none recorded\n"),
    }

    // Attribution table: the rings that spent the most cycles.
    if let Some(attr) = obj.get("attribution").and_then(Value::as_arr) {
        let mut rows: Vec<(u64, u64, u64, u64, u64, u64)> = attr
            .iter()
            .filter_map(|a| {
                let o = a.as_obj()?;
                let g = |k: &str| o.get(k).and_then(Value::as_u64).unwrap_or(0);
                Some((
                    g("cpe"),
                    g("clock"),
                    g("compute"),
                    g("dma"),
                    g("mesh"),
                    g("barrier"),
                ))
            })
            .filter(|r| r.1 > 0)
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        if !rows.is_empty() {
            out.push_str("\nattribution (busiest CPEs, cycles):\n");
            out.push_str("  cpe   clock      compute    dma        mesh       barrier\n");
            for (cpe, clock, compute, dma, mesh, barrier) in rows.iter().take(8) {
                let _ = writeln!(
                    out,
                    "  {cpe:<5} {clock:<10} {compute:<10} {dma:<10} {mesh:<10} {barrier}"
                );
            }
        }
    }

    if let Some(Value::Obj(cp)) = obj.get("critical_path") {
        let total = cp
            .get("makespan_cycles")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        let _ = writeln!(out, "\nplanned critical path ({total} cycles makespan):");
        if let Some(segs) = cp.get("segments").and_then(Value::as_arr) {
            for s in segs {
                let Some(o) = s.as_obj() else { continue };
                let _ = writeln!(
                    out,
                    "  {:<24} {:<5} {:>12} cycles  {:>6.2}%  ({} segs)",
                    o.get("label").and_then(Value::as_str).unwrap_or("?"),
                    o.get("resource").and_then(Value::as_str).unwrap_or("?"),
                    o.get("cycles").and_then(Value::as_u64).unwrap_or(0),
                    o.get("pct").and_then(Value::as_f64).unwrap_or(0.0),
                    o.get("count").and_then(Value::as_u64).unwrap_or(0),
                );
            }
        }
    }

    if let Some(Value::Obj(fs)) = obj.get("fault_stats") {
        out.push_str("\nfault tallies (nonzero):\n");
        let mut any = false;
        for (name, val) in fs {
            if let Some(n) = val.as_u64() {
                if n > 0 {
                    let _ = writeln!(out, "  {name:<32} {n}");
                    any = true;
                }
            }
        }
        if !any {
            out.push_str("  (all zero)\n");
        }
    }

    // Timeline tails: rings holding cause events first, then the
    // busiest, capped to keep the report readable.
    if let Some(rings) = obj.get("rings").and_then(Value::as_arr) {
        let mut ordered: Vec<&Value> = rings.iter().collect();
        ordered.sort_by_key(|r| {
            let o = r.as_obj();
            let causes = o
                .and_then(|o| o.get("events"))
                .and_then(Value::as_arr)
                .map(|evs| {
                    evs.iter()
                        .filter(|e| {
                            matches!(
                                e.as_obj()
                                    .and_then(|o| o.get("kind"))
                                    .and_then(Value::as_str),
                                Some("fault-decision") | Some("retry-attempt")
                            )
                        })
                        .count()
                })
                .unwrap_or(0);
            let total = o
                .and_then(|o| o.get("total_events"))
                .and_then(Value::as_u64)
                .unwrap_or(0);
            (std::cmp::Reverse(causes), std::cmp::Reverse(total))
        });
        out.push_str("\ntimeline tails:\n");
        for r in ordered.iter().take(4) {
            let Some(o) = r.as_obj() else { continue };
            let name = o.get("name").and_then(Value::as_str).unwrap_or("?");
            let total = o.get("total_events").and_then(Value::as_u64).unwrap_or(0);
            let _ = writeln!(out, "  {name} ({total} events total):");
            if let Some(evs) = o.get("events").and_then(Value::as_arr) {
                let tail = &evs[evs.len().saturating_sub(8)..];
                for e in tail {
                    let Some(eo) = e.as_obj() else { continue };
                    let g = |k: &str| eo.get(k).and_then(Value::as_u64).unwrap_or(0);
                    let _ = writeln!(
                        out,
                        "    @{:<10} {:<16} {:<20} arg={}",
                        g("clock"),
                        eo.get("kind").and_then(Value::as_str).unwrap_or("?"),
                        eo.get("label").and_then(Value::as_str).unwrap_or(""),
                        g("arg"),
                    );
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_for_synthetic_error_round_trips() {
        let rec = FlightRecorder::new();
        rec.advance(3, Lane::Dma, 120);
        rec.record(
            3,
            EventKind::FaultDecision,
            flight::fault_code::DMA_TRANSIENT,
            7,
        );
        rec.advance(3, Lane::Compute, 80);
        let err = DgemmError::Lint("tail: denied".to_string());
        let info = DiagInfo::default();
        let body = render_bundle_json(&rec, &err, Variant::Sched, (256, 256, 256), &info);
        let v = Value::parse(&body).expect("bundle is valid JSON");
        let obj = v.as_obj().unwrap();
        assert_eq!(
            obj.get("schema").and_then(Value::as_str),
            Some(BUNDLE_SCHEMA)
        );
        let fc = obj.get("first_cause").unwrap().as_obj().unwrap();
        assert_eq!(fc.get("ring").and_then(Value::as_u64), Some(3));
        assert_eq!(fc.get("clock").and_then(Value::as_u64), Some(120));
        let report = render_bundle_str(&body).expect("renders");
        assert!(report.contains("incident report"));
        assert!(report.contains("fault-decision"));
        assert!(report.contains("SCHED"));
    }

    #[test]
    fn renderer_rejects_garbage_and_wrong_schema() {
        assert!(render_bundle_str("not json").is_err());
        assert!(render_bundle_str("{\"schema\": \"other/9\"}").is_err());
    }

    #[test]
    fn bundle_names_are_collision_proof_and_tagged() {
        let err = DgemmError::Lint("x".into());
        // Same wall-clock stamp, same error class: the monotonic
        // sequence alone must keep the names distinct.
        let a = bundle_name(&err, 1234, 7, None);
        let b = bundle_name(&err, 1234, 8, None);
        assert_ne!(a, b);
        assert!(a.starts_with("diag-lint-1234-") && a.ends_with("-7.json"));
        // The request discriminator lands in the name, sanitized.
        let t = bundle_name(&err, 1234, 9, Some("req 42/tenant:a"));
        assert!(t.ends_with("-9-req_42_tenant_a.json"), "got {t}");
        // Pathological tags are length-capped and filename-safe.
        let long = "x".repeat(300) + "/../../etc";
        let c = bundle_name(&err, 1234, 10, Some(&long));
        assert!(c.len() < 100);
        assert!(!c.contains('/'));
    }

    #[test]
    fn cap_admits_below_and_drops_at_limit() {
        assert!(admit(0, 1));
        assert!(!admit(1, 1));
        assert!(admit(255, DEFAULT_BUNDLE_CAP));
        assert!(!admit(DEFAULT_BUNDLE_CAP, DEFAULT_BUNDLE_CAP));
        assert!(admit(u64::MAX - 1, u64::MAX));
    }

    #[test]
    fn cancelled_runs_never_emit_bundles() {
        // Policy outcomes carry no incident evidence; the skip happens
        // before the sequence is consumed or any file is touched.
        let cg = CoreGroup::new();
        let before = BUNDLE_SEQ.load(Ordering::Relaxed);
        let out = emit_on_error(
            &cg,
            &DgemmError::Cancelled { deadline: true },
            Variant::Sched,
            (128, 64, 128),
            &DiagInfo::default(),
        );
        assert!(out.is_none());
        assert_eq!(BUNDLE_SEQ.load(Ordering::Relaxed), before);
    }
}
