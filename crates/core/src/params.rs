//! Blocking parameters of the three-level layered algorithm (§III).

use crate::error::DgemmError;
use sw_arch::consts::{DMA_TRANSACTION_DOUBLES, LDM_DOUBLES, VREG_LANES};

/// Three-level blocking parameters.
///
/// CG-level blocks are `bM×bK` (A), `bK×bN` (B) and `bM×bN` (C) with
/// `bM = 8·pM`, `bK = 8·pK`, `bN = 8·pN`; each is an 8×8 grid of
/// thread-level blocks. Register-level blocking is `rM = rN = 4`
/// vector registers (16 rows × 4 columns per tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingParams {
    /// Thread-level block rows.
    pub pm: usize,
    /// Thread-level block columns.
    pub pn: usize,
    /// Thread-level block depth.
    pub pk: usize,
    /// A-register count of the register tile (fixed at 4 by the kernel).
    pub rm: usize,
    /// B-register count of the register tile (fixed at 4 by the kernel).
    pub rn: usize,
}

impl BlockingParams {
    /// The paper's blocking before double buffering (§III-C.2):
    /// pM = 16, pN = 48, pK = 96 — used by the PE and ROW variants.
    pub fn paper_single() -> Self {
        BlockingParams {
            pm: 16,
            pn: 48,
            pk: 96,
            rm: 4,
            rn: 4,
        }
    }

    /// The paper's blocking with double buffering (§IV-B): pM = 16,
    /// pN = 32, pK = 96 — used by the DB and SCHED variants.
    pub fn paper_double() -> Self {
        BlockingParams {
            pm: 16,
            pn: 32,
            pk: 96,
            rm: 4,
            rn: 4,
        }
    }

    /// A small blocking for tests (matrix dimensions stay tiny while
    /// still exercising every code path): pM = 16, pN = 8, pK = 16.
    pub fn test_small() -> Self {
        BlockingParams {
            pm: 16,
            pn: 8,
            pk: 16,
            rm: 4,
            rn: 4,
        }
    }

    /// CG-level block rows (`bM = 8·pM`).
    #[inline]
    pub fn bm(&self) -> usize {
        8 * self.pm
    }

    /// CG-level block columns (`bN = 8·pN`).
    #[inline]
    pub fn bn(&self) -> usize {
        8 * self.pn
    }

    /// CG-level block depth (`bK = 8·pK`).
    #[inline]
    pub fn bk(&self) -> usize {
        8 * self.pk
    }

    /// Doubles of LDM one CPE needs for its thread-level blocks: C and
    /// A are double-buffered when `double_buffered` (Algorithm 2
    /// prefetches the next A and C blocks while computing), B is
    /// resident for the whole (j, l) iteration.
    pub fn ldm_doubles(&self, double_buffered: bool) -> usize {
        let copies = if double_buffered { 2 } else { 1 };
        copies * (self.pm * self.pn + self.pm * self.pk) + self.pk * self.pn
    }

    /// Whether an (m, n, k) problem divides exactly into this
    /// blocking's CG-level blocks — the aligned case the kernel runs
    /// without padding, and the condition the autotuner's runner path
    /// imposes on candidates.
    #[inline]
    pub fn divides(&self, m: usize, n: usize, k: usize) -> bool {
        m.is_multiple_of(self.bm()) && n.is_multiple_of(self.bn()) && k.is_multiple_of(self.bk())
    }

    /// Validates the parameters against the architecture:
    ///
    /// * register budget `rM·rN + rM + rN < 32` (§III-C.3), with
    ///   `rM = rN = 4` required by the generated kernel;
    /// * `pM` a multiple of 16 (the register tile covers `rM` vector
    ///   registers × 4 lanes of rows);
    /// * `pN` a multiple of `rN`;
    /// * `pK` a multiple of 16 (the 128 B DMA transaction, §III-C.2);
    /// * thread-level blocks fit the 64 KB LDM (§III-C.2 / §IV-B).
    pub fn validate(&self, double_buffered: bool) -> Result<(), DgemmError> {
        if self.rm * self.rn + self.rm + self.rn >= 32 {
            return Err(DgemmError::BadParams(format!(
                "register blocking {}x{} exceeds the 32-register budget",
                self.rm, self.rn
            )));
        }
        if self.rm != 4 || self.rn != 4 {
            return Err(DgemmError::BadParams(
                "the generated kernel implements the paper's rM = rN = 4 register tile".into(),
            ));
        }
        if self.pm == 0 || !self.pm.is_multiple_of(self.rm * VREG_LANES) {
            return Err(DgemmError::BadParams(format!(
                "pM = {} must be a positive multiple of {}",
                self.pm,
                self.rm * VREG_LANES
            )));
        }
        if self.pn == 0 || !self.pn.is_multiple_of(self.rn) {
            return Err(DgemmError::BadParams(format!(
                "pN = {} must be a positive multiple of rN = {}",
                self.pn, self.rn
            )));
        }
        if self.pk == 0 || !self.pk.is_multiple_of(DMA_TRANSACTION_DOUBLES) {
            return Err(DgemmError::BadParams(format!(
                "pK = {} must be a positive multiple of 16 (128 B DMA transactions)",
                self.pk
            )));
        }
        let need = self.ldm_doubles(double_buffered);
        if need >= LDM_DOUBLES {
            return Err(DgemmError::BadParams(format!(
                "thread-level blocks need {need} doubles{}, exceeding the 8192-double LDM",
                if double_buffered {
                    " (double-buffered)"
                } else {
                    ""
                }
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_are_valid() {
        BlockingParams::paper_single().validate(false).unwrap();
        BlockingParams::paper_double().validate(true).unwrap();
        BlockingParams::test_small().validate(true).unwrap();
    }

    #[test]
    fn paper_single_does_not_fit_double_buffered() {
        // §IV-B: "if we still use pM = 16, pK = 96 and pN = 48 as
        // before, it would exceed the capacity of the LDM".
        let err = BlockingParams::paper_single().validate(true).unwrap_err();
        assert!(matches!(err, DgemmError::BadParams(_)));
    }

    #[test]
    fn cg_blocks_are_8x_thread_blocks() {
        let p = BlockingParams::paper_double();
        assert_eq!((p.bm(), p.bn(), p.bk()), (128, 256, 768));
    }

    #[test]
    fn ldm_budget_matches_hand_count() {
        let p = BlockingParams::paper_double();
        assert_eq!(p.ldm_doubles(true), 2 * (16 * 32 + 16 * 96) + 96 * 32);
        let q = BlockingParams::paper_single();
        assert_eq!(q.ldm_doubles(false), 16 * 48 + 16 * 96 + 96 * 48);
    }

    #[test]
    fn constraint_violations_caught() {
        let base = BlockingParams::paper_double();
        for (bad, db) in [
            (BlockingParams { pm: 8, ..base }, false),
            (BlockingParams { pn: 30, ..base }, false),
            (BlockingParams { pk: 40, ..base }, false),
            (
                BlockingParams {
                    rm: 5,
                    rn: 5,
                    ..base
                },
                false,
            ),
            (
                BlockingParams {
                    pm: 64,
                    pn: 64,
                    pk: 64,
                    ..base
                },
                false,
            ), // LDM overflow
        ] {
            assert!(bad.validate(db).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn divides_is_exact_cg_alignment() {
        let p = BlockingParams::paper_double();
        assert!(p.divides(128, 256, 768));
        assert!(p.divides(256, 512, 1536));
        assert!(!p.divides(129, 256, 768));
        assert!(!p.divides(128, 256, 769));
    }

    #[test]
    fn register_budget_formula() {
        // rM = rN = 5 would need 5·5+5+5 = 35 ≥ 32 registers.
        let p = BlockingParams {
            rm: 5,
            rn: 5,
            ..BlockingParams::paper_double()
        };
        assert!(p.validate(false).is_err());
    }
}
