//! Persistent tune cache: the autotuner's winners on disk.
//!
//! A search over the blocking space costs milliseconds of wall time
//! (stall proofs + a handful of timed estimates); a repeated tenant
//! shape should pay it once per process *fleet*, not once per call.
//! This module keeps the winners in a process-wide map backed by a
//! std-only JSON file (`$SW_TUNE_CACHE`, else `tune_cache.json` in the
//! working directory), keyed by everything the winner depends on:
//!
//! ```text
//! {variant}/{transport}/{backend}/m{M}n{N}k{K}
//! ```
//!
//! where `m{M}n{N}k{K}` is the *shape class* — each dimension rounded
//! up to its power-of-two bucket, so nearby shapes share a tuned
//! blocking instead of each paying a fresh search.
//!
//! Robustness contract: a missing, truncated, or corrupt cache file
//! **degrades to an empty cache** (the caller re-searches); it is
//! never an error. Writes are atomic (temp file + rename) and
//! best-effort — an unwritable directory costs persistence, not
//! correctness. The map is capped at [`TUNE_CACHE_CAP`] entries with
//! oldest-write eviction. Hits, misses, evictions, and unreadable
//! loads are published as `tune.cache.*` metrics.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use crate::params::BlockingParams;
use crate::variants::Variant;
use sw_isa::EngineBackend;
use sw_probe::json::{escape, Value};
use sw_probe::metrics;
use sw_sim::MeshTransport;

/// Environment variable overriding the cache file location.
pub const TUNE_CACHE_ENV: &str = "SW_TUNE_CACHE";

/// Default cache file, relative to the working directory.
pub const TUNE_CACHE_DEFAULT: &str = "tune_cache.json";

/// Entry cap; the oldest write is evicted beyond it.
pub const TUNE_CACHE_CAP: usize = 256;

/// On-disk schema version.
const SCHEMA: u64 = 1;

/// One cached winner: the blocking plus the effective Gflops the
/// search credited it with (diagnostic only — resolution trusts the
/// params, not the number).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedTune {
    /// The winning blocking.
    pub params: BlockingParams,
    /// Effective Gflops at the searched shape.
    pub gflops: f64,
}

struct CacheState {
    loaded: bool,
    next_seq: u64,
    /// key → (winner, insertion sequence — the eviction clock).
    entries: HashMap<String, (CachedTune, u64)>,
}

/// A tune cache instance. Most callers want [`TuneCache::global`];
/// tests construct isolated instances with [`TuneCache::at`] /
/// [`TuneCache::ephemeral`].
pub struct TuneCache {
    path: Option<PathBuf>,
    state: Mutex<CacheState>,
}

impl TuneCache {
    fn with_path(path: Option<PathBuf>) -> Self {
        TuneCache {
            path,
            state: Mutex::new(CacheState {
                loaded: false,
                next_seq: 0,
                entries: HashMap::new(),
            }),
        }
    }

    /// A cache backed by an explicit file.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        TuneCache::with_path(Some(path.into()))
    }

    /// A purely in-memory cache (no persistence).
    pub fn ephemeral() -> Self {
        TuneCache::with_path(None)
    }

    /// The process-wide cache. The backing file is resolved once, from
    /// `$SW_TUNE_CACHE` if set, else [`TUNE_CACHE_DEFAULT`].
    pub fn global() -> &'static TuneCache {
        static GLOBAL: OnceLock<TuneCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let path = std::env::var(TUNE_CACHE_ENV)
                .map(PathBuf::from)
                .unwrap_or_else(|_| PathBuf::from(TUNE_CACHE_DEFAULT));
            TuneCache::at(path)
        })
    }

    /// The shape class of a problem: each dimension rounded up to its
    /// power-of-two bucket.
    pub fn shape_class(m: usize, n: usize, k: usize) -> String {
        let bucket = |d: usize| d.max(1).next_power_of_two();
        format!("m{}n{}k{}", bucket(m), bucket(n), bucket(k))
    }

    /// The full cache key for a resolution context.
    pub fn key(
        variant: Variant,
        transport: MeshTransport,
        backend: EngineBackend,
        m: usize,
        n: usize,
        k: usize,
    ) -> String {
        let transport = match transport {
            MeshTransport::Ring => "ring",
            MeshTransport::Fallback => "fallback",
        };
        format!(
            "{}/{}/{}/{}",
            variant.name(),
            transport,
            backend.name(),
            TuneCache::shape_class(m, n, k)
        )
    }

    /// Looks up a winner. Counts `tune.cache.hits` / `tune.cache.misses`.
    pub fn get(&self, key: &str) -> Option<CachedTune> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.load_locked(&mut state);
        let hit = state.entries.get(key).map(|(e, _)| *e);
        metrics::global()
            .counter(if hit.is_some() {
                "tune.cache.hits"
            } else {
                "tune.cache.misses"
            })
            .inc();
        hit
    }

    /// Records a winner and persists the cache (best-effort).
    pub fn put(&self, key: &str, entry: CachedTune) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.load_locked(&mut state);
        let seq = state.next_seq;
        state.next_seq += 1;
        state.entries.insert(key.to_string(), (entry, seq));
        while state.entries.len() > TUNE_CACHE_CAP {
            let oldest = state
                .entries
                .iter()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over the cap");
            state.entries.remove(&oldest);
            metrics::global().counter("tune.cache.evictions").inc();
        }
        self.persist_locked(&state);
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.load_locked(&mut state);
        state.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (and persists the empty cache).
    pub fn clear(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.loaded = true;
        state.entries.clear();
        self.persist_locked(&state);
    }

    /// Lazy load. Any read or parse failure yields the empty cache:
    /// the tuner then re-searches, which is always correct.
    fn load_locked(&self, state: &mut CacheState) {
        if state.loaded {
            return;
        }
        state.loaded = true;
        let Some(path) = &self.path else { return };
        let Ok(text) = std::fs::read_to_string(path) else {
            return;
        };
        match parse_entries(&text) {
            Some(entries) => {
                state.next_seq = entries.iter().map(|(_, (_, s))| *s + 1).max().unwrap_or(0);
                state.entries = entries;
            }
            None => {
                metrics::global().counter("tune.cache.load_errors").inc();
            }
        }
    }

    /// Atomic best-effort write: serialize, write a temp file next to
    /// the target, rename over it.
    fn persist_locked(&self, state: &CacheState) {
        let Some(path) = &self.path else { return };
        let mut rows: Vec<(&String, &(CachedTune, u64))> = state.entries.iter().collect();
        rows.sort_by_key(|(_, (_, s))| *s);
        let mut out = String::new();
        out.push_str(&format!("{{\"schema\":{SCHEMA},\"entries\":[\n"));
        for (i, (key, (e, seq))) in rows.iter().enumerate() {
            out.push_str(&format!(
                " {{\"key\":\"{}\",\"pm\":{},\"pn\":{},\"pk\":{},\"rm\":{},\"rn\":{},\
                 \"gflops\":{:.3},\"seq\":{}}}{}\n",
                escape(key),
                e.params.pm,
                e.params.pn,
                e.params.pk,
                e.params.rm,
                e.params.rn,
                e.gflops,
                seq,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("]}\n");
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, &out).is_ok() && std::fs::rename(&tmp, path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// Parses the cache file. `None` on any structural problem; malformed
/// individual entries are skipped rather than failing the whole file.
fn parse_entries(text: &str) -> Option<HashMap<String, (CachedTune, u64)>> {
    let v = Value::parse(text).ok()?;
    if v.get("schema")?.as_u64()? != SCHEMA {
        return None;
    }
    let mut out = HashMap::new();
    for e in v.get("entries")?.as_arr()? {
        let Some(row) = parse_entry(e) else { continue };
        out.insert(row.0, (row.1, row.2));
    }
    Some(out)
}

fn parse_entry(e: &Value) -> Option<(String, CachedTune, u64)> {
    let dim = |k: &str| e.get(k).and_then(Value::as_u64).map(|v| v as usize);
    Some((
        e.get("key")?.as_str()?.to_string(),
        CachedTune {
            params: BlockingParams {
                pm: dim("pm")?,
                pn: dim("pn")?,
                pk: dim("pk")?,
                rm: dim("rm")?,
                rn: dim("rn")?,
            },
            gflops: e.get("gflops")?.as_f64()?,
        },
        e.get("seq")?.as_u64()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pn: usize) -> CachedTune {
        CachedTune {
            params: BlockingParams {
                pn,
                ..BlockingParams::paper_double()
            },
            gflops: 600.0 + pn as f64,
        }
    }

    #[test]
    fn shape_class_buckets_by_power_of_two() {
        assert_eq!(
            TuneCache::shape_class(9216, 9216, 9216),
            "m16384n16384k16384"
        );
        assert_eq!(TuneCache::shape_class(256, 96, 768), "m256n128k1024");
        // Nearby shapes share a class; far ones don't.
        assert_eq!(
            TuneCache::shape_class(9000, 9000, 9000),
            TuneCache::shape_class(16384, 16384, 16384)
        );
        assert_ne!(
            TuneCache::shape_class(4096, 4096, 4096),
            TuneCache::shape_class(4097, 4096, 4096)
        );
    }

    #[test]
    fn key_carries_every_resolution_axis() {
        let k = TuneCache::key(
            Variant::Sched,
            MeshTransport::Ring,
            EngineBackend::Decoded,
            9216,
            96,
            4608,
        );
        assert_eq!(k, "SCHED/ring/decoded/m16384n128k8192");
        assert_ne!(
            k,
            TuneCache::key(
                Variant::Db,
                MeshTransport::Ring,
                EngineBackend::Decoded,
                9216,
                96,
                4608
            )
        );
    }

    #[test]
    fn ephemeral_cache_round_trips_in_memory() {
        let c = TuneCache::ephemeral();
        assert!(c.is_empty());
        c.put("a", entry(32));
        assert_eq!(c.get("a").unwrap(), entry(32));
        assert!(c.get("b").is_none());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_drops_the_oldest_write() {
        let c = TuneCache::ephemeral();
        for i in 0..=TUNE_CACHE_CAP {
            c.put(&format!("k{i}"), entry(32));
        }
        assert_eq!(c.len(), TUNE_CACHE_CAP);
        assert!(c.get("k0").is_none(), "oldest entry must be evicted");
        assert!(c.get(&format!("k{TUNE_CACHE_CAP}")).is_some());
    }
}
