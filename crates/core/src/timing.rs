//! Timing mode: discrete-event Gflops estimates at arbitrary sizes.
//!
//! Each variant's MPE-side schedule is unrolled into a task DAG over
//! the DMA channel and the CPE cluster (see `sw_sim::timing`):
//!
//! * DMA task durations come from the calibrated bandwidth model
//!   (Figure 4 curves) plus explicit per-descriptor startup — so the
//!   PE→ROW gain follows from 64-vs-8 descriptors per block and the
//!   128 B-vs-1 KB run lengths;
//! * compute task durations come from *executing the actual kernel
//!   instruction stream* on the dual-issue pipeline model — so the
//!   DB→SCHED gain follows from the Algorithm 3 schedule, not from an
//!   assumed factor;
//! * overlap (or its absence) follows from the dependence structure of
//!   Algorithm 1 vs Algorithm 2 — so the ROW→DB gain and Figure 7's
//!   small-m prefetch penalty are emergent.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::{Mutex, OnceLock};

use crate::error::DgemmError;
use crate::mapping::Mapping;
use crate::params::BlockingParams;
use crate::plan::GemmPlan;
use crate::variants::raw::RawParams;
use crate::variants::Variant;
use sw_arch::consts::{MESH_TRANSIT_CYCLES, PEAK_GFLOPS_CG};
use sw_arch::time::Cycles;
use sw_isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
use sw_isa::{compile_if_hot, EngineBackend, ExecReport, Machine, NullComm};
use sw_mem::dma::{BandwidthModel, DmaMode};
use sw_sim::{Dag, Resource, TaskId};

/// Cycles charged per strip step for the inter-step synchronization the
/// collective scheme needs (mesh transit + pacing).
const STEP_SYNC_CYCLES: Cycles = MESH_TRANSIT_CYCLES + 40;

/// Result of a timing-mode estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Variant estimated.
    pub variant: Variant,
    /// Problem dimensions.
    pub m: usize,
    /// Problem dimensions.
    pub n: usize,
    /// Problem dimensions.
    pub k: usize,
    /// Sustained double-precision Gflops/s.
    pub gflops: f64,
    /// Fraction of the 742.4 Gflops/s peak.
    pub efficiency: f64,
    /// End-to-end simulated cycles.
    pub makespan_cycles: Cycles,
    /// Cycles the DMA channel was busy.
    pub dma_busy_cycles: Cycles,
    /// Cycles the CPE cluster was busy.
    pub cpes_busy_cycles: Cycles,
    /// Pipeline report of one thread-level kernel invocation (one strip
    /// step for the shared variants, one panel update for RAW).
    pub kernel: ExecReport,
}

/// Estimates a variant at the paper's production blocking.
///
/// ```
/// use sw_dgemm::{timing::estimate, Variant};
/// let r = estimate(Variant::Sched, 9216, 9216, 9216).unwrap();
/// assert!(r.efficiency > 0.9); // the paper's 95%-of-peak regime
/// ```
pub fn estimate(
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
) -> Result<TimingReport, DgemmError> {
    estimate_with(variant, m, n, k, EngineBackend::default())
}

/// [`estimate`] with an explicit execution backend for the kernel
/// measurement. All backends produce bitwise-identical [`ExecReport`]s
/// (that equivalence is gated in `tests/` and the engine benchmark), so
/// the choice only affects how fast the estimate itself runs.
pub fn estimate_with(
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
    backend: EngineBackend,
) -> Result<TimingReport, DgemmError> {
    let model = BandwidthModel::calibrated();
    match variant {
        Variant::Raw => estimate_raw_with(m, n, k, RawParams::paper(), &model, backend),
        _ => estimate_shared_with(variant, m, n, k, variant.paper_params(), &model, backend),
    }
}

/// Hit/miss counters of the kernel timing cache (see
/// [`kernel_cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCacheStats {
    /// `measure_kernel` calls answered from the cache.
    pub hits: u64,
    /// Calls that executed the kernel on the pipeline model.
    pub misses: u64,
}

/// The cache's hit/miss tallies live in the global metrics registry
/// under these names, so `fig6`/`fig7`-style tools get them in the same
/// snapshot as the simulator's traffic counters.
pub const KERNEL_CACHE_HITS_METRIC: &str = "dgemm.kernel_cache.hits";
/// See [`KERNEL_CACHE_HITS_METRIC`].
pub const KERNEL_CACHE_MISSES_METRIC: &str = "dgemm.kernel_cache.misses";

fn cache_hits() -> &'static sw_probe::Counter {
    static C: OnceLock<std::sync::Arc<sw_probe::Counter>> = OnceLock::new();
    C.get_or_init(|| sw_probe::metrics::global().counter(KERNEL_CACHE_HITS_METRIC))
}

fn cache_misses() -> &'static sw_probe::Counter {
    static C: OnceLock<std::sync::Arc<sw_probe::Counter>> = OnceLock::new();
    C.get_or_init(|| sw_probe::metrics::global().counter(KERNEL_CACHE_MISSES_METRIC))
}

fn kernel_cache() -> &'static Mutex<HashMap<(usize, u64), ExecReport>> {
    static CACHE: OnceLock<Mutex<HashMap<(usize, u64), ExecReport>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Snapshot of the kernel timing cache's hit/miss counters (process-wide).
pub fn kernel_cache_stats() -> KernelCacheStats {
    KernelCacheStats {
        hits: cache_hits().get(),
        misses: cache_misses().get(),
    }
}

/// Empties the kernel timing cache and zeroes its counters. Only for
/// benchmarks that need repeatable cold-cache measurements; results are
/// unaffected either way (the cache is transparent).
pub fn kernel_cache_reset() {
    kernel_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
    cache_hits().reset();
    cache_misses().reset();
}

/// Measures one thread-level block-kernel invocation (all operands
/// local; the communication instructions it would use occupy the same
/// pipeline with the same latency).
///
/// Reports are memoized by a hash of the generated instruction stream.
/// This is sound because an [`ExecReport`] is a pure function of the
/// stream: the pipeline model's stalls depend only on register indices,
/// pipes, and latencies, and no instruction branches on `f64` data
/// (`bne` tests an integer register that only `setl`/`addl` write). A
/// sweep over many matrix sizes therefore executes each distinct kernel
/// shape once instead of once per size.
pub fn measure_kernel(pm: usize, pn: usize, pk: usize, style: KernelStyle) -> ExecReport {
    measure_kernel_with(pm, pn, pk, style, EngineBackend::default())
}

/// [`measure_kernel`] with an explicit execution backend.
///
/// The report cache is shared across backends: every backend is gated
/// to produce bitwise-identical reports, so a report computed by one is
/// a valid answer for all. (The compiled backend additionally keeps its
/// own process-global code cache in `sw_isa`, keyed by instruction
/// stream — resetting the report cache here does *not* throw away
/// compiled traces, so kernels stay hot across benchmark rounds.)
pub fn measure_kernel_with(
    pm: usize,
    pn: usize,
    pk: usize,
    style: KernelStyle,
    backend: EngineBackend,
) -> ExecReport {
    let prog = build_kernel_prog(pm, pn, pk, style);
    let mut hasher = DefaultHasher::new();
    prog.hash(&mut hasher);
    let key = (prog.len(), hasher.finish());
    if let Some(r) = kernel_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&key)
    {
        cache_hits().inc();
        return *r;
    }
    cache_misses().inc();
    let report = execute_kernel(pm, pn, pk, &prog, backend);
    kernel_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, report);
    report
}

/// [`measure_kernel`] without the memoization — the engine benchmark's
/// baseline, and a direct way to double-check a cached report.
pub fn measure_kernel_uncached(pm: usize, pn: usize, pk: usize, style: KernelStyle) -> ExecReport {
    measure_kernel_uncached_with(pm, pn, pk, style, EngineBackend::default())
}

/// [`measure_kernel_uncached`] with an explicit execution backend.
pub fn measure_kernel_uncached_with(
    pm: usize,
    pn: usize,
    pk: usize,
    style: KernelStyle,
    backend: EngineBackend,
) -> ExecReport {
    let prog = build_kernel_prog(pm, pn, pk, style);
    execute_kernel(pm, pn, pk, &prog, backend)
}

/// Generates the block kernel over a tightly packed synthetic LDM image.
fn build_kernel_prog(pm: usize, pn: usize, pk: usize, style: KernelStyle) -> Vec<sw_isa::Instr> {
    let (a_base, b_base, c_base, alpha_addr) = kernel_layout(pm, pn, pk);
    let cfg = BlockKernelCfg {
        pm,
        pn,
        pk,
        a_src: Operand::Ldm,
        b_src: Operand::Ldm,
        a_base,
        b_base,
        c_base,
        alpha_addr,
    };
    let prog = gen_block_kernel(&cfg, style);
    // Debug builds lint every timing kernel before it is measured.
    // I-cache findings are dropped: timing kernels are *deliberately*
    // fully unrolled (the pipeline model has no i-cache), so production
    // shapes exceed the 16 KB budget by construction.
    #[cfg(debug_assertions)]
    {
        let mut report = sw_lint::lint_stream(&prog, None);
        report
            .diagnostics
            .retain(|d| d.code != sw_lint::codes::ICACHE_OVERFLOW);
        assert!(
            report.error_count() == 0,
            "generated timing kernel fails sw-lint:\n{}",
            report.render_text()
        );
    }
    prog
}

fn kernel_layout(pm: usize, pn: usize, pk: usize) -> (usize, usize, usize, usize) {
    // Pack panels tightly into a synthetic LDM image.
    let a_base = 0;
    let b_base = (a_base + pm * pk).next_multiple_of(4);
    let c_base = (b_base + pk * pn).next_multiple_of(4);
    let alpha_addr = c_base + pm * pn;
    (a_base, b_base, c_base, alpha_addr)
}

fn execute_kernel(
    pm: usize,
    pn: usize,
    pk: usize,
    prog: &[sw_isa::Instr],
    backend: EngineBackend,
) -> ExecReport {
    let (_, _, _, alpha_addr) = kernel_layout(pm, pn, pk);
    let mut ldm = vec![0.0f64; alpha_addr + 1];
    ldm[alpha_addr] = 1.0;
    let mut comm = NullComm;
    let mut machine = Machine::new(&mut ldm, &mut comm);
    match backend {
        EngineBackend::Compiled => match compile_if_hot(prog) {
            Some(compiled) => machine.run_compiled(&compiled),
            None => machine.run(prog),
        },
        other => machine.run_backend(other, prog),
    }
}

/// Estimates one of the data-sharing variants with explicit blocking.
pub fn estimate_shared(
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
    params: BlockingParams,
    model: &BandwidthModel,
) -> Result<TimingReport, DgemmError> {
    estimate_shared_with(variant, m, n, k, params, model, EngineBackend::default())
}

/// [`estimate_shared`] with an explicit kernel execution backend.
pub fn estimate_shared_with(
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
    params: BlockingParams,
    model: &BandwidthModel,
    backend: EngineBackend,
) -> Result<TimingReport, DgemmError> {
    let (dag, kernel) = build_shared_dag_with(variant, m, n, k, params, model, backend)?;
    let result = dag.schedule();
    Ok(report(variant, m, n, k, result, kernel))
}

/// Builds the MPE-side schedule of a data-sharing variant as a task
/// DAG (exposed so tools can render the timeline; see the
/// `trace_overlap` harness binary), along with the measured kernel
/// report its compute durations are based on.
pub fn build_shared_dag(
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
    params: BlockingParams,
    model: &BandwidthModel,
) -> Result<(Dag, ExecReport), DgemmError> {
    build_shared_dag_with(variant, m, n, k, params, model, EngineBackend::default())
}

/// [`build_shared_dag`] with an explicit kernel execution backend.
pub fn build_shared_dag_with(
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
    params: BlockingParams,
    model: &BandwidthModel,
    backend: EngineBackend,
) -> Result<(Dag, ExecReport), DgemmError> {
    assert!(
        variant != Variant::Raw,
        "use estimate_raw for the RAW baseline"
    );
    let plan = GemmPlan::new(m, n, k, params, variant.double_buffered())?;
    let mapping = variant.mapping();
    let p = plan.params;
    let kernel = measure_kernel_with(p.pm, p.pn, p.pk, variant.kernel_style(), backend);
    let block_compute: Cycles = 8 * (kernel.cycles + STEP_SYNC_CYCLES);

    // DMA durations per CG block.
    let (a_fp, b_fp, c_fp) = (m * k * 8, k * n * 8, m * n * 8);
    let (bm, bn, bk) = (p.bm(), p.bn(), p.bk());
    let b_cycles = model.transfer_cycles(DmaMode::Pe, 64, bk * bn * 8, p.pk * 8, b_fp);
    let (ac_mode, ac_desc, ac_run) = match mapping {
        Mapping::Pe => (DmaMode::Pe, 64, p.pm * 8),
        Mapping::Row => (DmaMode::Row, 8, bm * 8),
    };
    let a_cycles = model.transfer_cycles(ac_mode, ac_desc, bm * bk * 8, ac_run, a_fp);
    let c_cycles = model.transfer_cycles(ac_mode, ac_desc, bm * bn * 8, ac_run, c_fp);

    // Build the MPE-side schedule as a DAG. Dependence lists live on
    // the stack: `Dag::task` stores them inline, and at large sizes
    // this loop emits ~10⁶ tasks, so per-task allocation is the
    // engine's hot path.
    let mut dag = Dag::new();
    let mut prev_compute: Option<TaskId> = None;
    fn dep(t: &Option<TaskId>) -> &[TaskId] {
        match t {
            Some(x) => std::slice::from_ref(x),
            None => &[],
        }
    }
    for _j in 0..plan.grid_n {
        for _l in 0..plan.grid_k {
            // B is resident: reloading it must wait until the previous
            // (j, l) iteration's last block stopped using it.
            let b_task = dag.task(Resource::Dma, b_cycles, dep(&prev_compute), "load B");
            if plan.double_buffered {
                // Algorithm 2.
                let mut pref_a = dag.task(Resource::Dma, a_cycles, dep(&prev_compute), "load A0");
                let mut pref_c = dag.task(Resource::Dma, c_cycles, dep(&prev_compute), "load C0");
                for i in 0..plan.grid_m {
                    let (next_a, next_c) = if i + 1 < plan.grid_m {
                        // The i+1 prefetch reuses the buffers compute
                        // i-1 released (two-deep rotation).
                        let a = dag.task(Resource::Dma, a_cycles, dep(&prev_compute), "prefetch A");
                        let c = dag.task(Resource::Dma, c_cycles, dep(&prev_compute), "prefetch C");
                        (Some(a), Some(c))
                    } else {
                        (None, None)
                    };
                    let mut deps = [pref_a, pref_c, b_task, b_task];
                    let mut n_deps = 3;
                    if let Some(pc) = prev_compute {
                        deps[3] = pc;
                        n_deps = 4;
                    }
                    let compute = dag.task(
                        Resource::Cpes,
                        block_compute,
                        &deps[..n_deps],
                        "block multiply",
                    );
                    dag.task(Resource::Dma, c_cycles, &[compute], "store C");
                    prev_compute = Some(compute);
                    if let (Some(a), Some(c)) = (next_a, next_c) {
                        pref_a = a;
                        pref_c = c;
                    }
                }
            } else {
                // Algorithm 1: strictly serial per block.
                for _i in 0..plan.grid_m {
                    let a = dag.task(Resource::Dma, a_cycles, dep(&prev_compute), "load A");
                    let c = dag.task(Resource::Dma, c_cycles, dep(&prev_compute), "load C");
                    let compute = dag.task(
                        Resource::Cpes,
                        block_compute,
                        &[a, c, b_task],
                        "block multiply",
                    );
                    dag.task(Resource::Dma, c_cycles, &[compute], "store C");
                    prev_compute = Some(compute);
                }
            }
        }
    }
    Ok((dag, kernel))
}

/// Estimates the RAW baseline with explicit blocking.
pub fn estimate_raw(
    m: usize,
    n: usize,
    k: usize,
    raw: RawParams,
    model: &BandwidthModel,
) -> Result<TimingReport, DgemmError> {
    estimate_raw_with(m, n, k, raw, model, EngineBackend::default())
}

/// [`estimate_raw`] with an explicit kernel execution backend.
pub fn estimate_raw_with(
    m: usize,
    n: usize,
    k: usize,
    raw: RawParams,
    model: &BandwidthModel,
    backend: EngineBackend,
) -> Result<TimingReport, DgemmError> {
    raw.validate_dims(m, n, k)?;
    let kernel = measure_kernel_with(raw.pm, raw.pn, raw.kc, KernelStyle::Naive, backend);
    let chunks = k / raw.kc;
    let (a_fp, b_fp, c_fp) = (m * k * 8, k * n * 8, m * n * 8);
    // Aggregated DMA per wave (all 64 threads issue in lockstep): C
    // round-trip once, A and B panels once per chunk; every byte is
    // private to its thread (no sharing), hence the 64×.
    let c_io =
        2 * model.transfer_cycles(DmaMode::Pe, 64, 64 * raw.pm * raw.pn * 8, raw.pm * 8, c_fp);
    let a_chunk =
        model.transfer_cycles(DmaMode::Pe, 64, 64 * raw.pm * raw.kc * 8, raw.pm * 8, a_fp);
    let b_chunk =
        model.transfer_cycles(DmaMode::Pe, 64, 64 * raw.kc * raw.pn * 8, raw.kc * 8, b_fp);
    let dma_per_wave = c_io + chunks as u64 * (a_chunk + b_chunk);
    let compute_per_wave = chunks as u64 * kernel.cycles;
    let waves = (m / 8 / raw.pm) * (n / 8 / raw.pn);

    let mut dag = Dag::new();
    let mut prev: Option<TaskId> = None;
    for _ in 0..waves {
        let deps: &[TaskId] = match &prev {
            Some(t) => std::slice::from_ref(t),
            None => &[],
        };
        let dma = dag.task(Resource::Dma, dma_per_wave, deps, "panel traffic");
        let compute = dag.task(Resource::Cpes, compute_per_wave, &[dma], "sub-block update");
        prev = Some(compute);
    }
    let result = dag.schedule();
    Ok(report(Variant::Raw, m, n, k, result, kernel))
}

fn report(
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
    r: sw_sim::TimingResult,
    kernel: ExecReport,
) -> TimingReport {
    let gflops = r.gflops(sw_arch::time::gemm_flops(m, n, k));
    TimingReport {
        variant,
        m,
        n,
        k,
        gflops,
        efficiency: gflops / PEAK_GFLOPS_CG,
        makespan_cycles: r.makespan_cycles,
        dma_busy_cycles: r.dma_busy_cycles,
        cpes_busy_cycles: r.cpes_busy_cycles,
        kernel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_on_uncached_kernel_reports() {
        let (pm, pn, pk) = (16, 8, 24);
        let base = measure_kernel_uncached_with(
            pm,
            pn,
            pk,
            KernelStyle::Scheduled,
            EngineBackend::Decoded,
        );
        for backend in EngineBackend::ALL {
            // Repeat past the hot threshold so the compiled backend
            // actually exercises its trace, not the decoded fallback.
            for _ in 0..(sw_isa::HOT_KERNEL_THRESHOLD + 1) {
                let r = measure_kernel_uncached_with(pm, pn, pk, KernelStyle::Scheduled, backend);
                assert_eq!(r, base, "{backend} report diverges from decoded");
            }
        }
    }

    #[test]
    fn estimate_with_matches_estimate_for_every_backend() {
        for v in [Variant::Raw, Variant::Sched] {
            let base = estimate(v, 1536, 1536, 1536).unwrap();
            for backend in EngineBackend::ALL {
                let r = estimate_with(v, 1536, 1536, 1536, backend).unwrap();
                assert_eq!(r.kernel, base.kernel);
                assert_eq!(r.makespan_cycles, base.makespan_cycles);
            }
        }
    }

    #[test]
    fn fig6_ordering_at_9216() {
        let mut last = 0.0;
        for v in Variant::ALL {
            let r = estimate(v, 9216, 9216, 9216).unwrap();
            assert!(
                r.gflops > last,
                "{v} ({:.1}) must beat the previous variant ({last:.1})",
                r.gflops
            );
            last = r.gflops;
        }
    }

    #[test]
    fn sched_reaches_high_efficiency() {
        let r = estimate(Variant::Sched, 9216, 9216, 9216).unwrap();
        assert!(
            r.efficiency > 0.90,
            "SCHED efficiency was {:.3}",
            r.efficiency
        );
        assert!(r.efficiency < 1.0);
    }

    #[test]
    fn raw_below_one_third_of_peak() {
        let r = estimate(Variant::Raw, 9216, 9216, 9216).unwrap();
        assert!(r.efficiency < 1.0 / 3.0, "RAW was {:.3}", r.efficiency);
    }

    #[test]
    fn performance_increases_with_size() {
        for v in [Variant::Pe, Variant::Sched] {
            let small = estimate(v, 1536, 1536, 1536).unwrap();
            let big = estimate(v, 9216, 9216, 9216).unwrap();
            assert!(
                big.gflops > small.gflops,
                "{v}: {} vs {}",
                big.gflops,
                small.gflops
            );
        }
    }

    #[test]
    fn small_m_pays_prefetch_overhead() {
        // Figure 7: small m is relatively slow because the double
        // buffering prologue cannot be amortized.
        let thin = estimate(Variant::Sched, 1536, 9216, 9216).unwrap();
        let tall = estimate(Variant::Sched, 9216, 9216, 1536).unwrap();
        assert!(
            thin.gflops < tall.gflops,
            "small m ({:.1}) should underperform small k ({:.1})",
            thin.gflops,
            tall.gflops
        );
    }

    #[test]
    fn kernel_cache_hits_and_agrees_with_uncached() {
        // An unusual shape other tests won't touch, so the first call is
        // a guaranteed miss and the second a guaranteed hit.
        let (pm, pn, pk) = (48, 20, 7);
        let before = kernel_cache_stats();
        let first = measure_kernel(pm, pn, pk, KernelStyle::Scheduled);
        let mid = kernel_cache_stats();
        assert_eq!(mid.misses, before.misses + 1);
        let second = measure_kernel(pm, pn, pk, KernelStyle::Scheduled);
        let after = kernel_cache_stats();
        assert!(after.hits > mid.hits);
        assert_eq!(first, second);
        assert_eq!(
            first,
            measure_kernel_uncached(pm, pn, pk, KernelStyle::Scheduled)
        );
        // Distinct styles must not collide on a cache entry.
        let naive = measure_kernel(pm, pn, pk, KernelStyle::Naive);
        assert_ne!(naive, first);
    }

    #[test]
    fn dims_validated() {
        assert!(estimate(Variant::Sched, 1000, 9216, 9216).is_err());
        assert!(estimate(Variant::Raw, 1000, 9216, 9216).is_err());
    }
}

#[cfg(test)]
mod diag {
    use super::*;

    #[test]
    #[ignore]
    fn print_fig6() {
        for v in Variant::ALL {
            let r = estimate(v, 9216, 9216, 9216).unwrap();
            println!(
                "{:<6} {:7.1} Gflops  ({:.1}%)",
                v.name(),
                r.gflops,
                100.0 * r.efficiency
            );
        }
        for mk in (1536..=15360).step_by(1536 * 3) {
            let r = estimate(Variant::Sched, mk, mk, mk).unwrap();
            println!("SCHED@{mk}: {:.1}", r.gflops);
        }
    }
}
