//! Error type of the DGEMM crate.

use std::fmt;
use sw_mem::MemError;

/// Errors surfaced by plan validation and the functional runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DgemmError {
    /// Blocking parameters violate an architectural constraint.
    BadParams(String),
    /// Problem dimensions are incompatible with the blocking plan.
    BadDims(String),
    /// An underlying memory/DMA operation failed.
    Mem(MemError),
    /// The static analyzer found Error-severity defects in the plan's
    /// kernel streams and the runner's policy is
    /// [`crate::lint::LintPolicy::Deny`]. Carries the rendered report.
    Lint(String),
}

impl fmt::Display for DgemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DgemmError::BadParams(s) => write!(f, "invalid blocking parameters: {s}"),
            DgemmError::BadDims(s) => write!(f, "invalid problem dimensions: {s}"),
            DgemmError::Mem(e) => write!(f, "memory subsystem error: {e}"),
            DgemmError::Lint(report) => {
                write!(f, "static analysis rejected the plan:\n{report}")
            }
        }
    }
}

impl std::error::Error for DgemmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DgemmError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for DgemmError {
    fn from(e: MemError) -> Self {
        DgemmError::Mem(e)
    }
}
