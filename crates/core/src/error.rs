//! Error type of the DGEMM crate.

use std::fmt;
use sw_mem::MemError;

/// Errors surfaced by plan validation and the functional runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DgemmError {
    /// Blocking parameters violate an architectural constraint.
    BadParams(String),
    /// Problem dimensions are incompatible with the blocking plan.
    BadDims(String),
    /// An underlying memory/DMA operation failed.
    Mem(MemError),
}

impl fmt::Display for DgemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DgemmError::BadParams(s) => write!(f, "invalid blocking parameters: {s}"),
            DgemmError::BadDims(s) => write!(f, "invalid problem dimensions: {s}"),
            DgemmError::Mem(e) => write!(f, "memory subsystem error: {e}"),
        }
    }
}

impl std::error::Error for DgemmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DgemmError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for DgemmError {
    fn from(e: MemError) -> Self {
        DgemmError::Mem(e)
    }
}
