//! Error type of the DGEMM crate.

use std::fmt;
use sw_mem::MemError;

/// Errors surfaced by plan validation and the functional runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DgemmError {
    /// Blocking parameters violate an architectural constraint.
    BadParams(String),
    /// Problem dimensions are incompatible with the blocking plan.
    BadDims(String),
    /// An underlying memory/DMA operation failed.
    Mem(MemError),
    /// The static analyzer found Error-severity defects in the plan's
    /// kernel streams and the runner's policy is
    /// [`crate::lint::LintPolicy::Deny`]. Carries the rendered report.
    Lint(String),
    /// The register mesh wedged at run time: a blocked broadcast or a
    /// starved receive tripped the deadlock fuse. Carries the first
    /// failing CPE and the lint-side rendezvous summary over the
    /// observed per-CPE traffic, which names the wedged row/column
    /// group.
    MeshDeadlock {
        /// `(mesh_row, mesh_col)` of the first CPE that hit the fuse.
        coord: (u8, u8),
        /// Rendered rendezvous summary (`sw_lint::rendezvous_summary`).
        summary: String,
    },
    /// An ABFT checksum mismatch that the policy did not (or could
    /// not) correct: under [`crate::AbftPolicy::Detect`] on first
    /// detection, under [`crate::AbftPolicy::Correct`] once the
    /// recompute budget is spent.
    AbftMismatch {
        /// CG-block grid coordinates `(i, j, l)` of the bad block.
        block: (usize, usize, usize),
        /// Attempts executed for the block, including the first.
        attempts: u32,
        /// Which checksum failed and by how much.
        detail: String,
    },
    /// The run was cancelled cooperatively through a
    /// [`sw_sim::CancelToken`] installed on the runner — a policy
    /// outcome (the caller abandoned the request), not a fault. The
    /// core group stays reusable; `C` holds no result.
    Cancelled {
        /// `true` when the token was fired by a deadline watchdog
        /// (`cancel_deadline`), `false` for an explicit caller cancel.
        deadline: bool,
    },
}

impl fmt::Display for DgemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DgemmError::BadParams(s) => write!(f, "invalid blocking parameters: {s}"),
            DgemmError::BadDims(s) => write!(f, "invalid problem dimensions: {s}"),
            DgemmError::Mem(e) => write!(f, "memory subsystem error: {e}"),
            DgemmError::Lint(report) => {
                write!(f, "static analysis rejected the plan:\n{report}")
            }
            DgemmError::MeshDeadlock { coord, summary } => write!(
                f,
                "mesh deadlock at CPE ({}, {}); rendezvous summary:\n{summary}",
                coord.0, coord.1
            ),
            DgemmError::AbftMismatch {
                block,
                attempts,
                detail,
            } => write!(
                f,
                "ABFT checksum mismatch in CG block ({}, {}, {}) after {attempts} attempt(s): \
                 {detail}",
                block.0, block.1, block.2
            ),
            DgemmError::Cancelled { deadline } => write!(
                f,
                "run cancelled ({})",
                if *deadline {
                    "deadline expired"
                } else {
                    "caller cancelled"
                }
            ),
        }
    }
}

impl std::error::Error for DgemmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DgemmError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for DgemmError {
    fn from(e: MemError) -> Self {
        DgemmError::Mem(e)
    }
}
