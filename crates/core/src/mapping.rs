//! Data-thread mappings: which main-memory region each CPE's
//! thread-level blocks come from.
//!
//! Two mappings exist:
//!
//! * [`Mapping::Pe`] — the "instinctive" mapping of §III-A: the CG
//!   block is an 8×8 grid of thread blocks and thread `(u, v)` owns
//!   grid cell `(u, v)` of A, B and C, transferred in `PE_MODE`.
//! * [`Mapping::Row`] — the mixed-mode mapping of §IV-A: A and C move
//!   in `ROW_MODE`, so each *column strip* (one pK/pN-wide slab of the
//!   CG block, all bM rows) is dealt out to the 8 CPEs of one mesh
//!   *row* in interleaved 2-double slices; B stays in `PE_MODE` but
//!   with its strips remapped to match (thread `(u, v)` gets B's
//!   k-slab `v`, n-slab `u`). Register communication directions swap
//!   accordingly (see [`crate::sharing`]).
//!
//! The interleaved local-row order of `ROW_MODE` (Figure 5) is
//! captured by [`row_mode_global_row`]: local row `ℓ` of the CPE at
//! mesh column `c` holds global block row `16·(ℓ/2) + 2c + (ℓ%2)`.
//! Because A and C use the *same* interleave, the kernel is oblivious
//! to it — only the DMA descriptors know.

use crate::plan::GemmPlan;
use sw_arch::Coord;
use sw_mem::dma::MatRegion;
use sw_mem::MatId;

/// Which data-thread mapping a variant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// All matrices in `PE_MODE`, grid-aligned (§III-A).
    Pe,
    /// A and C in `ROW_MODE`, B in remapped `PE_MODE` (§IV-A).
    Row,
}

/// The main-memory region backing this thread's A block for CG block
/// `(i, l)`. For [`Mapping::Row`] the region is the whole column slab
/// shared by this CPE's mesh row (to be fetched with `dma_row_get`);
/// for [`Mapping::Pe`] it is this thread's private block
/// (`dma_pe_get`).
pub fn a_region(
    plan: &GemmPlan,
    mat: MatId,
    mapping: Mapping,
    i: usize,
    l: usize,
    who: Coord,
) -> MatRegion {
    let p = &plan.params;
    let (u, v) = (who.row as usize, who.col as usize);
    match mapping {
        Mapping::Pe => MatRegion::new(
            mat,
            i * p.bm() + u * p.pm,
            l * p.bk() + v * p.pk,
            p.pm,
            p.pk,
        ),
        // Column slab u of the CG block, all bM rows, fetched
        // collectively by mesh row u.
        Mapping::Row => MatRegion::new(mat, i * p.bm(), l * p.bk() + u * p.pk, p.bm(), p.pk),
    }
}

/// The region backing this thread's C block for CG block `(i, j)`.
pub fn c_region(
    plan: &GemmPlan,
    mat: MatId,
    mapping: Mapping,
    i: usize,
    j: usize,
    who: Coord,
) -> MatRegion {
    let p = &plan.params;
    let (u, v) = (who.row as usize, who.col as usize);
    match mapping {
        Mapping::Pe => MatRegion::new(
            mat,
            i * p.bm() + u * p.pm,
            j * p.bn() + v * p.pn,
            p.pm,
            p.pn,
        ),
        Mapping::Row => MatRegion::new(mat, i * p.bm(), j * p.bn() + u * p.pn, p.bm(), p.pn),
    }
}

/// The region backing this thread's B block for CG block `(l, j)` —
/// always `PE_MODE`, but the strip-to-thread assignment differs
/// between mappings (§IV-A: "column strips of the CG-level B blocks
/// are mapped to CPEs in a row").
pub fn b_region(
    plan: &GemmPlan,
    mat: MatId,
    mapping: Mapping,
    l: usize,
    j: usize,
    who: Coord,
) -> MatRegion {
    let p = &plan.params;
    let (u, v) = (who.row as usize, who.col as usize);
    match mapping {
        // Thread (u, v): k-slab u, n-slab v.
        Mapping::Pe => MatRegion::new(
            mat,
            l * p.bk() + u * p.pk,
            j * p.bn() + v * p.pn,
            p.pk,
            p.pn,
        ),
        // Thread (u, v): k-slab v, n-slab u — so that at strip step s
        // the B owners sit on mesh column s.
        Mapping::Row => MatRegion::new(
            mat,
            l * p.bk() + v * p.pk,
            j * p.bn() + u * p.pn,
            p.pk,
            p.pn,
        ),
    }
}

/// `ROW_MODE` interleave (Figure 5): the global row — within the bM
/// rows of a CG block column — that local row `local` of the CPE at
/// mesh column `mesh_col` holds.
#[inline]
pub fn row_mode_global_row(local: usize, mesh_col: usize) -> usize {
    16 * (local / 2) + 2 * mesh_col + (local % 2)
}

/// Inverse of [`row_mode_global_row`]: which `(mesh_col, local_row)`
/// holds global block row `g`.
#[inline]
pub fn row_mode_owner(g: usize) -> (usize, usize) {
    let slice = g / 2; // 2-double slices dealt round-robin
    let mesh_col = slice % 8;
    let local = 2 * (slice / 8) + (g % 2);
    (mesh_col, local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BlockingParams;
    use sw_mem::{HostMatrix, MainMemory};

    fn plan() -> GemmPlan {
        GemmPlan::new(256, 128, 256, BlockingParams::test_small(), false).unwrap()
    }

    #[test]
    fn row_interleave_roundtrip() {
        for g in 0..128 {
            let (c, l) = row_mode_owner(g);
            assert_eq!(row_mode_global_row(l, c), g);
        }
        // Spot checks against Figure 5's pattern.
        assert_eq!(row_mode_global_row(0, 0), 0);
        assert_eq!(row_mode_global_row(1, 0), 1);
        assert_eq!(row_mode_global_row(2, 0), 16);
        assert_eq!(row_mode_global_row(0, 3), 6);
    }

    /// For every mapping, the union of all 64 thread regions of each
    /// matrix must tile the CG block exactly.
    #[test]
    fn regions_tile_cg_blocks() {
        let plan = plan();
        let mut mem = MainMemory::new();
        let a = mem.install(HostMatrix::zeros(256, 256)).unwrap();
        let p = &plan.params;
        for mapping in [Mapping::Pe, Mapping::Row] {
            let mut covered = vec![0u32; p.bm() * p.bk()];
            let mut mark = |r: MatRegion, weight: u32| {
                for c in 0..r.cols {
                    for rr in 0..r.rows {
                        covered[(r.col0 - p.bk() + c) * p.bm() + (r.row0 - p.bm() + rr)] += weight;
                    }
                }
            };
            for coord in Coord::all() {
                let r = a_region(&plan, a, mapping, 1, 1, coord);
                // ROW regions are issued by all 8 CPEs of a row but
                // fetched collectively: weight 1/8 per CPE — use 1 and
                // expect 8.
                mark(r, 1);
            }
            let expect = match mapping {
                Mapping::Pe => 1,
                Mapping::Row => 8,
            };
            assert!(
                covered.iter().all(|&x| x == expect),
                "{mapping:?}: A regions must tile the CG block with multiplicity {expect}"
            );
        }
    }

    #[test]
    fn b_regions_tile_for_both_mappings() {
        let plan = plan();
        let mut mem = MainMemory::new();
        let b = mem.install(HostMatrix::zeros(256, 128)).unwrap();
        let p = &plan.params;
        for mapping in [Mapping::Pe, Mapping::Row] {
            let mut covered = vec![0u32; p.bk() * p.bn()];
            for coord in Coord::all() {
                let r = b_region(&plan, b, mapping, 0, 1, coord);
                for c in 0..r.cols {
                    for rr in 0..r.rows {
                        covered[(r.col0 - p.bn() + c) * p.bk() + (r.row0 + rr)] += 1;
                    }
                }
            }
            assert!(
                covered.iter().all(|&x| x == 1),
                "{mapping:?}: B regions must tile exactly"
            );
        }
    }

    #[test]
    fn row_mapping_alignment_matches_strip_steps() {
        // In the ROW mapping, at strip step s the A owners must sit on
        // mesh row s (same k-slab) and the B owners on mesh column s.
        let plan = plan();
        let mut mem = MainMemory::new();
        let a = mem.install(HostMatrix::zeros(256, 256)).unwrap();
        let b = mem.install(HostMatrix::zeros(256, 128)).unwrap();
        let p = &plan.params;
        for s in 0..8 {
            for coord in Coord::all() {
                let ra = a_region(&plan, a, Mapping::Row, 0, 0, coord);
                let rb = b_region(&plan, b, Mapping::Row, 0, 0, coord);
                // k-slab of this thread's A block:
                let a_slab = ra.col0 / p.pk;
                assert_eq!(a_slab, coord.row as usize);
                let b_slab = rb.row0 / p.pk;
                assert_eq!(b_slab, coord.col as usize);
                if coord.row as usize == s {
                    assert_eq!(a_slab, s, "A owner for step {s}");
                }
                if coord.col as usize == s {
                    assert_eq!(b_slab, s, "B owner for step {s}");
                }
            }
        }
    }
}
