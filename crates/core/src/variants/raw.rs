//! The RAW baseline (§V): a straightforward implementation without the
//! three-level blocking or any data sharing.
//!
//! C is partitioned into 64 thread regions (an 8×8 grid); each thread
//! updates its own region independently, streaming A and B panels
//! through its LDM with plain `PE_MODE` DMA. Every A panel is thus
//! fetched by all 8 threads of a mesh row (and every B panel by all 8
//! of a column) — the redundant main-memory traffic the collective
//! data sharing scheme exists to eliminate.

use crate::error::DgemmError;
use crate::variants::shared::GemmIo;
use sw_arch::consts::{DMA_TRANSACTION_DOUBLES, LDM_DOUBLES};
use sw_mem::dma::MatRegion;
use sw_sim::{CoreGroup, CpeCtx, RunStats};

/// Blocking of the RAW baseline: each thread's C region is processed
/// in `pm×pn` sub-blocks, with `kc`-deep A/B panels streamed through
/// LDM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawParams {
    /// Sub-block rows.
    pub pm: usize,
    /// Sub-block columns.
    pub pn: usize,
    /// Panel depth.
    pub kc: usize,
}

impl RawParams {
    /// Production-scale choice: the largest square sub-block whose
    /// working set fits the LDM (64×64 with 16-deep panels → 6144 of
    /// 8192 doubles).
    pub fn paper() -> Self {
        RawParams {
            pm: 64,
            pn: 64,
            kc: 16,
        }
    }

    /// Test-scale choice matching `BlockingParams::test_small`
    /// divisibility.
    pub fn test_small() -> Self {
        RawParams {
            pm: 16,
            pn: 8,
            kc: 16,
        }
    }

    /// LDM doubles of the working set (C sub-block + A and B panels).
    pub fn ldm_doubles(&self) -> usize {
        self.pm * self.pn + self.pm * self.kc + self.kc * self.pn
    }

    /// Validates alignment and capacity constraints.
    pub fn validate(&self) -> Result<(), DgemmError> {
        if self.pm == 0 || !self.pm.is_multiple_of(DMA_TRANSACTION_DOUBLES) {
            return Err(DgemmError::BadParams(format!(
                "RAW pm = {} must be a positive multiple of 16",
                self.pm
            )));
        }
        if self.kc == 0 || !self.kc.is_multiple_of(DMA_TRANSACTION_DOUBLES) {
            return Err(DgemmError::BadParams(format!(
                "RAW kc = {} must be a positive multiple of 16",
                self.kc
            )));
        }
        if self.pn == 0 {
            return Err(DgemmError::BadParams("RAW pn must be positive".into()));
        }
        if self.ldm_doubles() >= LDM_DOUBLES {
            return Err(DgemmError::BadParams(format!(
                "RAW working set of {} doubles exceeds the LDM",
                self.ldm_doubles()
            )));
        }
        Ok(())
    }

    /// Validates problem dimensions against this blocking: the 8×8
    /// thread grid and the sub-block/panel factors must divide them.
    pub fn validate_dims(&self, m: usize, n: usize, k: usize) -> Result<(), DgemmError> {
        self.validate()?;
        if !m.is_multiple_of(8 * self.pm)
            || !n.is_multiple_of(8 * self.pn)
            || !k.is_multiple_of(self.kc)
        {
            return Err(DgemmError::BadDims(format!(
                "dimensions {m}x{n}x{k} must be multiples of (8·pm, 8·pn, kc) = ({}, {}, {})",
                8 * self.pm,
                8 * self.pn,
                self.kc
            )));
        }
        Ok(())
    }
}

/// Runs the RAW baseline functionally.
#[allow(clippy::too_many_arguments)] // GEMM problem + blocking + scalars
pub fn run_functional_raw(
    cg: &mut CoreGroup,
    m: usize,
    n: usize,
    k: usize,
    raw: RawParams,
    io: GemmIo,
    alpha: f64,
    beta: f64,
) -> Result<RunStats, DgemmError> {
    raw.validate_dims(m, n, k)?;
    let (ar, ac) = cg.mem.dims(io.a)?;
    let (br, bc) = cg.mem.dims(io.b)?;
    let (cr, cc) = cg.mem.dims(io.c)?;
    if (ar, ac) != (m, k) || (br, bc) != (k, n) || (cr, cc) != (m, n) {
        return Err(DgemmError::BadDims(
            "installed matrices do not match the given dimensions".into(),
        ));
    }
    cg.try_run(move |ctx| raw_thread_body(ctx, m, n, k, raw, io, alpha, beta))
        .map_err(|run_err| super::shared::map_run_error(cg, &run_err))
}

#[allow(clippy::too_many_arguments)]
fn raw_thread_body(
    ctx: &mut CpeCtx,
    m: usize,
    n: usize,
    k: usize,
    p: RawParams,
    io: GemmIo,
    alpha: f64,
    beta: f64,
) {
    let (u, v) = (ctx.coord.row as usize, ctx.coord.col as usize);
    let m8 = m / 8;
    let n8 = n / 8;
    let (row0, col0) = (u * m8, v * n8);

    let c_buf = ctx
        .ldm
        .alloc(p.pm * p.pn)
        .expect("RAW C sub-block exceeds LDM");
    let a_buf = ctx.ldm.alloc(p.pm * p.kc).expect("RAW A panel exceeds LDM");
    let b_buf = ctx.ldm.alloc(p.kc * p.pn).expect("RAW B panel exceeds LDM");

    for si in 0..m8 / p.pm {
        for sj in 0..n8 / p.pn {
            let (r0, c0) = (row0 + si * p.pm, col0 + sj * p.pn);
            ctx.dma_pe_get(MatRegion::new(io.c, r0, c0, p.pm, p.pn), c_buf)
                .expect("C DMA");
            for x in ctx.ldm.slice_mut(c_buf) {
                *x *= beta;
            }
            for k0 in (0..k).step_by(p.kc) {
                ctx.dma_pe_get(MatRegion::new(io.a, r0, k0, p.pm, p.kc), a_buf)
                    .expect("A DMA");
                ctx.dma_pe_get(MatRegion::new(io.b, k0, c0, p.kc, p.pn), b_buf)
                    .expect("B DMA");
                subblock_update(ctx, p, a_buf, b_buf, c_buf, alpha);
            }
            ctx.dma_pe_put(MatRegion::new(io.c, r0, c0, p.pm, p.pn), c_buf)
                .expect("C store");
        }
    }
}

/// `C_sub += α · A_panel · B_panel` with the same per-panel FMA
/// accumulation the kernels use (acc over kc, then one α fold).
fn subblock_update(
    ctx: &mut CpeCtx,
    p: RawParams,
    a_buf: sw_mem::LdmBuf,
    b_buf: sw_mem::LdmBuf,
    c_buf: sw_mem::LdmBuf,
    alpha: f64,
) {
    // All three buffers live in the one LDM slice; index it directly
    // (no per-chunk copies — this runs once per k-chunk per sub-block).
    let (a_lo, b_lo, c_lo) = (a_buf.offset(), b_buf.offset(), c_buf.offset());
    let ldm = ctx.ldm.raw_mut();
    for j in 0..p.pn {
        for r in 0..p.pm {
            let mut acc = 0.0f64;
            for l in 0..p.kc {
                acc = ldm[a_lo + l * p.pm + r].mul_add(ldm[b_lo + j * p.kc + l], acc);
            }
            let idx = c_lo + j * p.pm + r;
            ldm[idx] = acc.mul_add(alpha, ldm[idx]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        RawParams::paper().validate().unwrap();
        RawParams::test_small().validate().unwrap();
        assert!(RawParams {
            pm: 8,
            pn: 8,
            kc: 16
        }
        .validate()
        .is_err());
        assert!(RawParams {
            pm: 16,
            pn: 8,
            kc: 8
        }
        .validate()
        .is_err());
        assert!(RawParams {
            pm: 96,
            pn: 96,
            kc: 16
        }
        .validate()
        .is_err()); // LDM
    }

    #[test]
    fn paper_params_fit_ldm() {
        assert_eq!(
            RawParams::paper().ldm_doubles(),
            64 * 64 + 64 * 16 + 16 * 64
        );
        assert!(RawParams::paper().ldm_doubles() < LDM_DOUBLES);
    }

    #[test]
    fn dims_validation() {
        let p = RawParams::test_small();
        p.validate_dims(128, 64, 32).unwrap();
        assert!(p.validate_dims(120, 64, 32).is_err());
        assert!(p.validate_dims(128, 60, 32).is_err());
        assert!(p.validate_dims(128, 64, 24).is_err());
    }
}
