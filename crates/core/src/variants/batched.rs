//! Batched small-matrix DGEMM.
//!
//! The paper's introduction cites convolutional neural networks among
//! GEMM's consumers; their characteristic workload is *many small
//! products*, not one large one. The three-level blocking degenerates
//! there (a whole CG block would dwarf the matrices), so the batched
//! path uses the other natural mapping of the CPE cluster: each CPE
//! owns whole problems — item `i` goes to CPE `i mod 64` — staging
//! A, B and C through its private LDM with `PE_MODE` DMA and computing
//! locally. No register communication is needed; the batch dimension
//! supplies all the parallelism.

use crate::error::DgemmError;
use crate::Matrix;
use sw_arch::consts::LDM_DOUBLES;
use sw_arch::coord::N_CPES;
use sw_mem::dma::MatRegion;
use sw_mem::MatId;
use sw_sim::{CoreGroup, RunStats};

/// Checks that one batch item's working set fits a CPE's LDM and meets
/// the DMA granularity (m and k multiples of 16; n free).
pub fn validate_batch_dims(m: usize, n: usize, k: usize) -> Result<(), DgemmError> {
    if m == 0 || n == 0 || k == 0 {
        return Err(DgemmError::BadDims(
            "batch item dimensions must be positive".into(),
        ));
    }
    if !m.is_multiple_of(16) || !k.is_multiple_of(16) {
        return Err(DgemmError::BadDims(format!(
            "batched items need m and k to be multiples of 16 (128 B DMA transactions), got {m}x{n}x{k}"
        )));
    }
    let need = m * k + k * n + m * n;
    if need >= LDM_DOUBLES {
        return Err(DgemmError::BadDims(format!(
            "batch item working set of {need} doubles exceeds the 8192-double LDM"
        )));
    }
    Ok(())
}

/// `C_i = α·A_i·B_i + β·C_i` for every item of a uniform batch, one
/// item per CPE round-robin.
///
/// All items share the same `(m, n, k)`. Accumulation order per
/// element: β once, then a single FMA chain over the full k (chunk =
/// k in [`crate::reference::dgemm_chunked_fma`] terms).
pub fn dgemm_batched(
    alpha: f64,
    a: &[Matrix],
    b: &[Matrix],
    beta: f64,
    c: &mut [Matrix],
) -> Result<RunStats, DgemmError> {
    if a.len() != b.len() || a.len() != c.len() {
        return Err(DgemmError::BadDims(format!(
            "batch arrays disagree: {} A, {} B, {} C",
            a.len(),
            b.len(),
            c.len()
        )));
    }
    if a.is_empty() {
        return Err(DgemmError::BadDims("empty batch".into()));
    }
    let (m, k) = (a[0].rows(), a[0].cols());
    let n = b[0].cols();
    validate_batch_dims(m, n, k)?;
    for (i, ((ai, bi), ci)) in a.iter().zip(b).zip(c.iter()).enumerate() {
        if ai.rows() != m
            || ai.cols() != k
            || bi.rows() != k
            || bi.cols() != n
            || ci.rows() != m
            || ci.cols() != n
        {
            return Err(DgemmError::BadDims(format!(
                "batch item {i} has mismatched dimensions"
            )));
        }
    }

    let mut cg = CoreGroup::new();
    let ios: Vec<(MatId, MatId, MatId)> = a
        .iter()
        .zip(b)
        .zip(c.iter())
        .map(|((ai, bi), ci)| {
            Ok((
                cg.mem.install(ai.clone())?,
                cg.mem.install(bi.clone())?,
                cg.mem.install(ci.clone())?,
            ))
        })
        .collect::<Result<_, DgemmError>>()?;

    let ios_ref = &ios;
    let stats = cg.run(move |ctx| {
        let a_buf = ctx.ldm.alloc(m * k).expect("A item exceeds LDM");
        let b_buf = ctx.ldm.alloc(k * n).expect("B item exceeds LDM");
        let c_buf = ctx.ldm.alloc(m * n).expect("C item exceeds LDM");
        let mut idx = ctx.coord.id();
        while idx < ios_ref.len() {
            let (ia, ib, ic) = ios_ref[idx];
            ctx.dma_pe_get(MatRegion::new(ia, 0, 0, m, k), a_buf)
                .expect("A DMA");
            ctx.dma_pe_get(MatRegion::new(ib, 0, 0, k, n), b_buf)
                .expect("B DMA");
            ctx.dma_pe_get(MatRegion::new(ic, 0, 0, m, n), c_buf)
                .expect("C DMA");
            // Local compute, one FMA chain per element.
            let a_lo = a_buf.offset();
            let b_lo = b_buf.offset();
            let c_lo = c_buf.offset();
            let raw = ctx.ldm.raw_mut();
            for j in 0..n {
                for r in 0..m {
                    let mut acc = 0.0f64;
                    for l in 0..k {
                        acc = raw[a_lo + l * m + r].mul_add(raw[b_lo + j * k + l], acc);
                    }
                    let ci = c_lo + j * m + r;
                    raw[ci] = acc.mul_add(alpha, beta * raw[ci]);
                }
            }
            ctx.dma_pe_put(MatRegion::new(ic, 0, 0, m, n), c_buf)
                .expect("C store");
            idx += N_CPES;
        }
    });
    for ((_, _, ic), ci) in ios.iter().zip(c.iter_mut()) {
        *ci = cg.mem.extract(*ic)?;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;
    use crate::reference::{dgemm_chunked_fma, dgemm_naive, gemm_tolerance};

    fn batch(
        count: usize,
        m: usize,
        n: usize,
        k: usize,
        seed: u64,
    ) -> (Vec<Matrix>, Vec<Matrix>, Vec<Matrix>) {
        let a: Vec<_> = (0..count)
            .map(|i| random_matrix(m, k, seed + i as u64))
            .collect();
        let b: Vec<_> = (0..count)
            .map(|i| random_matrix(k, n, seed + 100 + i as u64))
            .collect();
        let c: Vec<_> = (0..count)
            .map(|i| random_matrix(m, n, seed + 200 + i as u64))
            .collect();
        (a, b, c)
    }

    #[test]
    fn batched_matches_per_item_reference() {
        let (m, n, k) = (16, 5, 32);
        let (a, b, c0) = batch(100, m, n, k, 1);
        let mut c = c0.clone();
        dgemm_batched(1.5, &a, &b, -0.5, &mut c).unwrap();
        for i in 0..a.len() {
            let mut expect = c0[i].clone();
            dgemm_naive(1.5, &a[i], &b[i], -0.5, &mut expect);
            let tol = gemm_tolerance(&a[i], &b[i], 1.5);
            assert!(c[i].max_abs_diff(&expect) <= tol, "item {i}");
        }
    }

    #[test]
    fn batched_is_bitwise_chunked_fma_with_full_k() {
        let (m, n, k) = (16, 4, 16);
        let (a, b, c0) = batch(7, m, n, k, 31);
        let mut c = c0.clone();
        dgemm_batched(2.0, &a, &b, 1.0, &mut c).unwrap();
        for i in 0..a.len() {
            let mut expect = c0[i].clone();
            dgemm_chunked_fma(2.0, &a[i], &b[i], 1.0, &mut expect, k);
            assert_eq!(c[i], expect, "item {i}");
        }
    }

    #[test]
    fn small_batches_leave_cpes_idle_but_work() {
        let (a, b, c0) = batch(3, 16, 8, 16, 41);
        let mut c = c0.clone();
        let stats = dgemm_batched(1.0, &a, &b, 0.0, &mut c).unwrap();
        // 3 items × (A + B + C in + C out) descriptors.
        assert_eq!(stats.dma.descriptors, 3 * 4);
    }

    #[test]
    fn dims_validated() {
        assert!(validate_batch_dims(16, 8, 16).is_ok());
        assert!(validate_batch_dims(12, 8, 16).is_err()); // m % 16
        assert!(validate_batch_dims(16, 8, 20).is_err()); // k % 16
        assert!(validate_batch_dims(64, 64, 64).is_err()); // LDM
        let (a, b, _) = batch(2, 16, 8, 16, 51);
        let mut wrong = vec![Matrix::zeros(16, 8)];
        assert!(dgemm_batched(1.0, &a, &b, 0.0, &mut wrong).is_err());
    }

    #[test]
    fn mismatched_item_rejected() {
        let (a, b, mut c) = batch(4, 16, 8, 16, 61);
        let mut b_bad = b.clone();
        b_bad[2] = Matrix::zeros(16, 9);
        assert!(dgemm_batched(1.0, &a, &b_bad, 0.0, &mut c).is_err());
    }
}
