//! The self-healing functional executor: per-CG-block runs with fault
//! injection, ABFT verification, recompute-based correction, and
//! graceful degradation onto a surviving CPE grid.
//!
//! The fast path ([`super::shared`]) launches the whole `grid_m ×
//! grid_n × grid_k` schedule as one 64-thread run. The resilient path
//! trades that amortization for a recovery boundary: each CG block is
//! its own run, bracketed by
//!
//! 1. a **C-block snapshot** (the undo log for recompute/degrade),
//! 2. positioning the fault injector at `(epoch, attempt)` — epoch is
//!    the block's schedule index, so every injection decision is a
//!    pure function of the seed and the block, never of thread timing,
//! 3. the block run itself — collective while all 64 CPEs are healthy,
//!    degraded once any CPE has been marked failed,
//! 4. **ABFT verification** of the block delta against main memory
//!    ([`crate::abft`]), with restore + recompute under
//!    [`AbftPolicy::Correct`].
//!
//! Degraded mode re-plans the block for the survivors: the 64 `PE`
//! tiles of the block are dealt round-robin to the surviving CPEs,
//! each of which fetches the A/B slabs it needs per strip step
//! directly over DMA ([`Operand::Ldm`] roles — no mesh traffic, hence
//! no rendezvous with dead peers) and writes its disjoint C tiles
//! back without barriers. Because [`strip_step`] walks k-slabs in the
//! same order with the same FMA chain, a degraded block is **bitwise
//! identical** to its collective counterpart — degradation costs
//! bandwidth and time, never numerics.
//!
//! The resilient path always runs the single-buffered schedule: the
//! double-buffered variants' A/C prefetch spans CG blocks, which a
//! per-block recovery boundary cannot overlap. Numerics are unchanged
//! (the variants' bitwise contract is buffering-independent); only
//! simulated timing differs, and timing estimates come from the
//! timing model, not this path.

use crate::abft::{self, AbftPolicy};
use crate::error::DgemmError;
use crate::mapping::{self, Mapping};
use crate::plan::GemmPlan;
use crate::sharing::StepRole;
use crate::streamed::strip_step;
use crate::variants::shared::{check_io, compute_and_store, load_ac, map_run_error, GemmIo};
use std::sync::Arc;
use sw_arch::coord::{Coord, N_CPES};
use sw_faults::FaultInjector;
use sw_isa::Operand;
use sw_mem::dma::MatRegion;
use sw_mem::MemError;
use sw_probe::flight::{self, EventKind, MPE_RING};
use sw_sim::{CoreGroup, CpeError, RunError, RunStats};

/// Recovery policy of one resilient run.
#[derive(Debug, Clone)]
pub(crate) struct ResilienceCfg {
    /// The injector driving (and counting) faults; `None` runs the
    /// same per-block machinery fault-free (pure ABFT verification).
    pub injector: Option<Arc<FaultInjector>>,
    /// Checksum policy.
    pub abft: AbftPolicy,
    /// Whether a DMA retry-budget exhaustion degrades onto the
    /// surviving grid (`true`) or surfaces as the structured
    /// [`MemError::RetryBudgetExhausted`] (`false`).
    pub degrade: bool,
    /// Runs per block (first + recoveries) before giving up.
    pub max_attempts: u32,
}

/// Runs `C = α·A·B + β·C` block-by-block with recovery. Returns the
/// accumulated traffic statistics of every attempt that executed.
pub(crate) fn run_resilient(
    cg: &mut CoreGroup,
    plan: &GemmPlan,
    mapping: Mapping,
    io: GemmIo,
    alpha: f64,
    beta: f64,
    cfg: &ResilienceCfg,
) -> Result<RunStats, DgemmError> {
    check_io(cg, plan, io)?;
    // MPE-side recovery decisions land on the dedicated MPE ring so a
    // diagnostics bundle shows the block-retry story next to the
    // per-CPE event tails.
    let flight = Arc::clone(cg.flight());
    let p = &plan.params;
    let (bm, bn) = (p.bm(), p.bn());
    let mut failed = [false; N_CPES];
    let mut any_failed = false;
    let mut total = RunStats::default();
    for j in 0..plan.grid_n {
        for l in 0..plan.grid_k {
            for i in 0..plan.grid_m {
                let epoch = ((j * plan.grid_k + l) * plan.grid_m + i) as u64;
                let c_before = cg.mem.read_region(io.c, i * bm, j * bn, bm, bn)?;
                let mut attempt = 0u32;
                loop {
                    if let Some(inj) = &cfg.injector {
                        inj.set_epoch(epoch, attempt);
                    }
                    let result = if any_failed {
                        run_block_degraded(cg, plan, io, i, j, l, alpha, beta, &failed)
                    } else {
                        run_block_collective(cg, plan, mapping, io, i, j, l, alpha, beta)
                    };
                    match result {
                        Ok(stats) => {
                            accumulate(&mut total, &stats);
                            if any_failed {
                                if let Some(inj) = &cfg.injector {
                                    inj.note_degraded_block();
                                }
                            }
                            if cfg.abft == AbftPolicy::Off {
                                break;
                            }
                            match abft::verify_block(
                                &cg.mem, plan, io, i, j, l, alpha, beta, &c_before,
                            )? {
                                None => {
                                    if attempt > 0 {
                                        if let Some(inj) = &cfg.injector {
                                            inj.note_abft_corrected();
                                        }
                                    }
                                    break;
                                }
                                Some(detail) => {
                                    if let Some(inj) = &cfg.injector {
                                        inj.note_abft_detected();
                                    }
                                    flight.record(
                                        MPE_RING,
                                        EventKind::FaultDecision,
                                        flight::fault_code::ABFT_DETECT,
                                        epoch,
                                    );
                                    if cfg.abft == AbftPolicy::Correct
                                        && attempt + 1 < cfg.max_attempts
                                    {
                                        cg.mem.write_region(
                                            io.c,
                                            i * bm,
                                            j * bn,
                                            bm,
                                            bn,
                                            &c_before,
                                        )?;
                                        attempt += 1;
                                        flight.record(
                                            MPE_RING,
                                            EventKind::RetryAttempt,
                                            attempt,
                                            epoch,
                                        );
                                        continue;
                                    }
                                    return Err(DgemmError::AbftMismatch {
                                        block: (i, j, l),
                                        attempts: attempt + 1,
                                        detail,
                                    });
                                }
                            }
                        }
                        Err(run_err) => {
                            accumulate(&mut total, &run_err.stats);
                            let primary = run_err.primary().clone();
                            match primary.error {
                                CpeError::Mem(MemError::RetryBudgetExhausted { .. })
                                    if cfg.degrade && attempt + 1 < cfg.max_attempts =>
                                {
                                    let id = primary.coord.id();
                                    if !failed[id] {
                                        failed[id] = true;
                                        any_failed = true;
                                        if let Some(inj) = &cfg.injector {
                                            inj.note_cpe_failed();
                                        }
                                        flight.record(
                                            MPE_RING,
                                            EventKind::FaultDecision,
                                            flight::fault_code::CPE_FAILED,
                                            id as u64,
                                        );
                                    }
                                    // Peers may have stored C tiles
                                    // before the abort: roll the whole
                                    // block back before re-running.
                                    cg.mem
                                        .write_region(io.c, i * bm, j * bn, bm, bn, &c_before)?;
                                    attempt += 1;
                                    flight.record(
                                        MPE_RING,
                                        EventKind::RetryAttempt,
                                        attempt,
                                        epoch,
                                    );
                                    continue;
                                }
                                CpeError::Mesh(_) => {
                                    if let Some(inj) = &cfg.injector {
                                        inj.note_mesh_deadlock();
                                    }
                                    return Err(map_run_error(cg, &run_err));
                                }
                                CpeError::Mem(e) => return Err(DgemmError::Mem(e)),
                                // An all-`Cancelled` unwind: the cancel
                                // token (deadline or caller abort) if
                                // one fired, else an unattributable
                                // transient.
                                CpeError::Cancelled => return Err(map_run_error(cg, &run_err)),
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(total)
}

/// One CG block on the full collective 64-CPE grid — the per-block
/// slice of Algorithm 1 (B load, A/C load, 8 strip steps, C store).
#[allow(clippy::too_many_arguments)]
#[allow(clippy::result_large_err)] // RunError carries full teardown evidence by design
fn run_block_collective(
    cg: &mut CoreGroup,
    plan: &GemmPlan,
    mapping: Mapping,
    io: GemmIo,
    i: usize,
    j: usize,
    l: usize,
    alpha: f64,
    beta: f64,
) -> Result<RunStats, RunError> {
    let plan = *plan;
    cg.try_run(move |ctx| {
        let p = plan.params;
        let a_buf = ctx
            .ldm
            .alloc(p.pm * p.pk)
            .unwrap_or_else(|e| ctx.abort(e.into()));
        let c_buf = ctx
            .ldm
            .alloc(p.pm * p.pn)
            .unwrap_or_else(|e| ctx.abort(e.into()));
        let b_buf = ctx
            .ldm
            .alloc(p.pk * p.pn)
            .unwrap_or_else(|e| ctx.abort(e.into()));
        let rb = mapping::b_region(&plan, io.b, mapping, l, j, ctx.coord);
        ctx.dma_pe_get(rb, b_buf)
            .unwrap_or_else(|e| ctx.abort(e.into()));
        ctx.sync_all();
        load_ac(ctx, &plan, mapping, io, i, j, l, a_buf, c_buf);
        ctx.sync_all();
        compute_and_store(
            ctx, &plan, mapping, io, i, j, l, a_buf, b_buf, c_buf, alpha, beta,
        );
    })
}

/// One CG block on the surviving grid: the block's 64 `PE` tiles are
/// dealt round-robin to the survivors; each fetches its operand slabs
/// directly (no mesh, no barriers) and stores its disjoint C tiles.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::result_large_err)] // RunError carries full teardown evidence by design
fn run_block_degraded(
    cg: &mut CoreGroup,
    plan: &GemmPlan,
    io: GemmIo,
    i: usize,
    j: usize,
    l: usize,
    alpha: f64,
    beta: f64,
    failed: &[bool; N_CPES],
) -> Result<RunStats, RunError> {
    let plan = *plan;
    let failed = *failed;
    let n_survivors = failed.iter().filter(|f| !**f).count();
    assert!(n_survivors > 0, "at least one CPE must survive");
    cg.try_run(move |ctx| {
        let id = ctx.coord.id();
        if failed[id] {
            return; // a failed CPE contributes nothing — and blocks nothing
        }
        let rank = failed[..id].iter().filter(|f| !**f).count();
        let p = plan.params;
        let a_buf = ctx
            .ldm
            .alloc(p.pm * p.pk)
            .unwrap_or_else(|e| ctx.abort(e.into()));
        let c_buf = ctx
            .ldm
            .alloc(p.pm * p.pn)
            .unwrap_or_else(|e| ctx.abort(e.into()));
        let b_buf = ctx
            .ldm
            .alloc(p.pk * p.pn)
            .unwrap_or_else(|e| ctx.abort(e.into()));
        let own = StepRole {
            a: Operand::Ldm,
            b: Operand::Ldm,
        };
        let mut tile = rank;
        while tile < N_CPES {
            let owner = Coord::from_id(tile);
            let (u, v) = (owner.row as usize, owner.col as usize);
            let rc = mapping::c_region(&plan, io.c, Mapping::Pe, i, j, owner);
            ctx.dma_pe_get(rc, c_buf)
                .unwrap_or_else(|e| ctx.abort(e.into()));
            if l == 0 {
                for x in ctx.ldm.slice_mut(c_buf) {
                    *x *= beta;
                }
            }
            // Strip step s consumes k-slab s — the same order and FMA
            // chain as the collective schedule, so the tile is bitwise
            // identical to what CPE (u, v) would have produced.
            for s in 0..8 {
                let ra = MatRegion::new(
                    io.a,
                    i * p.bm() + u * p.pm,
                    l * p.bk() + s * p.pk,
                    p.pm,
                    p.pk,
                );
                let rb = MatRegion::new(
                    io.b,
                    l * p.bk() + s * p.pk,
                    j * p.bn() + v * p.pn,
                    p.pk,
                    p.pn,
                );
                ctx.dma_pe_get(ra, a_buf)
                    .unwrap_or_else(|e| ctx.abort(e.into()));
                ctx.dma_pe_get(rb, b_buf)
                    .unwrap_or_else(|e| ctx.abort(e.into()));
                strip_step(ctx, own, a_buf, b_buf, c_buf, p.pm, p.pn, p.pk, alpha);
            }
            ctx.dma_pe_put(rc, c_buf)
                .unwrap_or_else(|e| ctx.abort(e.into()));
            tile += n_survivors;
        }
    })
}

fn accumulate(total: &mut RunStats, one: &RunStats) {
    let (t, o) = (&mut total.dma, &one.dma);
    t.pe_bytes += o.pe_bytes;
    t.bcast_bytes += o.bcast_bytes;
    t.row_bytes += o.row_bytes;
    t.brow_bytes += o.brow_bytes;
    t.rank_bytes += o.rank_bytes;
    t.descriptors += o.descriptors;
    total.mesh.row_words_sent += one.mesh.row_words_sent;
    total.mesh.col_words_sent += one.mesh.col_words_sent;
    total.mesh.row_words_received += one.mesh.row_words_received;
    total.mesh.col_words_received += one.mesh.col_words_received;
    total.grid.accumulate(&one.grid);
    total
        .panicked_cpes
        .extend(one.panicked_cpes.iter().copied());
    total.wall += one.wall;
}
