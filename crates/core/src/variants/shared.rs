//! Functional executor of the data-sharing variants (PE, ROW, DB,
//! SCHED).
//!
//! All four run the same three-level blocked schedule (Algorithm 1, or
//! Algorithm 2 when double-buffered) and the same collective data
//! sharing; they differ in the data-thread mapping, the LDM buffering,
//! and — on real hardware — the kernel's instruction schedule. The
//! instruction schedule does not change numerics (proved bitwise in
//! `sw-isa`), so the functional path uses the streamed kernel for all
//! of them; the cycle difference is captured by the timing mode.
//!
//! Numerical contract: results are **bitwise identical** across PE,
//! ROW, DB and SCHED (the per-element FMA order depends only on `pK`),
//! and bitwise equal to
//! [`crate::reference::dgemm_chunked_fma`] with `chunk = pK`.

use crate::error::DgemmError;
use crate::mapping::{self, Mapping};
use crate::plan::GemmPlan;
use crate::sharing::step_role;
use crate::streamed::strip_step;
use sw_lint::{rendezvous_summary, CommCounts};
use sw_mem::{LdmBuf, MatId, MemError};
use sw_mesh::MeshGridStats;
use sw_sim::{CoreGroup, CpeCtx, CpeError, RunError, RunStats};

/// The three operand matrices of one DGEMM, installed in main memory.
#[derive(Debug, Clone, Copy)]
pub struct GemmIo {
    /// m×k input.
    pub a: MatId,
    /// k×n input.
    pub b: MatId,
    /// m×n input/output.
    pub c: MatId,
}

/// Runs `C = α·A·B + β·C` functionally on the 64-thread simulator with
/// the given mapping and the plan's buffering mode.
pub fn run_functional(
    cg: &mut CoreGroup,
    plan: &GemmPlan,
    mapping: Mapping,
    io: GemmIo,
    alpha: f64,
    beta: f64,
) -> Result<RunStats, DgemmError> {
    check_io(cg, plan, io)?;
    let plan = *plan;
    cg.try_run(move |ctx| thread_body(ctx, &plan, mapping, io, alpha, beta))
        .map_err(|run_err| map_run_error(cg, &run_err))
}

/// Maps a failed collective run's teardown evidence onto the crate's
/// error taxonomy. Shared by the fast path, the RAW baseline, and the
/// resilient executor's non-recoverable arm:
///
/// * a mesh-wedged primary becomes [`DgemmError::MeshDeadlock`] with
///   the lint-side rendezvous summary over the observed traffic;
/// * a memory/DMA primary surfaces as [`DgemmError::Mem`];
/// * an all-`Cancelled` unwind is attributed to the core group's
///   cancel token when one fired ([`DgemmError::Cancelled`], carrying
///   the deadline bit) — a real fault on any CPE always outranks a
///   concurrent cancel, because `RunError::primary` prefers
///   non-cancelled failures.
pub(crate) fn map_run_error(cg: &CoreGroup, run_err: &RunError) -> DgemmError {
    let primary = run_err.primary();
    match &primary.error {
        CpeError::Mesh(_) => DgemmError::MeshDeadlock {
            coord: (primary.coord.row, primary.coord.col),
            summary: rendezvous_summary(&grid_to_comm(&run_err.grid)),
        },
        CpeError::Mem(e) => DgemmError::Mem(e.clone()),
        CpeError::Cancelled => match cg.cancel_token() {
            Some(token) if token.is_cancelled() => DgemmError::Cancelled {
                deadline: token.deadline_hit(),
            },
            _ => DgemmError::Mem(MemError::Transient {
                what: "run unwound with no attributable primary failure".to_string(),
            }),
        },
    }
}

/// Converts the runtime's observed per-CPE traffic into the word
/// counts the lint-side rendezvous check consumes: a broadcast
/// enqueues up to 7 copies (`div_ceil` so a partially-dropped word
/// still counts as sent), and a starved receive is one word of unmet
/// demand.
pub(crate) fn grid_to_comm(grid: &MeshGridStats) -> [[CommCounts; 8]; 8] {
    let mut comm = [[CommCounts::default(); 8]; 8];
    for (r, row) in grid.cells.iter().enumerate() {
        for (c, t) in row.iter().enumerate() {
            comm[r][c] = CommCounts {
                sent: [t.row_sent.div_ceil(7), t.col_sent.div_ceil(7)],
                recv: [t.row_recv + t.row_starved, t.col_recv + t.col_starved],
            };
        }
    }
    comm
}

pub(crate) fn check_io(cg: &CoreGroup, plan: &GemmPlan, io: GemmIo) -> Result<(), DgemmError> {
    let (ar, ac) = cg.mem.dims(io.a)?;
    let (br, bc) = cg.mem.dims(io.b)?;
    let (cr, cc) = cg.mem.dims(io.c)?;
    if (ar, ac) != (plan.m, plan.k) || (br, bc) != (plan.k, plan.n) || (cr, cc) != (plan.m, plan.n)
    {
        return Err(DgemmError::BadDims(format!(
            "installed matrices {ar}x{ac}, {br}x{bc}, {cr}x{cc} do not match plan {}x{}x{}",
            plan.m, plan.n, plan.k
        )));
    }
    Ok(())
}

/// The SPMD body every CPE thread runs: Algorithm 1 (single-buffered)
/// or Algorithm 2 (double-buffered), with the strip multiplication and
/// collective sharing inside.
fn thread_body(
    ctx: &mut CpeCtx,
    plan: &GemmPlan,
    mapping: Mapping,
    io: GemmIo,
    alpha: f64,
    beta: f64,
) {
    let p = plan.params;
    let (pm, pn, pk) = (p.pm, p.pn, p.pk);
    let nbuf = if plan.double_buffered { 2 } else { 1 };
    let a_bufs: Vec<LdmBuf> = (0..nbuf)
        .map(|_| ctx.ldm.alloc(pm * pk).expect("A blocks exceed LDM"))
        .collect();
    let c_bufs: Vec<LdmBuf> = (0..nbuf)
        .map(|_| ctx.ldm.alloc(pm * pn).expect("C blocks exceed LDM"))
        .collect();
    let b_buf = ctx.ldm.alloc(pk * pn).expect("B block exceeds LDM");

    for j in 0..plan.grid_n {
        for l in 0..plan.grid_k {
            // Load the resident B block (PE_MODE in both mappings).
            let rb = mapping::b_region(plan, io.b, mapping, l, j, ctx.coord);
            ctx.dma_pe_get(rb, b_buf)
                .unwrap_or_else(|e| ctx.abort(e.into()));
            ctx.sync_all();

            if plan.double_buffered {
                // Algorithm 2: prefetch A/C of block i+1 while block i
                // computes; buffers rotate.
                load_ac(ctx, plan, mapping, io, 0, j, l, a_bufs[0], c_bufs[0]);
                ctx.sync_all();
                for i in 0..plan.grid_m {
                    let cur = i % 2;
                    if i + 1 < plan.grid_m {
                        load_ac(
                            ctx,
                            plan,
                            mapping,
                            io,
                            i + 1,
                            j,
                            l,
                            a_bufs[(i + 1) % 2],
                            c_bufs[(i + 1) % 2],
                        );
                    }
                    compute_and_store(
                        ctx,
                        plan,
                        mapping,
                        io,
                        i,
                        j,
                        l,
                        a_bufs[cur],
                        b_buf,
                        c_bufs[cur],
                        alpha,
                        beta,
                    );
                }
            } else {
                // Algorithm 1: strictly serial load → compute → store.
                for i in 0..plan.grid_m {
                    load_ac(ctx, plan, mapping, io, i, j, l, a_bufs[0], c_bufs[0]);
                    ctx.sync_all();
                    compute_and_store(
                        ctx, plan, mapping, io, i, j, l, a_bufs[0], b_buf, c_bufs[0], alpha, beta,
                    );
                }
            }
        }
    }
}

/// Loads this thread's A block of CG block (i, l) and C block of
/// (i, j), honouring the mapping's DMA modes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn load_ac(
    ctx: &mut CpeCtx,
    plan: &GemmPlan,
    mapping: Mapping,
    io: GemmIo,
    i: usize,
    j: usize,
    l: usize,
    a_buf: LdmBuf,
    c_buf: LdmBuf,
) {
    let ra = mapping::a_region(plan, io.a, mapping, i, l, ctx.coord);
    let rc = mapping::c_region(plan, io.c, mapping, i, j, ctx.coord);
    match mapping {
        Mapping::Pe => {
            ctx.dma_pe_get(ra, a_buf)
                .unwrap_or_else(|e| ctx.abort(e.into()));
            ctx.dma_pe_get(rc, c_buf)
                .unwrap_or_else(|e| ctx.abort(e.into()));
        }
        Mapping::Row => {
            ctx.dma_row_get(ra, a_buf)
                .unwrap_or_else(|e| ctx.abort(e.into()));
            ctx.dma_row_get(rc, c_buf)
                .unwrap_or_else(|e| ctx.abort(e.into()));
        }
    }
}

/// One CG-block update: β-scale on first use, 8 collective strip
/// steps, then the C write-back.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_and_store(
    ctx: &mut CpeCtx,
    plan: &GemmPlan,
    mapping: Mapping,
    io: GemmIo,
    i: usize,
    j: usize,
    l: usize,
    a_buf: LdmBuf,
    b_buf: LdmBuf,
    c_buf: LdmBuf,
    alpha: f64,
    beta: f64,
) {
    let p = plan.params;
    // δC(i,j) makes its K round-trips through LDM; β applies only on
    // the first (l = 0), exactly once per element.
    if l == 0 {
        for x in ctx.ldm.slice_mut(c_buf) {
            *x *= beta;
        }
    }
    for s in 0..8 {
        let role = step_role(mapping, s, ctx.coord);
        strip_step(ctx, role, a_buf, b_buf, c_buf, p.pm, p.pn, p.pk, alpha);
        // Host threads drift freely, so without a step barrier a fast
        // thread's step-(s+1) broadcast could interleave into a peer's
        // receive buffer behind step-s words from a different sender.
        // The real kernel paces this implicitly via SIMT lockstep; the
        // simulator makes it explicit.
        ctx.sync_all();
    }
    let rc = mapping::c_region(plan, io.c, mapping, i, j, ctx.coord);
    match mapping {
        Mapping::Pe => ctx
            .dma_pe_put(rc, c_buf)
            .unwrap_or_else(|e| ctx.abort(e.into())),
        Mapping::Row => ctx
            .dma_row_put(rc, c_buf)
            .unwrap_or_else(|e| ctx.abort(e.into())),
    };
    ctx.sync_all();
}
