//! The five DGEMM implementations of the paper's evaluation (§V).

pub mod batched;
pub mod raw;
pub(crate) mod resilient;
pub mod shared;

use crate::mapping::Mapping;
use crate::params::BlockingParams;
use sw_isa::kernels::KernelStyle;

/// One of the paper's five implementations, each adding one
/// optimization on top of the previous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Straightforward thread-blocked triple loop, `PE_MODE` DMA, no
    /// data sharing.
    Raw,
    /// Three-level blocking + collective data sharing, `PE_MODE`.
    Pe,
    /// + `ROW_MODE` data-thread mapping for A and C.
    Row,
    /// + double buffering (Algorithm 2).
    Db,
    /// + instruction-scheduled kernel (Algorithm 3).
    Sched,
}

impl Variant {
    /// All five, in the paper's optimization order.
    pub const ALL: [Variant; 5] = [
        Variant::Raw,
        Variant::Pe,
        Variant::Row,
        Variant::Db,
        Variant::Sched,
    ];

    /// Display name as used in Figure 6.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Raw => "RAW",
            Variant::Pe => "PE",
            Variant::Row => "ROW",
            Variant::Db => "DB",
            Variant::Sched => "SCHED",
        }
    }

    /// The data-thread mapping the variant uses (meaningless for RAW).
    pub fn mapping(self) -> Mapping {
        match self {
            Variant::Raw | Variant::Pe => Mapping::Pe,
            Variant::Row | Variant::Db | Variant::Sched => Mapping::Row,
        }
    }

    /// Whether A and C are double-buffered (Algorithm 2).
    pub fn double_buffered(self) -> bool {
        matches!(self, Variant::Db | Variant::Sched)
    }

    /// The micro-kernel code shape the variant runs.
    pub fn kernel_style(self) -> KernelStyle {
        match self {
            Variant::Sched => KernelStyle::Scheduled,
            _ => KernelStyle::Naive,
        }
    }

    /// The paper's blocking parameters for this variant (§III-C.2 for
    /// the single-buffered variants, §IV-B for the double-buffered
    /// ones). RAW has its own parameters ([`raw::RawParams`]).
    pub fn paper_params(self) -> BlockingParams {
        if self.double_buffered() {
            BlockingParams::paper_double()
        } else {
            BlockingParams::paper_single()
        }
    }

    /// Test-scale blocking (same shape constraints, small blocks).
    pub fn test_params(self) -> BlockingParams {
        BlockingParams::test_small()
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_structure() {
        assert_eq!(Variant::ALL.len(), 5);
        assert!(!Variant::Pe.double_buffered());
        assert!(Variant::Db.double_buffered());
        assert_eq!(Variant::Row.mapping(), Mapping::Row);
        assert_eq!(Variant::Pe.mapping(), Mapping::Pe);
        assert_eq!(Variant::Sched.kernel_style(), KernelStyle::Scheduled);
        assert_eq!(Variant::Db.kernel_style(), KernelStyle::Naive);
    }

    #[test]
    fn paper_params_by_variant() {
        assert_eq!(Variant::Pe.paper_params().pn, 48);
        assert_eq!(Variant::Sched.paper_params().pn, 32);
    }
}
