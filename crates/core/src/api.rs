//! The public entry points.

use crate::error::DgemmError;
use crate::lint::{self, LintPolicy};
use crate::padding::PadPlan;
use crate::params::BlockingParams;
use crate::plan::GemmPlan;
use crate::variants::raw::{run_functional_raw, RawParams};
use crate::variants::shared::{run_functional, GemmIo};
use crate::variants::Variant;
use crate::Matrix;
use sw_sim::{CoreGroup, RunStats, Tracer};

/// Transposition operator of a BLAS GEMM operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the operand's transpose.
    Trans,
}

impl Op {
    /// Effective (rows, cols) of an operand under this op.
    pub fn dims(self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            Op::NoTrans => (rows, cols),
            Op::Trans => (cols, rows),
        }
    }
}

/// What a functional run returns alongside the updated C matrix.
#[derive(Debug, Clone)]
pub struct DgemmReport {
    /// The variant that ran.
    pub variant: Variant,
    /// The validated plan (None for RAW, which has its own blocking).
    pub plan: Option<GemmPlan>,
    /// DMA / mesh traffic and wall time of the simulated run.
    pub stats: RunStats,
}

/// Configurable functional runner.
///
/// ```
/// use sw_dgemm::{DgemmRunner, Variant, gen};
///
/// let a = gen::random_matrix(128, 128, 1);
/// let b = gen::random_matrix(128, 64, 2);
/// let mut c = gen::random_matrix(128, 64, 3);
/// let report = DgemmRunner::new(Variant::Sched)
///     .params(sw_dgemm::BlockingParams::test_small())
///     .run(1.5, &a, &b, 0.5, &mut c)
///     .unwrap();
/// assert_eq!(report.variant, Variant::Sched);
/// ```
#[derive(Debug, Clone)]
pub struct DgemmRunner {
    variant: Variant,
    params: Option<BlockingParams>,
    raw_params: Option<RawParams>,
    pad: bool,
    tracer: Tracer,
    lint: LintPolicy,
}

impl DgemmRunner {
    /// A runner for the given variant with automatic blocking choice.
    pub fn new(variant: Variant) -> Self {
        DgemmRunner {
            variant,
            params: None,
            raw_params: None,
            pad: false,
            tracer: Tracer::disabled(),
            lint: LintPolicy::default(),
        }
    }

    /// Attaches a simulated-time tracer to the functional run (see
    /// [`CoreGroup::set_tracer`]): per-CPE DMA/kernel spans and
    /// per-mesh-link broadcast spans land on it, exportable as a
    /// Chrome trace afterwards.
    pub fn tracer(mut self, t: Tracer) -> Self {
        self.tracer = t;
        self
    }

    /// Enables automatic zero padding: dimensions that are not
    /// multiples of the block factors are rounded up (see
    /// [`crate::padding`]), the aligned kernel runs, and the original
    /// window is returned — the MPE-side glue a production deployment
    /// would add around the paper's aligned-only kernel.
    pub fn pad(mut self, pad: bool) -> Self {
        self.pad = pad;
        self
    }

    /// Overrides the blocking of the data-sharing variants.
    pub fn params(mut self, p: BlockingParams) -> Self {
        self.params = Some(p);
        self
    }

    /// Overrides the blocking of the RAW baseline.
    pub fn raw_params(mut self, p: RawParams) -> Self {
        self.raw_params = Some(p);
        self
    }

    /// Sets the lint-on-build policy (`sw-lint` over the plan's kernel
    /// streams before execution). Defaults to [`LintPolicy::Warn`];
    /// [`LintPolicy::Deny`] turns Error-severity findings into
    /// [`DgemmError::Lint`].
    pub fn lint(mut self, policy: LintPolicy) -> Self {
        self.lint = policy;
        self
    }

    /// Runs `C = α·A·B + β·C` on a fresh simulated core group.
    pub fn run(
        &self,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        beta: f64,
        c: &mut Matrix,
    ) -> Result<DgemmReport, DgemmError> {
        let (m, k) = (a.rows(), a.cols());
        let n = b.cols();
        if b.rows() != k || c.rows() != m || c.cols() != n {
            return Err(DgemmError::BadDims(format!(
                "shape mismatch: A {m}x{k}, B {}x{n}, C {}x{}",
                b.rows(),
                c.rows(),
                c.cols()
            )));
        }
        if self.pad {
            let plan = self.pad_plan(m, n, k)?;
            if !plan.is_identity() {
                let (pm, pn, pk) = plan.padded;
                let pa = PadPlan::embed(a, pm, pk);
                let pb = PadPlan::embed(b, pk, pn);
                let mut pc = PadPlan::embed(c, pm, pn);
                let inner = DgemmRunner {
                    pad: false,
                    ..self.clone()
                };
                let report = inner.run(alpha, &pa, &pb, beta, &mut pc)?;
                *c = PadPlan::extract(&pc, m, n);
                return Ok(report);
            }
        }
        let mut cg = CoreGroup::new();
        cg.set_tracer(self.tracer.clone());
        let io = GemmIo {
            a: cg.mem.install(a.clone())?,
            b: cg.mem.install(b.clone())?,
            c: cg.mem.install(c.clone())?,
        };
        let report = match self.variant {
            Variant::Raw => {
                let rp = self
                    .raw_params
                    .map_or_else(|| pick_raw_params(m, n, k), Ok)?;
                if self.lint != LintPolicy::Off {
                    lint::enforce(self.lint, &lint::lint_raw_cached(rp))?;
                }
                let stats = run_functional_raw(&mut cg, m, n, k, rp, io, alpha, beta)?;
                DgemmReport {
                    variant: self.variant,
                    plan: None,
                    stats,
                }
            }
            v => {
                let plan = match self.params {
                    Some(p) => GemmPlan::new(m, n, k, p, v.double_buffered())?,
                    None => pick_plan(v, m, n, k)?,
                };
                if self.lint != LintPolicy::Off {
                    lint::enforce(self.lint, &lint::lint_shared_cached(v, &plan.params))?;
                }
                let stats = run_functional(&mut cg, &plan, v.mapping(), io, alpha, beta)?;
                DgemmReport {
                    variant: self.variant,
                    plan: Some(plan),
                    stats,
                }
            }
        };
        *c = cg.mem.extract(io.c)?;
        Ok(report)
    }
}

/// Full BLAS-style interface with transposition operators:
/// `C = α·op(A)·op(B) + β·C`.
///
/// The paper implements the non-transposed case only; the kernel's
/// column-major blocking assumes it. Like a real deployment, the
/// transposed cases are handled by MPE-side packing: the operand is
/// transposed into a temporary before the aligned kernel runs. The
/// packing cost is host-side and does not perturb the simulated
/// statistics.
#[allow(clippy::too_many_arguments)] // BLAS dgemm signature
pub fn dgemm_ex(
    variant: Variant,
    opa: Op,
    opb: Op,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) -> Result<DgemmReport, DgemmError> {
    let transpose = |m: &Matrix| Matrix::from_fn(m.cols(), m.rows(), |r, c| m.get(c, r));
    let at;
    let bt;
    let a_eff = match opa {
        Op::NoTrans => a,
        Op::Trans => {
            at = transpose(a);
            &at
        }
    };
    let b_eff = match opb {
        Op::NoTrans => b,
        Op::Trans => {
            bt = transpose(b);
            &bt
        }
    };
    DgemmRunner::new(variant)
        .pad(true)
        .run(alpha, a_eff, b_eff, beta, c)
}

/// One-call DGEMM with automatic blocking: tries the paper's
/// production blocking first, then the test-scale blocking for small
/// problems.
pub fn dgemm(
    variant: Variant,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) -> Result<DgemmReport, DgemmError> {
    DgemmRunner::new(variant).run(alpha, a, b, beta, c)
}

impl DgemmRunner {
    /// Chooses the padding target: the explicitly-set blocking, or the
    /// automatic candidate with the least padded overhead.
    fn pad_plan(&self, m: usize, n: usize, k: usize) -> Result<PadPlan, DgemmError> {
        if self.variant == Variant::Raw {
            let candidates = match self.raw_params {
                Some(p) => vec![p],
                None => vec![RawParams::paper(), RawParams::test_small()],
            };
            let mut best: Option<PadPlan> = None;
            for p in candidates {
                p.validate()?;
                let plan = PadPlan::new(m, n, k, 8 * p.pm, 8 * p.pn, p.kc)?;
                if best.as_ref().is_none_or(|b| plan.overhead() < b.overhead()) {
                    best = Some(plan);
                }
            }
            Ok(best.expect("at least one candidate"))
        } else {
            let candidates = match self.params {
                Some(p) => vec![p],
                None => vec![self.variant.paper_params(), self.variant.test_params()],
            };
            let mut best: Option<PadPlan> = None;
            for p in candidates {
                p.validate(self.variant.double_buffered())?;
                let plan = PadPlan::new(m, n, k, p.bm(), p.bn(), p.bk())?;
                if best.as_ref().is_none_or(|b| plan.overhead() < b.overhead()) {
                    best = Some(plan);
                }
            }
            Ok(best.expect("at least one candidate"))
        }
    }
}

fn pick_plan(v: Variant, m: usize, n: usize, k: usize) -> Result<GemmPlan, DgemmError> {
    let candidates = [v.paper_params(), v.test_params()];
    let mut last_err = None;
    for p in candidates {
        match GemmPlan::new(m, n, k, p, v.double_buffered()) {
            Ok(plan) => return Ok(plan),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one candidate tried"))
}

fn pick_raw_params(m: usize, n: usize, k: usize) -> Result<RawParams, DgemmError> {
    let candidates = [RawParams::paper(), RawParams::test_small()];
    let mut last_err = None;
    for p in candidates {
        match p.validate_dims(m, n, k) {
            Ok(()) => return Ok(p),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one candidate tried"))
}
