//! The public entry points.

use crate::abft::AbftPolicy;
use crate::diagnostics::{self, DiagInfo};
use crate::error::DgemmError;
use crate::lint::{self, LintPolicy};
use crate::padding::PadPlan;
use crate::params::BlockingParams;
use crate::plan::GemmPlan;
use crate::tuner::{self, TunePolicy};
use crate::variants::raw::{run_functional_raw, RawParams};
use crate::variants::resilient::{run_resilient, ResilienceCfg};
use crate::variants::shared::{run_functional, GemmIo};
use crate::variants::Variant;
use crate::Matrix;
use std::time::Duration;
use sw_faults::{FaultInjector, FaultSpec, FaultStats};
use sw_isa::EngineBackend;
use sw_sim::{CancelToken, CoreGroup, MeshPath, MeshTransport, RunStats, Tracer};

/// Per-block runs the resilient path executes (first + recoveries)
/// before an uncorrectable block surfaces as an error.
const MAX_BLOCK_ATTEMPTS: u32 = 4;

/// Transposition operator of a BLAS GEMM operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the operand's transpose.
    Trans,
}

impl Op {
    /// Effective (rows, cols) of an operand under this op.
    pub fn dims(self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            Op::NoTrans => (rows, cols),
            Op::Trans => (cols, rows),
        }
    }
}

/// What a functional run returns alongside the updated C matrix.
#[derive(Debug, Clone)]
pub struct DgemmReport {
    /// The variant that ran.
    pub variant: Variant,
    /// The validated plan (None for RAW, which has its own blocking).
    pub plan: Option<GemmPlan>,
    /// DMA / mesh traffic and wall time of the simulated run (every
    /// attempt's traffic, on the resilient path).
    pub stats: RunStats,
    /// Injection/recovery tallies when a fault plan was installed;
    /// `None` when the run had no injector.
    pub faults: Option<FaultStats>,
}

/// Configurable functional runner.
///
/// ```
/// use sw_dgemm::{DgemmRunner, Variant, gen};
///
/// let a = gen::random_matrix(128, 128, 1);
/// let b = gen::random_matrix(128, 64, 2);
/// let mut c = gen::random_matrix(128, 64, 3);
/// let report = DgemmRunner::new(Variant::Sched)
///     .params(sw_dgemm::BlockingParams::test_small())
///     .run(1.5, &a, &b, 0.5, &mut c)
///     .unwrap();
/// assert_eq!(report.variant, Variant::Sched);
/// ```
#[derive(Debug, Clone)]
pub struct DgemmRunner {
    variant: Variant,
    params: Option<BlockingParams>,
    raw_params: Option<RawParams>,
    pad: bool,
    tracer: Tracer,
    lint: LintPolicy,
    faults: Option<FaultSpec>,
    abft: AbftPolicy,
    degrade: bool,
    mesh_timeout: Option<Duration>,
    mesh_transport: MeshTransport,
    mesh_path: MeshPath,
    engine_backend: EngineBackend,
    cancel: Option<CancelToken>,
    diag_tag: Option<String>,
    tune: TunePolicy,
}

impl DgemmRunner {
    /// A runner for the given variant with automatic blocking choice.
    pub fn new(variant: Variant) -> Self {
        DgemmRunner {
            variant,
            params: None,
            raw_params: None,
            pad: false,
            tracer: Tracer::disabled(),
            lint: LintPolicy::default(),
            faults: None,
            abft: AbftPolicy::Off,
            degrade: true,
            mesh_timeout: None,
            mesh_transport: MeshTransport::default(),
            mesh_path: MeshPath::default(),
            engine_backend: EngineBackend::default(),
            cancel: None,
            diag_tag: None,
            tune: TunePolicy::Off,
        }
    }

    /// Sets the blocking-resolution policy for calls that did not pin
    /// [`Self::params`]: [`TunePolicy::CacheOnly`] consults the
    /// persistent tune cache, [`TunePolicy::Search`] additionally runs
    /// the staged autotuner on a miss and persists the winner. The
    /// default ([`TunePolicy::Off`]) keeps the legacy paper-then-test
    /// candidate list. A tuned blocking is used only when it divides
    /// the problem exactly; otherwise the legacy list is the fallback.
    pub fn tune(mut self, policy: TunePolicy) -> Self {
        self.tune = policy;
        self
    }

    /// Installs a cooperative cancellation token for the run. Firing
    /// the token (from any thread — a deadline watchdog, a service's
    /// shutdown path) poisons the run's barriers so the core group is
    /// freed promptly, and the run returns
    /// [`DgemmError::Cancelled`] with the token's reason. Compose with
    /// [`Self::mesh_timeout`] when enforcing deadlines: mesh-blocked
    /// CPEs are bounded by the deadlock fuse, not the barrier poison.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Tags any diagnostics bundle this run emits with a caller
    /// discriminator (e.g. a request id), making concurrent failures
    /// attributable and their filenames collision-proof.
    pub fn diag_tag(mut self, tag: impl Into<String>) -> Self {
        self.diag_tag = Some(tag.into());
        self
    }

    /// Attaches a simulated-time tracer to the functional run (see
    /// [`CoreGroup::set_tracer`]): per-CPE DMA/kernel spans and
    /// per-mesh-link broadcast spans land on it, exportable as a
    /// Chrome trace afterwards.
    pub fn tracer(mut self, t: Tracer) -> Self {
        self.tracer = t;
        self
    }

    /// Enables automatic zero padding: dimensions that are not
    /// multiples of the block factors are rounded up (see
    /// [`crate::padding`]), the aligned kernel runs, and the original
    /// window is returned — the MPE-side glue a production deployment
    /// would add around the paper's aligned-only kernel.
    pub fn pad(mut self, pad: bool) -> Self {
        self.pad = pad;
        self
    }

    /// Overrides the blocking of the data-sharing variants.
    pub fn params(mut self, p: BlockingParams) -> Self {
        self.params = Some(p);
        self
    }

    /// Overrides the blocking of the RAW baseline.
    pub fn raw_params(mut self, p: RawParams) -> Self {
        self.raw_params = Some(p);
        self
    }

    /// Sets the lint-on-build policy (`sw-lint` over the plan's kernel
    /// streams before execution). Defaults to [`LintPolicy::Warn`];
    /// [`LintPolicy::Deny`] turns Error-severity findings into
    /// [`DgemmError::Lint`].
    pub fn lint(mut self, policy: LintPolicy) -> Self {
        self.lint = policy;
        self
    }

    /// Installs a deterministic fault plan. The run switches to the
    /// resilient per-CG-block executor (data-sharing variants only;
    /// RAW has no recovery machinery and is rejected) and the report
    /// carries a [`FaultStats`] snapshot.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Sets the ABFT checksum policy (default [`AbftPolicy::Off`]).
    /// Any policy other than `Off` also routes the run through the
    /// resilient per-block executor.
    pub fn abft(mut self, policy: AbftPolicy) -> Self {
        self.abft = policy;
        self
    }

    /// Whether a CPE that exhausts its DMA retry budget is marked
    /// failed and its tiles remapped onto the surviving grid (default
    /// `true`). With `false` the exhaustion surfaces as the structured
    /// [`DgemmError::Mem`] error instead.
    pub fn degrade(mut self, degrade: bool) -> Self {
        self.degrade = degrade;
        self
    }

    /// Shortens the mesh deadlock fuse (how long a blocked broadcast
    /// or starved receive waits before the run aborts with
    /// [`DgemmError::MeshDeadlock`]). Tests of wedge scenarios set
    /// this to keep failure paths fast.
    pub fn mesh_timeout(mut self, timeout: Duration) -> Self {
        self.mesh_timeout = Some(timeout);
        self
    }

    /// Selects the mesh transport (default [`MeshTransport::Ring`],
    /// the lock-free SPSC fast path; [`MeshTransport::Fallback`] is
    /// the Mutex-channel baseline `mesh_bench` compares against).
    pub fn mesh_transport(mut self, transport: MeshTransport) -> Self {
        self.mesh_transport = transport;
        self
    }

    /// Selects how strip steps drive the mesh (default
    /// [`MeshPath::Bulk`], batched word-groups; [`MeshPath::Word`]
    /// keeps the historical one-call-per-word path for equivalence
    /// testing and benchmarking).
    pub fn mesh_path(mut self, path: MeshPath) -> Self {
        self.mesh_path = path;
        self
    }

    /// Selects the kernel execution engine (default
    /// [`EngineBackend::Decoded`]). All backends produce bitwise
    /// identical results and reports — `Batched` fuses adjacent
    /// same-opcode runs into wide micro-ops, `Compiled` replays
    /// trace-compiled hot kernels — so this only trades host wall
    /// time.
    pub fn engine_backend(mut self, backend: EngineBackend) -> Self {
        self.engine_backend = backend;
        self
    }

    /// Runs `C = α·A·B + β·C` on a fresh simulated core group.
    pub fn run(
        &self,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        beta: f64,
        c: &mut Matrix,
    ) -> Result<DgemmReport, DgemmError> {
        let mut cg = CoreGroup::new();
        self.run_on(&mut cg, alpha, a, b, beta, c)
    }

    /// Runs `C = α·A·B + β·C` on a caller-owned core group. The
    /// operands are installed for the run and removed afterwards —
    /// success or failure — so the same group can run further DGEMMs,
    /// including after a structured failure such as
    /// [`DgemmError::MeshDeadlock`] (the persistent CPE pool and a
    /// fresh per-run mesh make recovery a non-event).
    pub fn run_on(
        &self,
        cg: &mut CoreGroup,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        beta: f64,
        c: &mut Matrix,
    ) -> Result<DgemmReport, DgemmError> {
        let (m, k) = (a.rows(), a.cols());
        let n = b.cols();
        if b.rows() != k || c.rows() != m || c.cols() != n {
            return Err(DgemmError::BadDims(format!(
                "shape mismatch: A {m}x{k}, B {}x{n}, C {}x{}",
                b.rows(),
                c.rows(),
                c.cols()
            )));
        }
        if self.pad {
            let plan = self.pad_plan(m, n, k)?;
            if !plan.is_identity() {
                let (pm, pn, pk) = plan.padded;
                let pa = PadPlan::embed(a, pm, pk);
                let pb = PadPlan::embed(b, pk, pn);
                let mut pc = PadPlan::embed(c, pm, pn);
                let inner = DgemmRunner {
                    pad: false,
                    ..self.clone()
                };
                let report = inner.run_on(cg, alpha, &pa, &pb, beta, &mut pc)?;
                *c = PadPlan::extract(&pc, m, n);
                return Ok(report);
            }
        }
        cg.set_tracer(self.tracer.clone());
        if let Some(t) = self.mesh_timeout {
            cg.set_mesh_timeout(t);
        }
        cg.set_mesh_transport(self.mesh_transport);
        cg.set_mesh_path(self.mesh_path);
        cg.set_engine_backend(self.engine_backend);
        cg.set_cancel_token(self.cancel.clone());
        // A fresh black box per dispatch: the recorder's rings, clocks
        // and busy ledgers cover exactly this run, so a bundle emitted
        // on failure is not polluted by earlier runs on the same group.
        cg.flight().reset();
        let ia = cg.mem.install(a.clone())?;
        let ib = match cg.mem.install(b.clone()) {
            Ok(id) => id,
            Err(e) => {
                let _ = cg.mem.remove(ia);
                return Err(e.into());
            }
        };
        let ic = match cg.mem.install(c.clone()) {
            Ok(id) => id,
            Err(e) => {
                let _ = cg.mem.remove(ia);
                let _ = cg.mem.remove(ib);
                return Err(e.into());
            }
        };
        let io = GemmIo {
            a: ia,
            b: ib,
            c: ic,
        };
        let mut diag = DiagInfo {
            tag: self.diag_tag.clone(),
            ..DiagInfo::default()
        };
        let result = self
            .dispatch(cg, io, m, n, k, alpha, beta, &mut diag)
            .and_then(|report| Ok((report, cg.mem.extract(io.c)?)));
        let _ = cg.mem.remove(io.a);
        let _ = cg.mem.remove(io.b);
        let _ = cg.mem.remove(io.c);
        cg.set_cancel_token(None);
        match result {
            Ok((report, out)) => {
                *c = out;
                Ok(report)
            }
            Err(err) => {
                // Post-mortem: serialize the black box into a
                // diagnostics bundle. Best-effort — the run's own
                // error always wins over any emission problem.
                diagnostics::emit_on_error(cg, &err, self.variant, (m, n, k), &diag);
                Err(err)
            }
        }
    }

    /// Variant dispatch over installed operands: fast path, or the
    /// resilient per-block executor when a fault plan or an ABFT
    /// policy is set.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        cg: &mut CoreGroup,
        io: GemmIo,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        beta: f64,
        diag: &mut DiagInfo,
    ) -> Result<DgemmReport, DgemmError> {
        let resilient = self.faults.is_some() || self.abft != AbftPolicy::Off;
        match self.variant {
            Variant::Raw => {
                if resilient {
                    return Err(DgemmError::BadParams(
                        "fault injection and ABFT require a data-sharing variant \
                         (PE/ROW/DB/SCHED); RAW has no recovery machinery"
                            .to_string(),
                    ));
                }
                let rp = self
                    .raw_params
                    .map_or_else(|| pick_raw_params(m, n, k), Ok)?;
                if self.lint != LintPolicy::Off {
                    lint::enforce(self.lint, &lint::lint_raw_cached(rp))?;
                }
                let stats = run_functional_raw(cg, m, n, k, rp, io, alpha, beta)?;
                Ok(DgemmReport {
                    variant: self.variant,
                    plan: None,
                    stats,
                    faults: None,
                })
            }
            v => {
                let plan = match self.params {
                    Some(p) => GemmPlan::new(m, n, k, p, v.double_buffered())?,
                    None => {
                        let tuned = tuner::resolve(
                            self.tune,
                            v,
                            m,
                            n,
                            k,
                            self.mesh_transport,
                            self.engine_backend,
                        )
                        .and_then(|p| GemmPlan::new(m, n, k, p, v.double_buffered()).ok());
                        match tuned {
                            Some(plan) => plan,
                            None => pick_plan(v, m, n, k)?,
                        }
                    }
                };
                diag.plan = Some(plan);
                if self.lint != LintPolicy::Off {
                    lint::enforce(self.lint, &lint::lint_shared_cached(v, &plan.params))?;
                }
                if !resilient {
                    let stats = run_functional(cg, &plan, v.mapping(), io, alpha, beta)?;
                    return Ok(DgemmReport {
                        variant: self.variant,
                        plan: Some(plan),
                        stats,
                        faults: None,
                    });
                }
                let injector = self.faults.map(FaultInjector::new);
                cg.set_fault_injector(injector.clone());
                let cfg = ResilienceCfg {
                    injector: injector.clone(),
                    abft: self.abft,
                    degrade: self.degrade,
                    max_attempts: MAX_BLOCK_ATTEMPTS,
                };
                let res = run_resilient(cg, &plan, v.mapping(), io, alpha, beta, &cfg);
                cg.set_fault_injector(None);
                // Counters are snapshotted and published even when the
                // run failed — the failure path is exactly where the
                // fault telemetry matters.
                let faults = injector.as_ref().map(|i| i.stats());
                diag.faults = faults;
                if let Some(fs) = &faults {
                    fs.publish(sw_probe::metrics::global());
                }
                Ok(DgemmReport {
                    variant: self.variant,
                    plan: Some(plan),
                    stats: res?,
                    faults,
                })
            }
        }
    }
}

/// Full BLAS-style interface with transposition operators:
/// `C = α·op(A)·op(B) + β·C`.
///
/// The paper implements the non-transposed case only; the kernel's
/// column-major blocking assumes it. Like a real deployment, the
/// transposed cases are handled by MPE-side packing: the operand is
/// transposed into a temporary before the aligned kernel runs. The
/// packing cost is host-side and does not perturb the simulated
/// statistics.
#[allow(clippy::too_many_arguments)] // BLAS dgemm signature
pub fn dgemm_ex(
    variant: Variant,
    opa: Op,
    opb: Op,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) -> Result<DgemmReport, DgemmError> {
    let transpose = |m: &Matrix| Matrix::from_fn(m.cols(), m.rows(), |r, c| m.get(c, r));
    let at;
    let bt;
    let a_eff = match opa {
        Op::NoTrans => a,
        Op::Trans => {
            at = transpose(a);
            &at
        }
    };
    let b_eff = match opb {
        Op::NoTrans => b,
        Op::Trans => {
            bt = transpose(b);
            &bt
        }
    };
    DgemmRunner::new(variant)
        .pad(true)
        .run(alpha, a_eff, b_eff, beta, c)
}

/// One-call DGEMM with automatic blocking: tries the paper's
/// production blocking first, then the test-scale blocking for small
/// problems.
pub fn dgemm(
    variant: Variant,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) -> Result<DgemmReport, DgemmError> {
    DgemmRunner::new(variant).run(alpha, a, b, beta, c)
}

impl DgemmRunner {
    /// Chooses the padding target: the explicitly-set blocking, or the
    /// automatic candidate with the least padded overhead.
    fn pad_plan(&self, m: usize, n: usize, k: usize) -> Result<PadPlan, DgemmError> {
        if self.variant == Variant::Raw {
            let candidates = match self.raw_params {
                Some(p) => vec![p],
                None => vec![RawParams::paper(), RawParams::test_small()],
            };
            let mut best: Option<PadPlan> = None;
            for p in candidates {
                p.validate()?;
                let plan = PadPlan::new(m, n, k, 8 * p.pm, 8 * p.pn, p.kc)?;
                if best.as_ref().is_none_or(|b| plan.overhead() < b.overhead()) {
                    best = Some(plan);
                }
            }
            Ok(best.expect("at least one candidate"))
        } else {
            let candidates = match self.params {
                Some(p) => vec![p],
                None => vec![self.variant.paper_params(), self.variant.test_params()],
            };
            let mut best: Option<PadPlan> = None;
            for p in candidates {
                p.validate(self.variant.double_buffered())?;
                let plan = PadPlan::new(m, n, k, p.bm(), p.bn(), p.bk())?;
                if best.as_ref().is_none_or(|b| plan.overhead() < b.overhead()) {
                    best = Some(plan);
                }
            }
            Ok(best.expect("at least one candidate"))
        }
    }
}

fn pick_plan(v: Variant, m: usize, n: usize, k: usize) -> Result<GemmPlan, DgemmError> {
    let candidates = [v.paper_params(), v.test_params()];
    let mut last_err = None;
    for p in candidates {
        match GemmPlan::new(m, n, k, p, v.double_buffered()) {
            Ok(plan) => return Ok(plan),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one candidate tried"))
}

fn pick_raw_params(m: usize, n: usize, k: usize) -> Result<RawParams, DgemmError> {
    let candidates = [RawParams::paper(), RawParams::test_small()];
    let mut last_err = None;
    for p in candidates {
        match p.validate_dims(m, n, k) {
            Ok(()) => return Ok(p),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one candidate tried"))
}
