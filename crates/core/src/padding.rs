//! Arbitrary-dimension DGEMM via zero padding.
//!
//! The paper implements "the case where the dimensions of matrices are
//! the multiply of block factors"; production libraries handle the
//! rest. This module closes that gap the way the MPE-side glue of a
//! real deployment would: pad A, B and C with zeros up to the next
//! block multiples, run the aligned kernel, and extract the original
//! window.
//!
//! Zero padding is exact for GEMM: padded rows/columns of A and B
//! contribute zero products, and the padded region of C is never
//! extracted, so the visible result equals the unpadded
//! `α·A·B + β·C` — including β behaviour — to the last bit of the
//! aligned computation.

use crate::error::DgemmError;
use crate::Matrix;

/// Padded dimensions and the overhead they imply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PadPlan {
    /// Original (m, n, k).
    pub orig: (usize, usize, usize),
    /// Padded (m, n, k), multiples of the block factors.
    pub padded: (usize, usize, usize),
}

impl PadPlan {
    /// Rounds each dimension up to its block multiple.
    pub fn new(
        m: usize,
        n: usize,
        k: usize,
        bm: usize,
        bn: usize,
        bk: usize,
    ) -> Result<Self, DgemmError> {
        if m == 0 || n == 0 || k == 0 {
            return Err(DgemmError::BadDims("dimensions must be positive".into()));
        }
        Ok(PadPlan {
            orig: (m, n, k),
            padded: (
                m.next_multiple_of(bm),
                n.next_multiple_of(bn),
                k.next_multiple_of(bk),
            ),
        })
    }

    /// True when no padding is needed.
    pub fn is_identity(&self) -> bool {
        self.orig == self.padded
    }

    /// Flops of the padded problem divided by flops of the original —
    /// the wasted-work factor the caller pays for misalignment.
    pub fn overhead(&self) -> f64 {
        let (m, n, k) = self.orig;
        let (pm, pn, pk) = self.padded;
        (pm * pn * pk) as f64 / (m * n * k) as f64
    }

    /// Embeds a matrix into its zero-padded frame (`rows × cols` →
    /// `prows × pcols`).
    pub fn embed(src: &Matrix, prows: usize, pcols: usize) -> Matrix {
        assert!(prows >= src.rows() && pcols >= src.cols());
        let mut out = Matrix::zeros(prows, pcols);
        for c in 0..src.cols() {
            for r in 0..src.rows() {
                out.set(r, c, src.get(r, c));
            }
        }
        out
    }

    /// Extracts the original window from a padded matrix.
    pub fn extract(src: &Matrix, rows: usize, cols: usize) -> Matrix {
        assert!(rows <= src.rows() && cols <= src.cols());
        Matrix::from_fn(rows, cols, |r, c| src.get(r, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;

    #[test]
    fn rounding_and_identity() {
        let p = PadPlan::new(100, 64, 75, 128, 64, 128).unwrap();
        assert_eq!(p.padded, (128, 64, 128));
        assert!(!p.is_identity());
        let q = PadPlan::new(128, 64, 128, 128, 64, 128).unwrap();
        assert!(q.is_identity());
        assert_eq!(q.overhead(), 1.0);
        assert!(p.overhead() > 1.0);
    }

    #[test]
    fn embed_extract_roundtrip() {
        let m = random_matrix(10, 7, 3);
        let e = PadPlan::embed(&m, 16, 8);
        assert_eq!(e.get(9, 6), m.get(9, 6));
        assert_eq!(e.get(15, 7), 0.0);
        assert_eq!(PadPlan::extract(&e, 10, 7), m);
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(PadPlan::new(0, 1, 1, 128, 64, 128).is_err());
    }
}
