//! Algorithm-based fault tolerance (ABFT) for the blocked DGEMM.
//!
//! Classical Huang–Abraham checksums, applied per CG block by the
//! resilient runner: after a block update
//! `C_blk ← β'·C_blk + α·A_blk·B_blk` (β' = β on the first k-slab, 1
//! after), the *delta* `D = C_after − β'·C_before` must equal
//! `α·A_blk·B_blk`. Two independent checksum families over D are
//! verified against reference sums recomputed from the pristine
//! main-memory operands:
//!
//! * **column checksums** — `eᵀ·D` vs `α·(eᵀ·A_blk)·B_blk`, which
//!   localizes corruption to a block column;
//! * **row checksums** — `D·e` vs `α·A_blk·(B_blk·e)`, which localizes
//!   it to a block row.
//!
//! Because the reference sums come from main memory — not from any LDM
//! image a CPE fetched — corruption of *any* operand a CPE consumed
//! (A, B, or the C base it β-scaled) perturbs D and is caught, not
//! just corruption of the written-back C.
//!
//! The comparison tolerance is scaled from a checksum of absolute
//! values (the attainable magnitude of rounding noise for the actual
//! data), so it adapts to conditioning instead of hard-coding an
//! absolute epsilon. The compare is NaN-safe: a NaN residual — e.g. an
//! exponent-bit flip that produced an Inf and then Inf−Inf — counts as
//! a mismatch rather than vacuously passing.

use crate::plan::GemmPlan;
use crate::variants::shared::GemmIo;
use sw_mem::{MainMemory, MemError};

/// Whether and how the resilient runner uses ABFT checksums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AbftPolicy {
    /// No checksum work at all.
    #[default]
    Off,
    /// Verify after every CG block; a mismatch is surfaced as
    /// [`crate::DgemmError::AbftMismatch`] without recomputation.
    Detect,
    /// Verify after every CG block; on mismatch, restore the block's C
    /// snapshot and recompute (fresh fault draws per attempt) within
    /// the runner's attempt budget before giving up.
    Correct,
}

/// Multiplier on the absolute-value checksum that sets the mismatch
/// threshold: `tau = ABFT_TOL_FACTOR · eps · (bm + bk + bn) · bound`.
/// Generous against FMA-vs-separate rounding differences between the
/// kernel and the host-side checksum, yet orders of magnitude below
/// the perturbation of a single high-mantissa/exponent/sign bit flip.
const ABFT_TOL_FACTOR: f64 = 32.0;

/// Verifies the row and column checksums of CG block `(i, j, l)`
/// against main memory. `c_before` is the column-major snapshot of the
/// `bm×bn` C block taken before the block ran. Returns `Ok(None)` when
/// both families balance, `Ok(Some(detail))` naming the worst
/// violation otherwise.
#[allow(clippy::too_many_arguments)] // block coordinates + scalars, as the runner has them
pub fn verify_block(
    mem: &MainMemory,
    plan: &GemmPlan,
    io: GemmIo,
    i: usize,
    j: usize,
    l: usize,
    alpha: f64,
    beta: f64,
    c_before: &[f64],
) -> Result<Option<String>, MemError> {
    let p = &plan.params;
    let (bm, bn, bk) = (p.bm(), p.bn(), p.bk());
    let a = mem.read_region(io.a, i * bm, l * bk, bm, bk)?;
    let b = mem.read_region(io.b, l * bk, j * bn, bk, bn)?;
    let c_after = mem.read_region(io.c, i * bm, j * bn, bm, bn)?;
    debug_assert_eq!(c_before.len(), bm * bn);
    let beta_eff = if l == 0 { beta } else { 1.0 };
    let scale = ABFT_TOL_FACTOR * f64::EPSILON * (bm + bn + bk) as f64;

    // eᵀ·A (and Σ_r |A[r,k]| for the tolerance), one pass over A.
    let mut col_a = vec![0.0f64; bk];
    let mut col_a_abs = vec![0.0f64; bk];
    for kk in 0..bk {
        let (mut s, mut sa) = (0.0, 0.0);
        for r in 0..bm {
            let v = a[kk * bm + r];
            s += v;
            sa += v.abs();
        }
        col_a[kk] = s;
        col_a_abs[kk] = sa;
    }
    // B·e (and Σ_j |B[k,j]|), one pass over B.
    let mut row_b = vec![0.0f64; bk];
    let mut row_b_abs = vec![0.0f64; bk];
    for jc in 0..bn {
        for kk in 0..bk {
            let v = b[jc * bk + kk];
            row_b[kk] += v;
            row_b_abs[kk] += v.abs();
        }
    }

    // Column family: for each block column, eᵀ·D vs α·(eᵀ·A)·B.
    for jc in 0..bn {
        let (mut got, mut got_abs) = (0.0, 0.0);
        for r in 0..bm {
            let idx = jc * bm + r;
            let d = c_after[idx] - beta_eff * c_before[idx];
            got += d;
            got_abs += c_after[idx].abs() + (beta_eff * c_before[idx]).abs();
        }
        let (mut want, mut want_abs) = (0.0, 0.0);
        for kk in 0..bk {
            let v = b[jc * bk + kk];
            want += col_a[kk] * v;
            want_abs += col_a_abs[kk] * v.abs();
        }
        want *= alpha;
        let tau = scale * (alpha.abs() * want_abs + got_abs);
        let diff = (got - want).abs();
        if diff.is_nan() || diff > tau {
            return Ok(Some(format!(
                "column checksum {jc}: |eT·D − α·(eT·A)·B| = {diff:e} exceeds tolerance {tau:e}"
            )));
        }
    }

    // Row family: for each block row, D·e vs α·A·(B·e).
    let mut got = vec![0.0f64; bm];
    let mut got_abs = vec![0.0f64; bm];
    for jc in 0..bn {
        for r in 0..bm {
            let idx = jc * bm + r;
            got[r] += c_after[idx] - beta_eff * c_before[idx];
            got_abs[r] += c_after[idx].abs() + (beta_eff * c_before[idx]).abs();
        }
    }
    for r in 0..bm {
        let (mut want, mut want_abs) = (0.0, 0.0);
        for kk in 0..bk {
            let v = a[kk * bm + r];
            want += v * row_b[kk];
            want_abs += v.abs() * row_b_abs[kk];
        }
        want *= alpha;
        let tau = scale * (alpha.abs() * want_abs + got_abs[r]);
        let diff = (got[r] - want).abs();
        if diff.is_nan() || diff > tau {
            return Ok(Some(format!(
                "row checksum {r}: |D·e − α·A·(B·e)| = {diff:e} exceeds tolerance {tau:e}"
            )));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::params::BlockingParams;
    use crate::reference::dgemm_chunked_fma;
    use sw_mem::HostMatrix;

    /// Installs a 1-CG-block problem, runs the reference update on the
    /// host, and returns everything `verify_block` needs.
    fn block_fixture() -> (MainMemory, GemmPlan, GemmIo, Vec<f64>, HostMatrix) {
        let p = BlockingParams::test_small();
        let (m, n, k) = (p.bm(), p.bn(), p.bk());
        let plan = GemmPlan::new(m, n, k, p, false).unwrap();
        let a = gen::random_matrix(m, k, 11);
        let b = gen::random_matrix(k, n, 12);
        let c0 = gen::random_matrix(m, n, 13);
        let mut c = c0.clone();
        dgemm_chunked_fma(1.5, &a, &b, 0.5, &mut c, p.pk);
        let mut mem = MainMemory::new();
        let io = GemmIo {
            a: mem.install(a).unwrap(),
            b: mem.install(b).unwrap(),
            c: mem.install(c).unwrap(),
        };
        let before = c0.as_slice().to_vec();
        (mem, plan, io, before, c0)
    }

    #[test]
    fn clean_block_balances() {
        let (mem, plan, io, before, _) = block_fixture();
        let v = verify_block(&mem, &plan, io, 0, 0, 0, 1.5, 0.5, &before).unwrap();
        assert_eq!(v, None, "reference update must pass both families");
    }

    #[test]
    fn bit_flip_in_c_is_caught() {
        let (mem, plan, io, before, _) = block_fixture();
        // Flip a high mantissa bit of one C element in main memory.
        let p = &plan.params;
        let mut img = mem.read_region(io.c, 0, 0, p.bm(), p.bn()).unwrap();
        img[7] = f64::from_bits(img[7].to_bits() ^ (1u64 << 40));
        mem.write_region(io.c, 0, 0, p.bm(), p.bn(), &img).unwrap();
        let v = verify_block(&mem, &plan, io, 0, 0, 0, 1.5, 0.5, &before).unwrap();
        assert!(v.is_some(), "a flipped C element must trip a checksum");
    }

    #[test]
    fn nan_in_c_is_caught() {
        let (mem, plan, io, before, _) = block_fixture();
        let p = &plan.params;
        let mut img = mem.read_region(io.c, 0, 0, p.bm(), p.bn()).unwrap();
        img[0] = f64::NAN;
        mem.write_region(io.c, 0, 0, p.bm(), p.bn(), &img).unwrap();
        let v = verify_block(&mem, &plan, io, 0, 0, 0, 1.5, 0.5, &before).unwrap();
        assert!(v.is_some(), "NaN residuals must not vacuously pass");
    }
}
