//! Problem/blocking plan validation.

use crate::error::DgemmError;
use crate::params::BlockingParams;

/// A validated DGEMM problem: dimensions plus blocking, with the
/// CG-level grid sizes of Algorithm 1 precomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmPlan {
    /// Rows of A and C.
    pub m: usize,
    /// Columns of B and C.
    pub n: usize,
    /// Columns of A / rows of B.
    pub k: usize,
    /// Thread/register blocking.
    pub params: BlockingParams,
    /// Whether A and C are double-buffered in LDM (Algorithm 2).
    pub double_buffered: bool,
    /// CG-block grid rows, `M = m / bM`.
    pub grid_m: usize,
    /// CG-block grid columns, `N = n / bN`.
    pub grid_n: usize,
    /// CG-block grid depth, `K = k / bK`.
    pub grid_k: usize,
}

impl GemmPlan {
    /// Validates parameters and dimensions (the paper implements the
    /// case where dimensions are multiples of the block factors).
    pub fn new(
        m: usize,
        n: usize,
        k: usize,
        params: BlockingParams,
        double_buffered: bool,
    ) -> Result<Self, DgemmError> {
        params.validate(double_buffered)?;
        if m == 0 || n == 0 || k == 0 {
            return Err(DgemmError::BadDims("dimensions must be positive".into()));
        }
        let (bm, bn, bk) = (params.bm(), params.bn(), params.bk());
        if !m.is_multiple_of(bm) || !n.is_multiple_of(bn) || !k.is_multiple_of(bk) {
            return Err(DgemmError::BadDims(format!(
                "dimensions {m}x{n}x{k} must be multiples of the CG blocks {bm}x{bn}x{bk}"
            )));
        }
        Ok(GemmPlan {
            m,
            n,
            k,
            params,
            double_buffered,
            grid_m: m / bm,
            grid_n: n / bn,
            grid_k: k / bk,
        })
    }

    /// Flops of the full product (2·m·n·k).
    pub fn flops(&self) -> u64 {
        sw_arch::time::gemm_flops(self.m, self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_plan_grid() {
        let p = GemmPlan::new(256, 128, 256, BlockingParams::test_small(), true).unwrap();
        assert_eq!((p.grid_m, p.grid_n, p.grid_k), (2, 2, 2));
        assert_eq!(p.flops(), 2 * 256 * 128 * 256);
    }

    #[test]
    fn misaligned_dims_rejected() {
        let e = GemmPlan::new(100, 64, 128, BlockingParams::test_small(), false).unwrap_err();
        assert!(matches!(e, DgemmError::BadDims(_)));
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(GemmPlan::new(0, 64, 128, BlockingParams::test_small(), false).is_err());
    }

    #[test]
    fn param_errors_propagate() {
        let bad = BlockingParams {
            pm: 8,
            ..BlockingParams::test_small()
        };
        assert!(matches!(
            GemmPlan::new(128, 64, 128, bad, false),
            Err(DgemmError::BadParams(_))
        ));
    }

    #[test]
    fn paper_production_plan() {
        let p = GemmPlan::new(9216, 9216, 9216, BlockingParams::paper_double(), true).unwrap();
        assert_eq!((p.grid_m, p.grid_n, p.grid_k), (72, 36, 12));
    }
}
