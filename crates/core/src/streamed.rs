//! Functional strip-step execution at mesh-word granularity.
//!
//! [`strip_step`] is the plain-Rust twin of the ISA micro-kernel
//! (`sw_isa::kernels`): the same tile order (16×4 register tiles over
//! the thread block), the same per-k traffic (4 A words + 4 splatted B
//! scalars per tile-iteration, re-broadcast per tile exactly as
//! Algorithm 3 does), and the same FMA accumulation order — so its
//! results are bitwise-identical to the ISA kernel and to
//! [`crate::reference::dgemm_chunked_fma`].
//!
//! Received operands are consumed *from the mesh stream directly into
//! registers* (stack arrays) and never staged in LDM, mirroring the
//! hardware kernel and respecting the LDM budget of §III-C.2 (which
//! counts only the thread's own blocks).

// Register arrays are index-coupled to the instruction encoding; indexed
// loops are clearer than iterator chains here.
#![allow(clippy::needless_range_loop)]

use crate::sharing::StepRole;
use sw_arch::V256;
use sw_isa::{Net, Operand};
use sw_mem::LdmBuf;
use sw_sim::CpeCtx;

/// Executes one strip multiplication step on this CPE:
/// `C_local (pm×pn) += α · A_step (pm×pk) · B_step (pk×pn)`.
///
/// `a_own`/`b_own` are this thread's resident blocks (used and
/// broadcast when the role says so; `a_own` must be the panel for this
/// step, i.e. the thread's own A block). `c` is the LDM-resident C
/// block being accumulated.
///
/// Requires `pm == 16` (one register tile of rows), as the collective
/// scheme does.
#[allow(clippy::too_many_arguments)] // the kernel ABI: role + three panels + shape + alpha
pub fn strip_step(
    ctx: &mut CpeCtx,
    role: StepRole,
    a_own: LdmBuf,
    b_own: LdmBuf,
    c: LdmBuf,
    pm: usize,
    pn: usize,
    pk: usize,
    alpha: f64,
) {
    assert_eq!(
        pm, 16,
        "the collective scheme streams one 16-row register tile"
    );
    debug_assert_eq!(a_own.len(), pm * pk);
    debug_assert_eq!(b_own.len(), pk * pn);
    debug_assert_eq!(c.len(), pm * pn);

    let mut acol = [0.0f64; 16];
    let mut bvals = [0.0f64; 4];
    for j0 in (0..pn).step_by(4) {
        // Accumulators of the 16×4 register tile.
        let mut acc = [[0.0f64; 4]; 16];
        for k in 0..pk {
            // --- A column of this k (4 mesh words). ---
            // The bulk path moves the same 4-word group per episode the
            // per-word path moves in 4 calls — same words, same
            // per-word `send_idx` consumption (so fault-injector drop
            // decisions are identical), one batched accounting update.
            match role.a {
                Operand::Ldm | Operand::LdmBcast(_) => {
                    acol.copy_from_slice(&ctx.ldm.slice(a_own)[k * pm..k * pm + 16]);
                    if let Operand::LdmBcast(net) = role.a {
                        if ctx.mesh_bulk() {
                            bcast_panel(ctx, net, &acol);
                        } else {
                            for w in 0..4 {
                                let v = V256::load(&acol[4 * w..]);
                                bcast(ctx, net, v);
                            }
                        }
                    }
                }
                Operand::Recv(net) => {
                    if ctx.mesh_bulk() {
                        recv_panel(ctx, net, &mut acol);
                    } else {
                        for w in 0..4 {
                            recv(ctx, net).store(&mut acol[4 * w..4 * w + 4]);
                        }
                    }
                }
            }
            // --- B scalars of this k (4 splatted mesh words). ---
            match role.b {
                Operand::Ldm | Operand::LdmBcast(_) => {
                    let b = ctx.ldm.slice(b_own);
                    for (j, bv) in bvals.iter_mut().enumerate() {
                        *bv = b[(j0 + j) * pk + k];
                    }
                    if let Operand::LdmBcast(net) = role.b {
                        if ctx.mesh_bulk() {
                            let words = bvals.map(V256::splat);
                            bcast_words(ctx, net, &words);
                        } else {
                            for &bv in &bvals {
                                bcast(ctx, net, V256::splat(bv));
                            }
                        }
                    }
                }
                Operand::Recv(net) => {
                    if ctx.mesh_bulk() {
                        let mut words = [V256::ZERO; 4];
                        recv_words(ctx, net, &mut words);
                        for (bv, w) in bvals.iter_mut().zip(&words) {
                            *bv = w.0[0];
                        }
                    } else {
                        for bv in bvals.iter_mut() {
                            *bv = recv(ctx, net).0[0];
                        }
                    }
                }
            }
            // --- 16 lane-groups of FMA, the vmad order's net effect. ---
            for (r, acc_r) in acc.iter_mut().enumerate() {
                for (j, acc_rj) in acc_r.iter_mut().enumerate() {
                    *acc_rj = acol[r].mul_add(bvals[j], *acc_rj);
                }
            }
        }
        // Tile epilogue: C += α·acc, one FMA per element.
        let cs = ctx.ldm.slice_mut(c);
        for j in 0..4 {
            for r in 0..16 {
                let idx = (j0 + j) * pm + r;
                cs[idx] = acc[r][j].mul_add(alpha, cs[idx]);
            }
        }
    }
}

fn bcast(ctx: &CpeCtx, net: Net, v: V256) {
    match net {
        Net::Row => ctx.mesh_row_bcast(v),
        Net::Col => ctx.mesh_col_bcast(v),
    }
}

fn recv(ctx: &CpeCtx, net: Net) -> V256 {
    match net {
        Net::Row => ctx.mesh_getr(),
        Net::Col => ctx.mesh_getc(),
    }
}

fn bcast_panel(ctx: &CpeCtx, net: Net, panel: &[f64]) {
    match net {
        Net::Row => ctx.mesh_row_bcast_panel(panel),
        Net::Col => ctx.mesh_col_bcast_panel(panel),
    }
}

fn recv_panel(ctx: &CpeCtx, net: Net, out: &mut [f64]) {
    ctx.mesh_get_panel(net == Net::Col, out);
}

fn bcast_words(ctx: &CpeCtx, net: Net, words: &[V256]) {
    match net {
        Net::Row => ctx.mesh_row_bcast_words(words),
        Net::Col => ctx.mesh_col_bcast_words(words),
    }
}

fn recv_words(ctx: &CpeCtx, net: Net, out: &mut [V256]) {
    match net {
        Net::Row => ctx.mesh_getr_words(out),
        Net::Col => ctx.mesh_getc_words(out),
    }
}
