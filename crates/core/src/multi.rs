//! Multi-core-group DGEMM — the full SW26010 processor.
//!
//! A SW26010 has four core groups on a network-on-chip, each with its
//! own memory controller (Figure 1 of the paper); Sunway TaihuLight's
//! HPL run drives all four. This module scales the single-CG DGEMM up
//! the same way production deployments do: the n dimension (columns of
//! B and C) is split into one band per core group, and each band runs
//! the full three-level-blocked algorithm on its own CG — no inter-CG
//! communication is needed because each band's computation is
//! independent (it reads all of A, which each CG streams from its own
//! memory image).
//!
//! Functionally the bands run concurrently (one 64-thread core group
//! each); numerically the result is bitwise identical to a single-CG
//! run, because the per-element FMA order is band-local. The timing
//! estimate takes the slowest band's makespan — memory channels are
//! per-CG, so bands do not contend.

use crate::api::DgemmRunner;
use crate::error::DgemmError;
use crate::timing::{estimate, TimingReport};
use crate::variants::Variant;
use crate::Matrix;
use sw_arch::consts::PEAK_GFLOPS_CG;

/// Number of core groups on one SW26010 processor.
pub const CGS_PER_PROCESSOR: usize = 4;

/// Runs `C = α·A·B + β·C` across `cgs` core groups by column bands.
///
/// Bands are split as evenly as possible; each runs on its own
/// simulated core group with automatic padding, so any positive
/// dimensions work.
pub fn dgemm_multi_cg(
    variant: Variant,
    cgs: usize,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) -> Result<(), DgemmError> {
    if cgs == 0 || cgs > CGS_PER_PROCESSOR {
        return Err(DgemmError::BadDims(format!(
            "a SW26010 has 1..={CGS_PER_PROCESSOR} core groups, got {cgs}"
        )));
    }
    let n = b.cols();
    if b.rows() != a.cols() || c.rows() != a.rows() || c.cols() != n {
        return Err(DgemmError::BadDims("operand shapes disagree".into()));
    }
    // Column bands, as even as possible.
    let base = n / cgs;
    let extra = n % cgs;
    let mut bands = Vec::new();
    let mut j0 = 0;
    for g in 0..cgs {
        let w = base + usize::from(g < extra);
        if w > 0 {
            bands.push((j0, w));
        }
        j0 += w;
    }
    // Each band on its own core group, concurrently.
    let c_ref: &Matrix = c;
    let results: Vec<Result<(Matrix, usize, usize), DgemmError>> = std::thread::scope(|s| {
        let handles: Vec<_> = bands
            .iter()
            .map(|&(j0, w)| {
                s.spawn(move || {
                    let bb = Matrix::from_fn(b.rows(), w, |r, cc| b.get(r, j0 + cc));
                    let mut cb = Matrix::from_fn(c_ref.rows(), w, |r, cc| c_ref.get(r, j0 + cc));
                    DgemmRunner::new(variant)
                        .pad(true)
                        .run(alpha, a, &bb, beta, &mut cb)?;
                    Ok((cb, j0, w))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("core-group worker panicked"))
            .collect()
    });
    // Fail atomically: surface any band error before touching C.
    let bands_done: Vec<(Matrix, usize, usize)> = results.into_iter().collect::<Result<_, _>>()?;
    for (cb, j0, w) in bands_done {
        for cc in 0..w {
            for rr in 0..c.rows() {
                c.set(rr, j0 + cc, cb.get(rr, cc));
            }
        }
    }
    Ok(())
}

/// Timing estimate across core groups.
#[derive(Debug, Clone)]
pub struct MultiTimingReport {
    /// Core groups used.
    pub cgs: usize,
    /// Per-band single-CG reports.
    pub bands: Vec<TimingReport>,
    /// Aggregate sustained Gflops/s (total flops over the slowest
    /// band's time).
    pub gflops: f64,
    /// Fraction of the `cgs`-CG peak.
    pub efficiency: f64,
}

/// Estimates the multi-CG run at the paper's production blocking. `n`
/// must split into bands that are multiples of the variant's `bN`.
pub fn estimate_multi_cg(
    variant: Variant,
    cgs: usize,
    m: usize,
    n: usize,
    k: usize,
) -> Result<MultiTimingReport, DgemmError> {
    if cgs == 0 || cgs > CGS_PER_PROCESSOR {
        return Err(DgemmError::BadDims(format!(
            "a SW26010 has 1..={CGS_PER_PROCESSOR} core groups, got {cgs}"
        )));
    }
    if !n.is_multiple_of(cgs) {
        return Err(DgemmError::BadDims(format!(
            "n = {n} does not split over {cgs} core groups"
        )));
    }
    let band_n = n / cgs;
    let mut bands = Vec::with_capacity(cgs);
    for _ in 0..cgs {
        bands.push(estimate(variant, m, band_n, k)?);
    }
    let slowest = bands
        .iter()
        .map(|b| b.makespan_cycles)
        .max()
        .expect("at least one band");
    let secs = sw_arch::time::cycles_to_secs(slowest);
    let gflops = sw_arch::time::gflops(sw_arch::time::gemm_flops(m, n, k), secs);
    Ok(MultiTimingReport {
        cgs,
        bands,
        gflops,
        efficiency: gflops / (cgs as f64 * PEAK_GFLOPS_CG),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;
    use crate::params::BlockingParams;

    #[test]
    fn four_cg_estimate_scales() {
        let one = estimate(Variant::Sched, 9216, 9216, 9216).unwrap();
        let four = estimate_multi_cg(Variant::Sched, 4, 9216, 9216, 9216).unwrap();
        let speedup = four.gflops / one.gflops;
        assert!(
            (3.5..=4.0).contains(&speedup),
            "4-CG speedup was {speedup:.2} ({:.1} vs {:.1})",
            four.gflops,
            one.gflops
        );
        // 4 CGs at the paper's efficiency ≈ 2.8 Tflops.
        assert!(four.gflops > 2600.0, "{}", four.gflops);
        assert!(four.efficiency > 0.85);
    }

    #[test]
    fn bad_cg_counts_rejected() {
        assert!(estimate_multi_cg(Variant::Sched, 0, 9216, 9216, 9216).is_err());
        assert!(estimate_multi_cg(Variant::Sched, 5, 9216, 9216, 9216).is_err());
        assert!(estimate_multi_cg(Variant::Sched, 4, 9216, 9217, 9216).is_err());
    }

    #[test]
    fn functional_multi_cg_matches_single() {
        let (m, n, k) = (128, 128, 128);
        let a = random_matrix(m, k, 81);
        let b = random_matrix(k, n, 82);
        let c0 = random_matrix(m, n, 83);
        let mut c1 = c0.clone();
        let mut c4 = c0;
        DgemmRunner::new(Variant::Sched)
            .params(BlockingParams::test_small())
            .pad(true)
            .run(1.5, &a, &b, 0.5, &mut c1)
            .unwrap();
        dgemm_multi_cg(Variant::Sched, 4, 1.5, &a, &b, 0.5, &mut c4).unwrap();
        // Band-local k-order is identical, so bitwise equality holds.
        assert_eq!(c1, c4);
    }

    #[test]
    fn uneven_bands_handled() {
        let (m, n, k) = (128, 130, 128); // 130 columns over 4 CGs
        let a = random_matrix(m, k, 84);
        let b = random_matrix(k, n, 85);
        let c0 = random_matrix(m, n, 86);
        let mut c = c0.clone();
        dgemm_multi_cg(Variant::Db, 4, 1.0, &a, &b, 1.0, &mut c).unwrap();
        let mut expect = c0;
        crate::reference::dgemm_naive(1.0, &a, &b, 1.0, &mut expect);
        let tol = crate::reference::gemm_tolerance(&a, &b, 1.0);
        assert!(c.max_abs_diff(&expect) <= tol);
    }
}
