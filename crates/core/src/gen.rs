//! Seeded workload generation.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A `rows × cols` matrix of uniform random entries in [-1, 1),
/// reproducible from `seed`.
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_col_major(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

/// A deterministic "counting" matrix, handy for debugging layouts:
/// element (r, c) = r + c/1000.
pub fn counting_matrix(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| r as f64 + c as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = random_matrix(32, 16, 42);
        let b = random_matrix(32, 16, 42);
        assert_eq!(a, b);
        let c = random_matrix(32, 16, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn entries_in_range() {
        let a = random_matrix(64, 64, 7);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn counting_layout() {
        let m = counting_matrix(4, 3);
        assert_eq!(m.get(2, 1), 2.001);
    }
}
