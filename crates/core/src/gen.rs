//! Seeded workload generation.
//!
//! Uses a local splitmix64 generator (no external RNG dependency):
//! deterministic per seed, uniform enough for test matrices, and stable
//! across platforms and toolchains.

use crate::Matrix;

/// A tiny deterministic PRNG (splitmix64), good enough for generating
/// test workloads and property-test cases.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform f64 in [lo, hi).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform usize in [lo, hi).
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A `rows × cols` matrix of uniform random entries in [-1, 1),
/// reproducible from `seed`.
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SplitMix64::new(seed);
    Matrix::from_col_major(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.range_f64(-1.0, 1.0)).collect(),
    )
}

/// A deterministic "counting" matrix, handy for debugging layouts:
/// element (r, c) = r + c/1000.
pub fn counting_matrix(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| r as f64 + c as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = random_matrix(32, 16, 42);
        let b = random_matrix(32, 16, 42);
        assert_eq!(a, b);
        let c = random_matrix(32, 16, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn entries_in_range() {
        let a = random_matrix(64, 64, 7);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn counting_layout() {
        let m = counting_matrix(4, 3);
        assert_eq!(m.get(2, 1), 2.001);
    }

    #[test]
    fn splitmix_covers_range() {
        let mut rng = SplitMix64::new(123);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
        for _ in 0..100 {
            let u = rng.range_usize(3, 9);
            assert!((3..9).contains(&u));
        }
    }
}
