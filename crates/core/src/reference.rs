//! Host reference GEMMs.
//!
//! Three references serve three purposes:
//!
//! * [`dgemm_naive`] — a plain triple loop; the ground truth for
//!   tolerance-based comparisons.
//! * [`dgemm_chunked_fma`] — reproduces the *exact* floating-point
//!   accumulation order of the simulator variants (per element:
//!   `c ← β·c`, then for each `chunk`-deep k-segment an FMA-accumulated
//!   partial product folded in with one `c ← α·acc + c` FMA). With
//!   `chunk = pK` this is bitwise-equal to the PE/ROW/DB/SCHED
//!   variants; with `chunk = kc` to the RAW variant.
//! * [`dgemm_parallel`] — a threaded host baseline used by examples
//!   and benches for sanity-scale comparisons.

use crate::Matrix;

/// `C = α·A·B + β·C`, naive triple loop (unfused arithmetic).
pub fn dgemm_naive(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    check_dims(a, b, c);
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a.get(i, l) * b.get(l, j);
            }
            c.set(i, j, alpha * acc + beta * c.get(i, j));
        }
    }
}

/// `C = α·A·B + β·C` with the simulator variants' accumulation order;
/// bitwise-reproducible against them when `chunk` matches their depth
/// blocking (`pK` for the shared variants, `kc` for RAW).
///
/// # Panics
/// If `k` is not a multiple of `chunk`.
pub fn dgemm_chunked_fma(
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    chunk: usize,
) {
    check_dims(a, b, c);
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    assert!(
        chunk > 0 && k % chunk == 0,
        "k = {k} must be a multiple of the chunk {chunk}"
    );
    for j in 0..n {
        for i in 0..m {
            let mut cij = beta * c.get(i, j);
            for k0 in (0..k).step_by(chunk) {
                let mut acc = 0.0f64;
                for l in k0..k0 + chunk {
                    acc = a.get(i, l).mul_add(b.get(l, j), acc);
                }
                cij = acc.mul_add(alpha, cij);
            }
            c.set(i, j, cij);
        }
    }
}

/// Threaded host baseline: column-parallel naive GEMM.
pub fn dgemm_parallel(
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    threads: usize,
) {
    check_dims(a, b, c);
    assert!(threads > 0);
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let cols_per = n.div_ceil(threads);
    // Split C's storage into disjoint column bands, one per worker.
    let mut bands: Vec<&mut [f64]> = c.as_mut_slice().chunks_mut(cols_per * m).collect();
    std::thread::scope(|s| {
        for (t, band) in bands.iter_mut().enumerate() {
            let j0 = t * cols_per;
            s.spawn(move || {
                for (jj, col) in band.chunks_mut(m).enumerate() {
                    let j = j0 + jj;
                    for (i, cij) in col.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for l in 0..k {
                            acc += a.get(i, l) * b.get(l, j);
                        }
                        *cij = alpha * acc + beta * *cij;
                    }
                }
            });
        }
    });
}

/// Error bound for comparing two GEMM results: `γ · k · max|A| · max|B|
/// · ε`, a standard forward-error envelope with safety factor γ = 8.
pub fn gemm_tolerance(a: &Matrix, b: &Matrix, alpha: f64) -> f64 {
    8.0 * a.cols() as f64 * a.max_abs() * b.max_abs() * alpha.abs().max(1.0) * f64::EPSILON
}

fn check_dims(a: &Matrix, b: &Matrix, c: &Matrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions disagree");
    assert_eq!(a.rows(), c.rows(), "A/C row mismatch");
    assert_eq!(b.cols(), c.cols(), "B/C column mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;

    #[test]
    fn identity_product() {
        let a = Matrix::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        let b = random_matrix(4, 4, 1);
        let mut c = Matrix::zeros(4, 4);
        dgemm_naive(1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn alpha_beta_composition() {
        let a = random_matrix(8, 8, 2);
        let b = random_matrix(8, 8, 3);
        let mut c = random_matrix(8, 8, 4);
        let c0 = c.clone();
        dgemm_naive(0.0, &a, &b, 2.0, &mut c);
        for j in 0..8 {
            for i in 0..8 {
                assert_eq!(c.get(i, j), 2.0 * c0.get(i, j));
            }
        }
    }

    #[test]
    fn chunked_fma_close_to_naive() {
        let a = random_matrix(16, 32, 5);
        let b = random_matrix(32, 8, 6);
        let mut c1 = random_matrix(16, 8, 7);
        let mut c2 = c1.clone();
        dgemm_naive(1.5, &a, &b, 0.5, &mut c1);
        dgemm_chunked_fma(1.5, &a, &b, 0.5, &mut c2, 16);
        assert!(c1.max_abs_diff(&c2) <= gemm_tolerance(&a, &b, 1.5));
    }

    #[test]
    fn chunk_size_changes_rounding_but_not_value() {
        let a = random_matrix(8, 64, 8);
        let b = random_matrix(64, 8, 9);
        let mut c1 = Matrix::zeros(8, 8);
        let mut c2 = Matrix::zeros(8, 8);
        dgemm_chunked_fma(1.0, &a, &b, 0.0, &mut c1, 16);
        dgemm_chunked_fma(1.0, &a, &b, 0.0, &mut c2, 32);
        assert!(c1.max_abs_diff(&c2) <= gemm_tolerance(&a, &b, 1.0));
    }

    #[test]
    fn parallel_matches_naive_exactly() {
        // Same arithmetic per element, so bitwise equal.
        let a = random_matrix(32, 48, 10);
        let b = random_matrix(48, 40, 11);
        let mut c1 = random_matrix(32, 40, 12);
        let mut c2 = c1.clone();
        dgemm_naive(1.25, &a, &b, -0.5, &mut c1);
        dgemm_parallel(1.25, &a, &b, -0.5, &mut c2, 4);
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic]
    fn dim_mismatch_panics() {
        let a = Matrix::zeros(4, 5);
        let b = Matrix::zeros(4, 4);
        let mut c = Matrix::zeros(4, 4);
        dgemm_naive(1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    #[should_panic]
    fn bad_chunk_panics() {
        let a = Matrix::zeros(4, 10);
        let b = Matrix::zeros(10, 4);
        let mut c = Matrix::zeros(4, 4);
        dgemm_chunked_fma(1.0, &a, &b, 0.0, &mut c, 3);
    }
}
