//! The collective data sharing scheme (§III-B).
//!
//! A CG-level block update `δC += α·δA·δB` is performed as 8 strip
//! multiplications. At step `s` the threads holding the A and B data of
//! k-slab `s` broadcast it over the mesh; all others receive. The
//! paper classifies threads into four types per step — owning valid A
//! and B, only A, only B, or neither — and the diagonal thread is the
//! dual broadcaster.
//!
//! Which mesh dimension indexes ownership depends on the data-thread
//! mapping (§IV-A): under [`Mapping::Pe`] the A owners at step `s` are
//! mesh *column* `s` (broadcasting along rows, `vldr`/`getr`) and the B
//! owners are mesh *row* `s` (broadcasting along columns,
//! `lddec`/`getc`); under [`Mapping::Row`] the roles transpose.

use crate::mapping::Mapping;
use sw_arch::Coord;
use sw_isa::{Net, Operand};

/// The paper's four thread types at one strip step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadType {
    /// Owns valid A and valid B (the step's diagonal thread).
    Both,
    /// Owns valid A only.
    OnlyA,
    /// Owns valid B only.
    OnlyB,
    /// Owns neither; receives both.
    Neither,
}

/// How this thread sources A and B at strip step `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepRole {
    /// A operand source.
    pub a: Operand,
    /// B operand source.
    pub b: Operand,
}

impl StepRole {
    /// The paper's four-type classification of this role.
    pub fn thread_type(&self) -> ThreadType {
        match (
            matches!(self.a, Operand::LdmBcast(_)),
            matches!(self.b, Operand::LdmBcast(_)),
        ) {
            (true, true) => ThreadType::Both,
            (true, false) => ThreadType::OnlyA,
            (false, true) => ThreadType::OnlyB,
            (false, false) => ThreadType::Neither,
        }
    }
}

/// Computes this thread's role at strip step `step` under `mapping`.
pub fn step_role(mapping: Mapping, step: usize, who: Coord) -> StepRole {
    assert!(step < 8, "strip steps are 0..8");
    let (u, v) = (who.row as usize, who.col as usize);
    match mapping {
        // §III-B: A owners on column `step` broadcast along their row;
        // B owners on row `step` broadcast along their column.
        Mapping::Pe => StepRole {
            a: if v == step {
                Operand::LdmBcast(Net::Row)
            } else {
                Operand::Recv(Net::Row)
            },
            b: if u == step {
                Operand::LdmBcast(Net::Col)
            } else {
                Operand::Recv(Net::Col)
            },
        },
        // §IV-A: "A is broadcast among CPEs in the same column and B
        // among CPEs in the same row, because we map each column strip
        // to CPEs in a row."
        Mapping::Row => StepRole {
            a: if u == step {
                Operand::LdmBcast(Net::Col)
            } else {
                Operand::Recv(Net::Col)
            },
            b: if v == step {
                Operand::LdmBcast(Net::Row)
            } else {
                Operand::Recv(Net::Row)
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_mapping_roles_match_paper_example() {
        // §III-A's walk-through: in the first step, thread (2,2) gets
        // A(2,0) from thread (2,0) and B(0,2) from thread (0,2); the
        // diagonal thread of step 0 is (0,0).
        let r = step_role(Mapping::Pe, 0, Coord::new(2, 2));
        assert_eq!(r.thread_type(), ThreadType::Neither);
        let sender_a = step_role(Mapping::Pe, 0, Coord::new(2, 0));
        assert_eq!(sender_a.thread_type(), ThreadType::OnlyA);
        assert_eq!(sender_a.a, Operand::LdmBcast(Net::Row));
        let sender_b = step_role(Mapping::Pe, 0, Coord::new(0, 2));
        assert_eq!(sender_b.thread_type(), ThreadType::OnlyB);
        assert_eq!(sender_b.b, Operand::LdmBcast(Net::Col));
        let diag = step_role(Mapping::Pe, 0, Coord::new(0, 0));
        assert_eq!(diag.thread_type(), ThreadType::Both);
    }

    #[test]
    fn per_step_counts_are_correct() {
        // Per step: 1 dual broadcaster, 7 A-only, 7 B-only, 49 neither.
        for mapping in [Mapping::Pe, Mapping::Row] {
            for s in 0..8 {
                let mut counts = [0usize; 4];
                for c in Coord::all() {
                    match step_role(mapping, s, c).thread_type() {
                        ThreadType::Both => counts[0] += 1,
                        ThreadType::OnlyA => counts[1] += 1,
                        ThreadType::OnlyB => counts[2] += 1,
                        ThreadType::Neither => counts[3] += 1,
                    }
                }
                assert_eq!(counts, [1, 7, 7, 49], "{mapping:?} step {s}");
            }
        }
    }

    #[test]
    fn row_mapping_transposes_directions() {
        let r = step_role(Mapping::Row, 3, Coord::new(3, 5));
        // Row 3 owns A at step 3 and broadcasts it down its column.
        assert_eq!(r.a, Operand::LdmBcast(Net::Col));
        // Column 5 ≠ 3, so B is received from the row network.
        assert_eq!(r.b, Operand::Recv(Net::Row));
    }

    #[test]
    fn every_thread_broadcasts_once_per_strip() {
        // Over the 8 steps, each thread is A-owner exactly once and
        // B-owner exactly once (its k-slab comes up once).
        for mapping in [Mapping::Pe, Mapping::Row] {
            for c in Coord::all() {
                let a_owns = (0..8)
                    .filter(|&s| matches!(step_role(mapping, s, c).a, Operand::LdmBcast(_)))
                    .count();
                let b_owns = (0..8)
                    .filter(|&s| matches!(step_role(mapping, s, c).b, Operand::LdmBcast(_)))
                    .count();
                assert_eq!((a_owns, b_owns), (1, 1));
            }
        }
    }

    #[test]
    #[should_panic]
    fn step_out_of_range_panics() {
        let _ = step_role(Mapping::Pe, 8, Coord::new(0, 0));
    }
}
