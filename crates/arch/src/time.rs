//! Cycle/time accounting helpers shared by the timing models.

use crate::consts::CLOCK_HZ;

/// A cycle count at the 1.45 GHz CPE clock.
pub type Cycles = u64;

/// Converts a cycle count to seconds at the CPE clock rate.
#[inline]
pub fn cycles_to_secs(cycles: Cycles) -> f64 {
    cycles as f64 / CLOCK_HZ
}

/// Converts seconds to cycles (rounded up — a partial cycle still
/// occupies the pipeline).
#[inline]
pub fn secs_to_cycles(secs: f64) -> Cycles {
    (secs * CLOCK_HZ).ceil() as Cycles
}

/// Sustained Gflops/s for `flops` floating-point operations completed in
/// `secs` seconds.
#[inline]
pub fn gflops(flops: u64, secs: f64) -> f64 {
    assert!(secs > 0.0, "elapsed time must be positive");
    flops as f64 / secs / 1.0e9
}

/// Flop count of `C += alpha * A * B` for an m×k by k×n product: the
/// conventional 2·m·n·k used by the paper (and HPL) when reporting
/// Gflops.
#[inline]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::{CPES_PER_CG, FLOPS_PER_CYCLE_PER_CPE, PEAK_GFLOPS_CG};

    #[test]
    fn seconds_roundtrip() {
        let c = 1_450_000_000;
        assert!((cycles_to_secs(c) - 1.0).abs() < 1e-12);
        assert_eq!(secs_to_cycles(1.0), c);
    }

    #[test]
    fn peak_from_cycles() {
        // Retiring 8 flops/cycle on 64 CPEs for one second is the peak.
        let flops = FLOPS_PER_CYCLE_PER_CPE * CPES_PER_CG as u64 * secs_to_cycles(1.0);
        assert!((gflops(flops, 1.0) - PEAK_GFLOPS_CG).abs() < 1e-6);
    }

    #[test]
    fn gemm_flops_square() {
        assert_eq!(gemm_flops(10, 10, 10), 2000);
    }
}
