//! CPE mesh coordinates.
//!
//! The 64 CPEs of a core group sit on an 8×8 mesh. The paper writes
//! `thread(i, j)` for the thread on the CPE in row `i`, column `j`; we
//! mirror that with [`Coord`]. Linear ids are row-major
//! (`id = row * 8 + col`), matching the order in which `sw-sim` spawns
//! the 64 threads.

/// Rows of the CPE mesh.
pub const MESH_ROWS: usize = 8;
/// Columns of the CPE mesh.
pub const MESH_COLS: usize = 8;
/// Total CPEs on the mesh.
pub const N_CPES: usize = MESH_ROWS * MESH_COLS;

/// Position of a CPE (equivalently, of the thread it runs) on the 8×8
/// mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Mesh row, `0..8`.
    pub row: u8,
    /// Mesh column, `0..8`.
    pub col: u8,
}

impl Coord {
    /// Builds a coordinate, panicking if out of range.
    #[inline]
    pub fn new(row: usize, col: usize) -> Self {
        assert!(
            row < MESH_ROWS && col < MESH_COLS,
            "coordinate ({row},{col}) off the 8x8 mesh"
        );
        Coord {
            row: row as u8,
            col: col as u8,
        }
    }

    /// Linear (row-major) id, `0..64`.
    #[inline]
    pub fn id(self) -> usize {
        self.row as usize * MESH_COLS + self.col as usize
    }

    /// Inverse of [`Coord::id`].
    #[inline]
    pub fn from_id(id: usize) -> Self {
        assert!(id < N_CPES, "CPE id {id} out of range");
        Coord {
            row: (id / MESH_COLS) as u8,
            col: (id % MESH_COLS) as u8,
        }
    }

    /// Iterator over all 64 coordinates in id order.
    pub fn all() -> impl Iterator<Item = Coord> {
        (0..N_CPES).map(Coord::from_id)
    }

    /// The 8 coordinates of this CPE's mesh row, in column order.
    pub fn row_mates(self) -> impl Iterator<Item = Coord> {
        let r = self.row as usize;
        (0..MESH_COLS).map(move |c| Coord::new(r, c))
    }

    /// The 8 coordinates of this CPE's mesh column, in row order.
    pub fn col_mates(self) -> impl Iterator<Item = Coord> {
        let c = self.col as usize;
        (0..MESH_ROWS).map(move |r| Coord::new(r, c))
    }

    /// True for the diagonal CPEs `(i, i)`, which play the dual
    /// broadcaster role in the collective data sharing scheme (§III-B).
    #[inline]
    pub fn on_diagonal(self) -> bool {
        self.row == self.col
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        for id in 0..N_CPES {
            assert_eq!(Coord::from_id(id).id(), id);
        }
    }

    #[test]
    fn row_col_mates() {
        let c = Coord::new(2, 5);
        let rm: Vec<_> = c.row_mates().collect();
        assert_eq!(rm.len(), 8);
        assert!(rm.iter().all(|m| m.row == 2));
        let cm: Vec<_> = c.col_mates().collect();
        assert_eq!(cm.len(), 8);
        assert!(cm.iter().all(|m| m.col == 5));
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let _ = Coord::new(8, 0);
    }

    #[test]
    fn diagonal() {
        assert!(Coord::new(3, 3).on_diagonal());
        assert!(!Coord::new(3, 4).on_diagonal());
    }
}
