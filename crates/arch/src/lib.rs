//! Architectural constants and primitive types of the SW26010 core group.
//!
//! The SW26010 processor (Sunway TaihuLight) is organized as four core
//! groups (CGs). Each CG contains one management processing element (MPE)
//! and 64 computing processing elements (CPEs) arranged on an 8×8 mesh.
//! This crate captures the *facts* about one core group that every other
//! crate in the workspace reasons about:
//!
//! * clock rate, peak floating-point throughput, memory bandwidth,
//! * the CPE mesh geometry and coordinate arithmetic,
//! * the 64 KB local device memory (LDM) per CPE,
//! * the 256-bit vector word ([`V256`]) used by the SIMD pipeline and by
//!   register communication,
//! * pipeline and register-communication latencies used by the timing
//!   model.
//!
//! Everything here is a plain value type; the behavioural models live in
//! `sw-mem` (memory/DMA), `sw-mesh` (register communication), `sw-isa`
//! (pipelines) and `sw-sim` (the core-group runtime).

pub mod consts;
pub mod coord;
pub mod time;
pub mod vector;

pub use consts::*;
pub use coord::{Coord, MESH_COLS, MESH_ROWS, N_CPES};
pub use time::{cycles_to_secs, gflops, secs_to_cycles, Cycles};
pub use vector::V256;
