//! The 256-bit vector word.
//!
//! Both the CPE floating-point pipeline (4-lane double-precision SIMD
//! with FMA) and the register-communication mesh move data in 256-bit
//! units. [`V256`] is that unit: four `f64` lanes.

/// A 256-bit vector of four `f64` lanes.
///
/// `fma` mirrors the SW26010 `vmad` instruction: one rounding per lane
/// (`f64::mul_add`), which is what makes the simulator's DGEMM results
/// reproducible against a host reference that uses the same accumulation
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct V256(pub [f64; 4]);

impl V256 {
    /// All-zero vector.
    pub const ZERO: V256 = V256([0.0; 4]);

    /// Builds a vector from four lanes.
    #[inline]
    pub fn new(lanes: [f64; 4]) -> Self {
        V256(lanes)
    }

    /// Replicates one scalar into all four lanes (what `lddec` does when
    /// loading a B element for column broadcast).
    #[inline]
    pub fn splat(x: f64) -> Self {
        V256([x; 4])
    }

    /// Loads four consecutive elements from a slice (what `vldr`/`vldd`
    /// do from 256-bit-aligned LDM).
    #[inline]
    pub fn load(src: &[f64]) -> Self {
        V256([src[0], src[1], src[2], src[3]])
    }

    /// Stores the four lanes into a slice.
    #[inline]
    pub fn store(self, dst: &mut [f64]) {
        dst[..4].copy_from_slice(&self.0);
    }

    /// Lane-wise fused multiply-add: `self * b + c`, one rounding per
    /// lane, exactly like the hardware `vmad`.
    #[inline]
    pub fn fma(self, b: V256, c: V256) -> V256 {
        V256([
            self.0[0].mul_add(b.0[0], c.0[0]),
            self.0[1].mul_add(b.0[1], c.0[1]),
            self.0[2].mul_add(b.0[2], c.0[2]),
            self.0[3].mul_add(b.0[3], c.0[3]),
        ])
    }

    /// Lane-wise multiplication.
    ///
    /// Named like the hardware `vmul`; not the `std::ops` trait (SIMD
    /// lane semantics, no operator sugar wanted).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn mul(self, b: V256) -> V256 {
        V256([
            self.0[0] * b.0[0],
            self.0[1] * b.0[1],
            self.0[2] * b.0[2],
            self.0[3] * b.0[3],
        ])
    }

    /// Lane-wise addition (hardware `vadd`).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, b: V256) -> V256 {
        V256([
            self.0[0] + b.0[0],
            self.0[1] + b.0[1],
            self.0[2] + b.0[2],
            self.0[3] + b.0[3],
        ])
    }

    /// Horizontal sum of the four lanes.
    #[inline]
    pub fn hsum(self) -> f64 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }

    /// Loads `dst.len()` consecutive vectors from `src` (vector `i`
    /// takes lanes `src[4i..4i+4]`): the wide micro-op a fused run of
    /// `vldd`s into adjacent registers performs. The fixed-width inner
    /// copy is a single autovectorizable loop instead of `dst.len()`
    /// separate four-lane gathers.
    #[inline]
    pub fn load_seq(dst: &mut [V256], src: &[f64]) {
        for (i, v) in dst.iter_mut().enumerate() {
            *v = V256::load(&src[4 * i..]);
        }
    }

    /// Stores `src.len()` consecutive vectors into `dst` (the wide
    /// micro-op of a fused `vstd` run); the inverse of
    /// [`V256::load_seq`].
    #[inline]
    pub fn store_seq(src: &[V256], dst: &mut [f64]) {
        for (i, v) in src.iter().enumerate() {
            v.store(&mut dst[4 * i..4 * i + 4]);
        }
    }
}

impl From<[f64; 4]> for V256 {
    fn from(lanes: [f64; 4]) -> Self {
        V256(lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_is_fused() {
        // Choose operands where fused and unfused rounding differ.
        let a = 1.0 + f64::EPSILON;
        let v = V256::splat(a).fma(V256::splat(a), V256::splat(-1.0 - 2.0 * f64::EPSILON));
        let fused = a.mul_add(a, -1.0 - 2.0 * f64::EPSILON);
        let unfused = a * a + (-1.0 - 2.0 * f64::EPSILON);
        assert_eq!(v.0[0], fused);
        assert_ne!(fused, unfused, "operands chosen to expose fusion");
    }

    #[test]
    fn load_store_roundtrip() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        let v = V256::load(&src);
        let mut dst = [0.0; 4];
        v.store(&mut dst);
        assert_eq!(dst, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn splat_and_hsum() {
        assert_eq!(V256::splat(2.5).hsum(), 10.0);
    }

    #[test]
    fn seq_roundtrip_matches_elementwise() {
        let src: Vec<f64> = (0..12).map(|i| i as f64 * 0.5).collect();
        let mut regs = [V256::ZERO; 3];
        V256::load_seq(&mut regs, &src);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(*r, V256::load(&src[4 * i..]));
        }
        let mut out = vec![0.0; 12];
        V256::store_seq(&regs, &mut out);
        assert_eq!(out, src);
    }
}
