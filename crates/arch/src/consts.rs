//! Hardware constants of one SW26010 core group, as described in §II of
//! the paper ("SW26010 Many-core Architecture").
//!
//! The timing-model latencies at the bottom of this module are the ones
//! the paper states explicitly (the RAW latencies of `vmad` and register
//! communication in §IV-C) plus conservative estimates for the few it
//! leaves implicit; the calibration appendix of `EXPERIMENTS.md` records
//! which values were calibrated against the paper's measurements.

/// CPE (and MPE) clock rate in GHz.
pub const CLOCK_GHZ: f64 = 1.45;

/// Clock rate in Hz, convenient for cycle/second conversions.
pub const CLOCK_HZ: f64 = CLOCK_GHZ * 1.0e9;

/// Double-precision flops one CPE retires per cycle: a 256-bit FMA does
/// 4 lanes × 2 flops.
pub const FLOPS_PER_CYCLE_PER_CPE: u64 = 8;

/// Number of CPEs in one core group (8×8 mesh).
pub const CPES_PER_CG: usize = 64;

/// Theoretical double-precision peak of one CPE cluster:
/// 8 flop/cycle × 1.45 GHz × 64 CPEs = 742.4 Gflops/s.
pub const PEAK_GFLOPS_CG: f64 = FLOPS_PER_CYCLE_PER_CPE as f64 * CLOCK_GHZ * CPES_PER_CG as f64;

/// Local device memory (scratch pad) per CPE, in bytes.
pub const LDM_BYTES: usize = 64 * 1024;

/// LDM capacity in `f64` elements (the paper's "64KB/8B = 8192").
pub const LDM_DOUBLES: usize = LDM_BYTES / 8;

/// Number of 256-bit vector registers per CPE.
pub const VREG_COUNT: usize = 32;

/// Lanes of `f64` in one 256-bit vector register.
pub const VREG_LANES: usize = 4;

/// DMA transaction unit in bytes; all DMA operations require this
/// alignment and transfer in multiples of it.
pub const DMA_TRANSACTION_BYTES: usize = 128;

/// DMA transaction unit in `f64` elements.
pub const DMA_TRANSACTION_DOUBLES: usize = DMA_TRANSACTION_BYTES / 8;

/// In `ROW_MODE`, each 128 B transaction is split across the 8 CPEs of a
/// mesh row; each CPE gets/puts this many successive bytes (16 B = 2
/// doubles).
pub const ROW_MODE_SLICE_BYTES: usize = DMA_TRANSACTION_BYTES / 8;

/// `ROW_MODE` per-CPE slice in `f64` elements.
pub const ROW_MODE_SLICE_DOUBLES: usize = ROW_MODE_SLICE_BYTES / 8;

/// Theoretical main-memory bandwidth of the DMA channel of one CG, GB/s.
pub const DMA_THEORETICAL_GBS: f64 = 34.0;

/// Main memory shared by one CG, in bytes (8 GB).
pub const MAIN_MEMORY_BYTES: usize = 8 * 1024 * 1024 * 1024;

/// Instruction cache per CPE, in bytes (16 KB) — the constraint that
/// forces production kernels to loop rather than fully unroll.
pub const ICACHE_BYTES: usize = 16 * 1024;

/// Encoded size of one instruction, in bytes (the SW RISC ISA uses
/// fixed 32-bit encodings).
pub const INSTR_BYTES: usize = 4;

// ---------------------------------------------------------------------
// Pipeline / latency model (§II and §IV-C).
// ---------------------------------------------------------------------

/// Read-after-write latency of `vmad` (fused multiply-add), in cycles.
/// Stated explicitly in §IV-C.
pub const VMAD_RAW_LATENCY: u64 = 6;

/// Read-after-write latency of the register-communication instructions
/// (`vldr`, `lddec`, `getr`, `getc`), in cycles. Stated in §IV-C.
pub const REGCOMM_RAW_LATENCY: u64 = 4;

/// Read-after-write latency of a plain LDM vector load, in cycles.
pub const LDM_LOAD_LATENCY: u64 = 4;

/// Latency of integer ALU operations, in cycles.
pub const INT_OP_LATENCY: u64 = 1;

/// End-to-end mesh transit cost of one register-communication broadcast
/// (producer put → consumer get), in cycles. The paper says "usually
/// around several cycles"; we use 10 in the timing model for the
/// synchronization cost the schedule cannot hide.
pub const MESH_TRANSIT_CYCLES: u64 = 10;

/// Depth of the per-CPE register-communication send buffer, in 256-bit
/// entries. Bounded so producers block when consumers lag (the
/// producer/consumer mode of §II).
pub const MESH_SEND_BUFFER_ENTRIES: usize = 4;

/// Depth of the per-CPE receive buffer (per direction), in 256-bit
/// entries.
pub const MESH_RECV_BUFFER_ENTRIES: usize = 8;

/// Fixed startup overhead of one DMA descriptor, in cycles (issue,
/// protocol processing in the PPU, and reply). Calibrated.
pub const DMA_STARTUP_CYCLES: u64 = 270;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_matches_paper() {
        // The paper states 8 flop/clock × 1.45 GHz × 64 = 742.4 Gflops/s.
        assert!((PEAK_GFLOPS_CG - 742.4).abs() < 1e-9);
    }

    #[test]
    fn ldm_capacity_matches_paper() {
        // "the number of matrix elements stored on each CPE should be
        // less than 64KB/8B = 8192"
        assert_eq!(LDM_DOUBLES, 8192);
    }

    #[test]
    fn dma_granularity() {
        assert_eq!(DMA_TRANSACTION_DOUBLES, 16);
        assert_eq!(ROW_MODE_SLICE_DOUBLES, 2);
    }
}
