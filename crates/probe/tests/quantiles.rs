//! Seeded property tests for histogram quantiles and snapshot merge.
//!
//! Pins the two contracts the diagnostics stack leans on:
//!
//! * `Histogram::quantile(q)` lands in the same bucket as the exact
//!   sample quantile, so its error is bounded by that bucket's width
//!   (checked for p50 and p99 on random observation streams);
//! * `merge(a, b)` — for histograms and whole snapshots — is exactly
//!   equivalent to having recorded the union of both streams.

use sw_probe::metrics::{Histogram, Registry};

/// Local splitmix64 (the workspace is std-only; same idiom as
/// `sw_dgemm::gen`).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Exact sample quantile with the same rank convention as
/// `Histogram::quantile`: the `ceil(q·n)`-th smallest (1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The `[lo, hi]` edges of the bucket that holds `v` (buckets are
/// `(prev_bound, bound]`, first bucket starts at 0).
fn bucket_edges(bounds: &[u64], v: u64) -> (u64, u64) {
    let i = bounds.partition_point(|&b| b < v);
    assert!(
        i < bounds.len(),
        "test streams stay inside the bounded buckets"
    );
    (if i == 0 { 0 } else { bounds[i - 1] }, bounds[i])
}

#[test]
fn quantile_error_bounded_by_bucket_width() {
    let bounds: Vec<u64> = vec![4, 16, 64, 256, 1024, 4096, 16384];
    let mut rng = Rng(0x5ee1);
    for case in 0..200 {
        let h = Histogram::new(&bounds);
        let n = 1 + rng.below(500) as usize;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            // Spread across magnitudes so every bucket gets exercised,
            // capped below the last bound to keep widths finite.
            let magnitude = 1u64 << (2 + rng.below(13));
            let v = rng.below(magnitude).min(16384);
            h.observe(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [0.5, 0.99] {
            let est = h.quantile(q).expect("non-empty histogram");
            let exact = exact_quantile(&samples, q);
            let (lo, hi) = bucket_edges(&bounds, exact);
            assert!(
                est >= lo as f64 && est <= hi as f64,
                "case {case}: p{} estimate {est} outside bucket [{lo}, {hi}] of exact {exact}",
                q * 100.0,
            );
            assert!(
                (est - exact as f64).abs() <= (hi - lo) as f64,
                "case {case}: p{} error {} exceeds bucket width {}",
                q * 100.0,
                (est - exact as f64).abs(),
                hi - lo,
            );
        }
    }
}

#[test]
fn quantile_edge_cases() {
    let h = Histogram::new(&[10, 20]);
    assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
    h.observe(5);
    // One sample: every quantile is in its bucket (0, 10].
    for q in [0.0, 0.5, 1.0] {
        let est = h.quantile(q).unwrap();
        assert!((0.0..=10.0).contains(&est));
    }
    // Overflow bucket reports its lower edge.
    let o = Histogram::new(&[10]);
    o.observe(1000);
    assert_eq!(o.quantile(0.99), Some(10.0));
}

#[test]
fn histogram_merge_equals_recording_the_union() {
    let bounds: Vec<u64> = vec![8, 32, 128, 512];
    let mut rng = Rng(0xfeed);
    for _ in 0..100 {
        let a = Histogram::new(&bounds);
        let b = Histogram::new(&bounds);
        let union = Histogram::new(&bounds);
        for h in [&a, &b] {
            for _ in 0..rng.below(200) {
                let v = rng.below(1024);
                h.observe(v);
                union.observe(v);
            }
        }
        a.merge_from(&b);
        assert_eq!(a.bucket_counts(), union.bucket_counts());
        assert_eq!(a.count(), union.count());
        assert_eq!(a.sum(), union.sum());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), union.quantile(q));
        }
    }
}

#[test]
fn snapshot_merge_equals_recording_the_union() {
    let mut rng = Rng(0xcafe);
    for _ in 0..50 {
        let ra = Registry::new();
        let rb = Registry::new();
        let runion = Registry::new();
        // Shared and one-sided instruments, randomly driven.
        for _ in 0..rng.below(300) {
            let (reg, mirror) = if rng.below(2) == 0 {
                (&ra, &runion)
            } else {
                (&rb, &runion)
            };
            match rng.below(3) {
                0 => {
                    let name = ["ops.shared", "ops.a"][rng.below(2) as usize];
                    let d = rng.below(10);
                    reg.counter(name).add(d);
                    mirror.counter(name).add(d);
                }
                1 => {
                    let v = rng.below(100) as i64 - 50;
                    reg.gauge("depth").set(v);
                    mirror.gauge("depth").set(v);
                }
                _ => {
                    let v = rng.below(600);
                    reg.histogram("lat", &[16, 64, 256]).observe(v);
                    mirror.histogram("lat", &[16, 64, 256]).observe(v);
                }
            }
        }
        let merged = ra.snapshot().merge(&rb.snapshot());
        let union = runion.snapshot();
        // Counters and histograms must match the union exactly.
        for (name, v) in &union.entries {
            if name == "depth" {
                continue; // gauges are point-in-time; latest-wins below
            }
            assert_eq!(merged.get(name), Some(v), "mismatch for {name}");
        }
        // Gauge semantics: merge keeps the right-hand reading.
        if let Some(g) = rb.snapshot().get("depth") {
            assert_eq!(merged.get("depth"), Some(g));
        }
        // No phantom entries.
        let names: Vec<_> = merged.entries.iter().map(|(n, _)| n.clone()).collect();
        let mut expect: Vec<String> = union.entries.iter().map(|(n, _)| n.clone()).collect();
        expect.sort();
        assert_eq!(names, expect);
    }
}
