//! Text Gantt rendering over the traced event stream.
//!
//! This is the terminal-friendly twin of the Chrome-trace exporter:
//! the same spans, rendered as fixed-width ASCII bars. The
//! `trace_overlap` bin used to hand-roll this walk over
//! `Dag::trace()`; it now feeds [`from_trace`] + [`render`], so every
//! producer that traces also Gantts for free.

use crate::trace::{Span, TraceData};

/// One bar of the chart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GanttRow {
    /// Left-column label.
    pub label: String,
    /// Fill character for the bar (e.g. `'D'` for the DMA lane).
    pub lane: char,
    /// Start cycle.
    pub start: u64,
    /// End cycle.
    pub end: u64,
}

/// Lane character for a span category: `"dma"` → `D`, `"compute"` →
/// `C`, anything else (sync latency, mesh) → `.`.
pub fn lane_for_cat(cat: &str) -> char {
    match cat {
        "dma" => 'D',
        "compute" => 'C',
        _ => '.',
    }
}

/// Converts traced spans (in emission order) into Gantt rows, one per
/// span, laned by [`lane_for_cat`].
pub fn from_trace(data: &TraceData) -> Vec<GanttRow> {
    data.spans.iter().map(row_from_span).collect()
}

fn row_from_span(s: &Span) -> GanttRow {
    GanttRow {
        label: s.name.to_string(),
        lane: lane_for_cat(s.cat),
        start: s.start,
        end: s.end,
    }
}

/// Renders the header plus one bar line per row, `width` cells across
/// the `[0, makespan)` interval. Output shape matches the historical
/// `trace_overlap` chart byte for byte.
pub fn render(rows: &[GanttRow], makespan: u64, width: usize) -> String {
    let span = makespan.max(1) as f64;
    let mut out = format!(
        "{:<12} {:>10} {:>10}  timeline ({} cycles)\n",
        "task", "start", "end", makespan
    );
    for r in rows {
        let s = (r.start as f64 / span * width as f64) as usize;
        let e = ((r.end as f64 / span * width as f64) as usize)
            .max(s + 1)
            .min(width);
        let mut bar = vec![' '; width];
        for cell in bar.iter_mut().take(e).skip(s) {
            *cell = r.lane;
        }
        out.push_str(&format!(
            "{:<12} {:>10} {:>10}  |{}|\n",
            r.label,
            r.start,
            r.end,
            bar.iter().collect::<String>()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    #[test]
    fn renders_bars_proportionally() {
        let rows = vec![
            GanttRow {
                label: "load".into(),
                lane: 'D',
                start: 0,
                end: 50,
            },
            GanttRow {
                label: "compute".into(),
                lane: 'C',
                start: 50,
                end: 100,
            },
        ];
        let out = render(&rows, 100, 10);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("timeline (100 cycles)"));
        assert!(lines[1].contains("|DDDDD     |"));
        assert!(lines[2].contains("|     CCCCC|"));
    }

    #[test]
    fn zero_length_span_still_shows_one_cell() {
        let rows = vec![GanttRow {
            label: "sync".into(),
            lane: '.',
            start: 10,
            end: 10,
        }];
        let out = render(&rows, 100, 10);
        assert!(out.lines().nth(1).unwrap().contains("| .        |"));
    }

    #[test]
    fn from_trace_maps_categories_to_lanes() {
        let t = Tracer::enabled();
        let tr = t.track("timing-dag", "DMA");
        t.span(tr, "dma", "load A", 0, 10);
        t.span(tr, "compute", "block", 10, 20);
        t.span(tr, "sync", "mesh sync", 20, 25);
        let rows = from_trace(&t.take());
        let lanes: Vec<char> = rows.iter().map(|r| r.lane).collect();
        assert_eq!(lanes, vec!['D', 'C', '.']);
        assert_eq!(rows[0].label, "load A");
    }
}
