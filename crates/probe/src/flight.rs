//! Always-on black-box **flight recorder** for the functional runtime.
//!
//! Every CPE (plus the MPE control loop) owns a bounded ring buffer of
//! compact binary events — kernel start/end, DMA issue/complete, mesh
//! episodes, barrier arrive/release, fault-injection decisions, retry
//! attempts — written lock-free by its single producer thread. Unlike
//! the span [`crate::trace::Tracer`], the recorder is **enabled by
//! default**: when a run dies with a structured error, the last
//! `RING_EVENTS` events per CPE are still there to be serialized into a
//! diagnostics bundle. `flight_bench` pins the recording overhead on
//! the fig6-size functional run at ≤2% (plus measured noise).
//!
//! Alongside the rings, the recorder keeps the authoritative per-CPE
//! **simulated clock** and a per-CPE busy-cycle ledger with one bucket
//! per [`Lane`]. Every clock advance goes through [`FlightRecorder::
//! advance`] (or the barrier-release jump [`FlightRecorder::
//! jump_to`]), charging exactly one lane, so per CPE the invariant
//!
//! ```text
//! clock == busy[Compute] + busy[Dma] + busy[Mesh] + busy[Barrier]
//! ```
//!
//! holds at all times — the functional-run analogue of the interpreter
//! stall-attribution invariant. Barrier releases exchange clock maxima
//! (see `sw-sim`'s `CancellableBarrier::wait_clock`), so timestamps are
//! globally comparable across CPEs after every `sync_all`.
//!
//! Memory layout: one ring is `RING_EVENTS` slots of three `AtomicU64`
//! words — `[clock, kind<<56 | code, arg]` — plus a free-running head
//! counter. The slot sequence number is implicit (`head - k` for the
//! k-th newest), so a ring costs `512 × 24 B = 12 KiB`, 65 rings ≈ 780
//! KiB per core group. Readers ([`FlightRecorder::tail`]) run after the
//! producer thread parked or joined; torn reads of in-flight slots are
//! impossible for post-mortem bundles and merely stale for live peeks.

// Concurrency vocabulary comes from the sw-check facade: plain `std`
// re-exports in a normal build (zero-cost, the hot path is unchanged),
// checker-instrumented types under `--cfg sw_check` so this exact
// source is model-checked by `check_models`.
use std::sync::Arc;
use sw_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Ring index of the MPE (control-plane) ring, after the 64 CPE rings.
pub const MPE_RING: usize = 64;
/// Total rings per recorder: 64 CPEs + 1 MPE.
pub const N_RINGS: usize = 65;
/// Events retained per ring (tail window of the black box).
pub const RING_EVENTS: usize = 512;
/// Busy-cycle lanes per CPE (see [`Lane`]).
pub const N_LANES: usize = 4;

/// What a recorded event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A kernel is entering the execution engine; `arg` = ops in the
    /// decoded program.
    KernelStart = 1,
    /// A kernel finished; `arg` = simulated cycles it took.
    KernelEnd = 2,
    /// A DMA transfer is being issued; `code` = [`dma_op_code`],
    /// `arg` = bytes moved by this CPE.
    DmaIssue = 3,
    /// A DMA transfer completed; `code` = [`dma_op_code`], `arg` =
    /// simulated cycles charged.
    DmaComplete = 4,
    /// A mesh send/receive episode; `code` = packed
    /// [`mesh_episode_code`], `arg` = words.
    MeshEpisode = 5,
    /// Arrived at a barrier; `code` = 0 for `sync_all`, 1 for
    /// `sync_row`.
    BarrierArrive = 6,
    /// Released from a barrier; `code` as arrive, `arg` = cycles spent
    /// waiting (release clock − arrive clock).
    BarrierRelease = 7,
    /// The fault injector fired; `code` = [`fault_code`] constant,
    /// `arg` = site index (DMA op / mesh send / epoch).
    FaultDecision = 8,
    /// A retry after a recoverable fault; `code` = retry number
    /// (1-based), `arg` = site index (DMA op) or epoch (MPE ring).
    RetryAttempt = 9,
}

impl EventKind {
    /// Stable lower-case name used in bundles and reports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::KernelStart => "kernel-start",
            EventKind::KernelEnd => "kernel-end",
            EventKind::DmaIssue => "dma-issue",
            EventKind::DmaComplete => "dma-complete",
            EventKind::MeshEpisode => "mesh-episode",
            EventKind::BarrierArrive => "barrier-arrive",
            EventKind::BarrierRelease => "barrier-release",
            EventKind::FaultDecision => "fault-decision",
            EventKind::RetryAttempt => "retry-attempt",
        }
    }

    /// Inverse of the `repr(u8)` discriminant; `None` for junk.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => EventKind::KernelStart,
            2 => EventKind::KernelEnd,
            3 => EventKind::DmaIssue,
            4 => EventKind::DmaComplete,
            5 => EventKind::MeshEpisode,
            6 => EventKind::BarrierArrive,
            7 => EventKind::BarrierRelease,
            8 => EventKind::FaultDecision,
            9 => EventKind::RetryAttempt,
            _ => return None,
        })
    }

    /// Inverse of [`EventKind::name`]; `None` for junk.
    pub fn from_name(s: &str) -> Option<Self> {
        (1..=9)
            .map(|v| Self::from_u8(v).unwrap())
            .find(|k| k.name() == s)
    }
}

/// The busy-cycle bucket a clock advance is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Lane {
    /// Kernel execution on the CPE pipelines.
    Compute = 0,
    /// DMA transfers (including retry backoff).
    Dma = 1,
    /// Register-mesh communication outside kernels.
    Mesh = 2,
    /// Waiting at `sync_all` / `sync_row`.
    Barrier = 3,
}

impl Lane {
    pub const ALL: [Lane; N_LANES] = [Lane::Compute, Lane::Dma, Lane::Mesh, Lane::Barrier];

    /// Stable lower-case name used in bundles and reports.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Compute => "compute",
            Lane::Dma => "dma",
            Lane::Mesh => "mesh",
            Lane::Barrier => "barrier",
        }
    }
}

/// `code` constants for [`EventKind::FaultDecision`] events.
pub mod fault_code {
    /// A DMA transfer failed transiently (retryable).
    pub const DMA_TRANSIENT: u32 = 1;
    /// A DMA payload bit was flipped in flight.
    pub const DMA_BITFLIP: u32 = 2;
    /// A DMA transfer was truncated.
    pub const DMA_TRUNCATE: u32 = 3;
    /// An LDM bit flipped after a transfer landed.
    pub const LDM_BITFLIP: u32 = 4;
    /// A mesh word was dropped on a link.
    pub const MESH_DROP: u32 = 5;
    /// A CPE's mesh sends are wedged (suppressed entirely).
    pub const MESH_WEDGE: u32 = 6;
    /// MPE ring: ABFT checksum verification flagged a block.
    pub const ABFT_DETECT: u32 = 7;
    /// MPE ring: a CPE was declared failed and its tiles redistributed.
    pub const CPE_FAILED: u32 = 8;

    /// Stable lower-case name used in bundles and reports.
    pub fn name(code: u32) -> &'static str {
        match code {
            DMA_TRANSIENT => "dma-transient",
            DMA_BITFLIP => "dma-bitflip",
            DMA_TRUNCATE => "dma-truncate",
            LDM_BITFLIP => "ldm-bitflip",
            MESH_DROP => "mesh-drop",
            MESH_WEDGE => "mesh-wedge",
            ABFT_DETECT => "abft-detect",
            CPE_FAILED => "cpe-failed",
            _ => "fault",
        }
    }
}

/// DMA operation codes for [`EventKind::DmaIssue`] / [`EventKind::DmaComplete`];
/// names match the `CpeCtx` DMA wrapper span names.
pub fn dma_op_code(name: &str) -> u32 {
    match name {
        "pe.get" => 1,
        "pe.put" => 2,
        "bcast.get" => 3,
        "row.get" => 4,
        "row.put" => 5,
        "brow.get" => 6,
        "rank.get" => 7,
        _ => 0,
    }
}

/// Inverse of [`dma_op_code`].
pub fn dma_op_name(code: u32) -> &'static str {
    match code {
        1 => "pe.get",
        2 => "pe.put",
        3 => "bcast.get",
        4 => "row.get",
        5 => "row.put",
        6 => "brow.get",
        7 => "rank.get",
        _ => "dma",
    }
}

/// Mesh-episode outcomes packed into bits 8.. of the episode `code`.
pub mod mesh_outcome {
    pub const OK: u32 = 0;
    /// A blocked send hit the deadlock fuse.
    pub const DEADLOCK: u32 = 1;
    /// A receive timed out (starved link).
    pub const STARVED: u32 = 2;
    /// The episode was suppressed by a forced wedge.
    pub const WEDGED: u32 = 3;

    pub fn name(o: u32) -> &'static str {
        match o {
            OK => "ok",
            DEADLOCK => "deadlock",
            STARVED => "starved",
            WEDGED => "wedged",
            _ => "?",
        }
    }
}

/// Packs a mesh episode descriptor: bit 0 = column network, bit 1 = get
/// (vs broadcast), bits 8.. = [`mesh_outcome`].
pub fn mesh_episode_code(col_net: bool, get: bool, outcome: u32) -> u32 {
    (outcome << 8) | ((get as u32) << 1) | (col_net as u32)
}

/// Renders a packed [`mesh_episode_code`] as e.g. `"col-get:starved"`.
pub fn mesh_episode_name(code: u32) -> String {
    let net = if code & 1 != 0 { "col" } else { "row" };
    let op = if code & 2 != 0 { "get" } else { "bcast" };
    format!("{net}-{op}:{}", mesh_outcome::name(code >> 8))
}

/// One decoded event from a ring tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone per-ring sequence number (0 = first event recorded).
    pub seq: u64,
    /// Simulated-cycle timestamp on the producer's clock.
    pub clock: u64,
    pub kind: EventKind,
    pub code: u32,
    pub arg: u64,
}

const SLOT_WORDS: usize = 3;

struct Ring {
    /// Events ever recorded; slot for event `s` is `s % capacity`.
    head: AtomicU64,
    /// The producer's simulated clock, in cycles since run start.
    clock: AtomicU64,
    /// Busy cycles per [`Lane`]; sums to `clock` at all times.
    busy: [AtomicU64; N_LANES],
    /// `capacity × SLOT_WORDS` words of `[clock, kind|code, arg]`.
    slots: Box<[AtomicU64]>,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            head: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            busy: std::array::from_fn(|_| AtomicU64::new(0)),
            slots: (0..capacity * SLOT_WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }
}

/// Per-CPE clock and busy-cycle ledger, as read back by
/// [`FlightRecorder::attribution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingAttribution {
    /// Ring index (CPE id, or [`MPE_RING`]).
    pub ring: usize,
    /// Final simulated clock of the producer.
    pub clock: u64,
    /// Busy cycles per [`Lane`] (indexed by `Lane as usize`).
    pub busy: [u64; N_LANES],
}

impl RingAttribution {
    /// Total attributed cycles; equals `clock` by construction.
    pub fn total_busy(&self) -> u64 {
        self.busy.iter().sum()
    }
}

/// The black box: 65 single-producer event rings plus per-ring clocks
/// and busy ledgers. Shared as an `Arc` between the core group (one
/// ring per CPE thread), the mesh ports, and the MPE control loop.
pub struct FlightRecorder {
    enabled: AtomicBool,
    capacity: usize,
    rings: Vec<Ring>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(RING_EVENTS)
    }
}

impl FlightRecorder {
    /// A recorder with the default ring capacity, enabled.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A recorder with `capacity` events per ring, enabled.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "flight ring capacity must be positive");
        FlightRecorder {
            enabled: AtomicBool::new(true),
            capacity,
            rings: (0..N_RINGS).map(|_| Ring::new(capacity)).collect(),
        }
    }

    /// Events retained per ring.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Event recording on/off. Clocks and busy ledgers advance either
    /// way — they are the runtime's time base, not an optional probe.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Records an event stamped with the ring's current clock.
    /// Single-producer per ring: only the owning thread may call this.
    #[inline]
    pub fn record(&self, ring: usize, kind: EventKind, code: u32, arg: u64) {
        if !self.is_enabled() {
            return;
        }
        let r = &self.rings[ring];
        self.write_slot(r, r.clock.load(Ordering::Relaxed), kind, code, arg);
    }

    /// Records an event with an explicit timestamp (e.g. the completion
    /// edge of a span whose clock was already advanced past it).
    #[inline]
    pub fn record_at(&self, ring: usize, clock: u64, kind: EventKind, code: u32, arg: u64) {
        if !self.is_enabled() {
            return;
        }
        self.write_slot(&self.rings[ring], clock, kind, code, arg);
    }

    #[inline]
    fn write_slot(&self, r: &Ring, clock: u64, kind: EventKind, code: u32, arg: u64) {
        // Relaxed head load: single producer per ring, so only this
        // thread ever wrote `head` — it reads its own last store.
        let seq = r.head.load(Ordering::Relaxed);
        let base = (seq as usize % self.capacity) * SLOT_WORDS;
        // Relaxed slot stores: the slot words are published by the
        // release head store below; a reader that observes the new
        // head (acquire) is ordered after all three. This pairing is
        // model-checked by `check_models::flight_publish`, and its
        // necessity by the `flight-mutant-relaxed-publish` mutant.
        r.slots[base].store(clock, Ordering::Relaxed);
        r.slots[base + 1].store(((kind as u64) << 56) | code as u64, Ordering::Relaxed);
        r.slots[base + 2].store(arg, Ordering::Relaxed);
        r.head.store(seq + 1, Ordering::Release);
    }

    /// The ring's current simulated clock.
    ///
    /// Relaxed: the clock is owned by the ring's single producer (who
    /// reads its own stores); any other reader is a live peek that
    /// tolerates staleness, or runs after joining the producer (the
    /// join orders the final value).
    #[inline]
    pub fn clock(&self, ring: usize) -> u64 {
        self.rings[ring].clock.load(Ordering::Relaxed)
    }

    /// Advances the ring's clock by `cycles`, charging `lane`. Returns
    /// the `(start, end)` window, for span emission.
    #[inline]
    pub fn advance(&self, ring: usize, lane: Lane, cycles: u64) -> (u64, u64) {
        let r = &self.rings[ring];
        // Relaxed clock/busy: both are single-writer (the ring owner);
        // the load-then-store on `clock` is not an RMW because nobody
        // else writes it. Cross-thread readers only see these after a
        // join (`attribution`) or as an advisory live peek.
        let t0 = r.clock.load(Ordering::Relaxed);
        let t1 = t0 + cycles;
        r.clock.store(t1, Ordering::Relaxed);
        r.busy[lane as usize].fetch_add(cycles, Ordering::Relaxed);
        (t0, t1)
    }

    /// Jumps the ring's clock forward to `to` (a barrier-release
    /// maximum), charging the skipped cycles to `lane`. Returns the
    /// cycles charged. `to` in the past is a no-op returning 0 —
    /// clocks never run backwards.
    #[inline]
    pub fn jump_to(&self, ring: usize, lane: Lane, to: u64) -> u64 {
        let r = &self.rings[ring];
        // Relaxed: same single-writer discipline as `advance` — the
        // barrier-release maximum arrives via `wait_clock`'s own
        // synchronization, not through this clock cell.
        let t0 = r.clock.load(Ordering::Relaxed);
        if to <= t0 {
            return 0;
        }
        r.clock.store(to, Ordering::Relaxed);
        r.busy[lane as usize].fetch_add(to - t0, Ordering::Relaxed);
        to - t0
    }

    /// Events ever recorded on the ring (≥ what [`tail`](Self::tail)
    /// can return once the ring wrapped).
    pub fn total(&self, ring: usize) -> u64 {
        self.rings[ring].head.load(Ordering::Acquire)
    }

    /// The ring's retained events, oldest → newest. Meant to be called
    /// after the producer stopped (post-mortem); a live call sees a
    /// consistent prefix but may miss the newest slot.
    pub fn tail(&self, ring: usize) -> Vec<FlightEvent> {
        let r = &self.rings[ring];
        let head = r.head.load(Ordering::Acquire);
        let n = (head as usize).min(self.capacity);
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let seq = head - n as u64 + k as u64;
            let base = (seq as usize % self.capacity) * SLOT_WORDS;
            // Relaxed slot loads: the acquire head load above pairs
            // with the producer's release head store, ordering every
            // covered slot word before us (see `write_slot`).
            let clock = r.slots[base].load(Ordering::Relaxed);
            let packed = r.slots[base + 1].load(Ordering::Relaxed);
            let arg = r.slots[base + 2].load(Ordering::Relaxed);
            let Some(kind) = EventKind::from_u8((packed >> 56) as u8) else {
                continue;
            };
            out.push(FlightEvent {
                seq,
                clock,
                kind,
                code: (packed & 0xffff_ffff) as u32,
                arg,
            });
        }
        out
    }

    /// Clock + busy ledger for one ring.
    pub fn ring_attribution(&self, ring: usize) -> RingAttribution {
        let r = &self.rings[ring];
        // Relaxed: attribution is read after the producer joined (the
        // join is the ordering edge) or as an advisory live peek that
        // does not claim a consistent clock/busy cut.
        RingAttribution {
            ring,
            clock: r.clock.load(Ordering::Relaxed),
            busy: std::array::from_fn(|l| r.busy[l].load(Ordering::Relaxed)),
        }
    }

    /// Clock + busy ledgers for all 64 CPE rings (the MPE ring keeps no
    /// clock and is excluded).
    pub fn attribution(&self) -> Vec<RingAttribution> {
        (0..MPE_RING).map(|c| self.ring_attribution(c)).collect()
    }

    /// Clears every ring, clock, and ledger (between runs on a reused
    /// core group, or between bench arms). Producer threads must be
    /// quiescent.
    pub fn reset(&self) {
        // Relaxed throughout: the contract requires quiescent
        // producers, so reset is single-threaded in practice and the
        // caller's subsequent thread spawns order the zeroed state.
        for r in &self.rings {
            r.head.store(0, Ordering::Relaxed);
            r.clock.store(0, Ordering::Relaxed);
            for b in &r.busy {
                b.store(0, Ordering::Relaxed);
            }
            for s in r.slots.iter() {
                s.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Seeded defect for the model-check suite ([`crate::check_models`]):
/// a mutated copy of the verified recording path above, compiled only
/// under the checker cfg so production builds never contain it. It
/// must be *caught* by `sw-check` — a mutant that passes means the
/// suite lost its teeth.
#[cfg(sw_check)]
impl FlightRecorder {
    /// [`FlightRecorder::record`] with the head publish weakened to
    /// `Relaxed`: a reader that observes the new head is no longer
    /// guaranteed to observe the slot words it covers, so `tail` can
    /// return a stale (zeroed) event.
    pub fn record_mutant_relaxed_publish(&self, ring: usize, kind: EventKind, code: u32, arg: u64) {
        let r = &self.rings[ring];
        let clock = r.clock.load(Ordering::Relaxed);
        let seq = r.head.load(Ordering::Relaxed);
        let base = (seq as usize % self.capacity) * SLOT_WORDS;
        r.slots[base].store(clock, Ordering::Relaxed);
        r.slots[base + 1].store(((kind as u64) << 56) | code as u64, Ordering::Relaxed);
        r.slots[base + 2].store(arg, Ordering::Relaxed);
        // MUTANT: was Ordering::Release.
        r.head.store(seq + 1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_tail_round_trip() {
        let f = FlightRecorder::with_capacity(8);
        f.advance(3, Lane::Dma, 100);
        f.record(3, EventKind::DmaIssue, dma_op_code("pe.get"), 4096);
        f.record_at(3, 40, EventKind::DmaComplete, dma_op_code("pe.get"), 40);
        let tail = f.tail(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 0);
        assert_eq!(tail[0].clock, 100);
        assert_eq!(tail[0].kind, EventKind::DmaIssue);
        assert_eq!(tail[0].arg, 4096);
        assert_eq!(tail[1].seq, 1);
        assert_eq!(tail[1].clock, 40);
        assert_eq!(tail[1].kind, EventKind::DmaComplete);
        assert!(f.tail(4).is_empty(), "rings are independent");
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let f = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            f.record(0, EventKind::RetryAttempt, i as u32, i * 7);
        }
        assert_eq!(f.total(0), 10);
        let tail = f.tail(0);
        assert_eq!(tail.len(), 4);
        assert_eq!(
            tail.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(tail[0].code, 6);
        assert_eq!(tail[3].arg, 63);
    }

    #[test]
    fn disabled_recorder_drops_events_but_keeps_time() {
        let f = FlightRecorder::with_capacity(8);
        f.set_enabled(false);
        f.record(0, EventKind::KernelStart, 0, 0);
        let (t0, t1) = f.advance(0, Lane::Compute, 55);
        assert_eq!((t0, t1), (0, 55));
        assert_eq!(f.total(0), 0);
        assert_eq!(f.clock(0), 55);
        assert_eq!(f.ring_attribution(0).busy[Lane::Compute as usize], 55);
    }

    #[test]
    fn clock_equals_lane_sum_invariant() {
        let f = FlightRecorder::with_capacity(8);
        f.advance(7, Lane::Compute, 10);
        f.advance(7, Lane::Dma, 20);
        f.advance(7, Lane::Mesh, 5);
        assert_eq!(f.jump_to(7, Lane::Barrier, 100), 65);
        assert_eq!(
            f.jump_to(7, Lane::Barrier, 90),
            0,
            "clock never runs backwards"
        );
        let a = f.ring_attribution(7);
        assert_eq!(a.clock, 100);
        assert_eq!(a.total_busy(), a.clock);
        assert_eq!(a.busy, [10, 20, 5, 65]);
    }

    #[test]
    fn reset_clears_everything() {
        let f = FlightRecorder::with_capacity(4);
        f.record(
            MPE_RING,
            EventKind::FaultDecision,
            fault_code::ABFT_DETECT,
            3,
        );
        f.advance(0, Lane::Dma, 9);
        f.reset();
        assert_eq!(f.total(MPE_RING), 0);
        assert_eq!(f.clock(0), 0);
        assert_eq!(f.ring_attribution(0).total_busy(), 0);
    }

    #[test]
    fn codes_round_trip_through_names() {
        for v in 1..=9u8 {
            let k = EventKind::from_u8(v).unwrap();
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        for op in [
            "pe.get",
            "pe.put",
            "bcast.get",
            "row.get",
            "row.put",
            "brow.get",
            "rank.get",
        ] {
            assert_eq!(dma_op_name(dma_op_code(op)), op);
        }
        let c = mesh_episode_code(true, false, mesh_outcome::WEDGED);
        assert_eq!(mesh_episode_name(c), "col-bcast:wedged");
    }
}
