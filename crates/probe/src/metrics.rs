//! Unified metrics registry.
//!
//! One process-global (or test-local) [`Registry`] replaces the ad-hoc
//! counter structs that used to live in `sw-sim` (`DmaCounters`),
//! `sw-mesh` (`MeshCounters`), and `sw-dgemm` (kernel-cache statics).
//! Instruments are registered by name, updated lock-free on atomics,
//! and read back through a single [`Registry::snapshot`] /
//! [`Registry::reset`] API with JSON and CSV export.
//!
//! Naming convention: `subsystem.object.unit`, e.g.
//! `sim.dma.pe.bytes`, `mesh.row.words_sent`,
//! `dgemm.kernel_cache.hits`. Snapshots list entries sorted by name,
//! so exports are deterministic.
//!
//! # Memory-ordering audit
//!
//! Every atomic access in this module is `Relaxed`, deliberately:
//! instruments are *statistics*, never synchronization. No reader
//! derives a happens-before edge from an instrument value — nothing
//! is published under a counter, and no control flow waits on one.
//! The only cross-thread contract is per-counter monotonicity plus
//! atomicity of each RMW (no lost increments), which `Relaxed`
//! `fetch_add` already guarantees. Readers (`snapshot`, `get`)
//! tolerate bounded staleness by design — a snapshot taken mid-run is
//! advisory — and end-of-run reads are ordered by the thread join
//! that precedes them. Multi-word reads (histogram `count`/`sum`/
//! buckets) are likewise not a consistent cut and do not claim to be;
//! `merge` and `reset` run while producers are quiescent.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter (resettable between runs).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero, unregistered (registered ones come
    /// from [`Registry::counter`]).
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Back to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value gauge (signed, settable).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Back to zero.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// `bounds` are inclusive upper edges; an observation lands in the
/// first bucket whose bound is `>= value`, or in the implicit overflow
/// bucket past the last bound. `count` and `sum` track all
/// observations, so the mean survives bucketing.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds (must be
    /// strictly increasing and non-empty).
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.into(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Inclusive upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; one longer than [`Histogram::bounds`] (last
    /// entry is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Back to zero.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) by bucket rank with
    /// linear interpolation inside the containing bucket; `None` when
    /// empty. The estimate lands in the same bucket as the exact
    /// sample quantile, so its error is bounded by that bucket's width
    /// (the unbounded overflow bucket reports its lower edge).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        histogram_quantile(&self.bounds, &self.bucket_counts(), q)
    }

    /// Adds `other`'s observations into `self`. Merging is exactly
    /// equivalent to having recorded the union of both observation
    /// streams. Panics if the bucket bounds differ.
    pub fn merge_from(&self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge requires identical bucket bounds"
        );
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            b.fetch_add(o.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }
}

/// Bucket-rank quantile estimate over `(bounds, buckets)` as stored in
/// a [`Histogram`] or a [`MetricValue::Histogram`]; see
/// [`Histogram::quantile`] for the semantics.
pub fn histogram_quantile(bounds: &[u64], buckets: &[u64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c > 0 && cum + c >= rank {
            let lo = if i == 0 { 0.0 } else { bounds[i - 1] as f64 };
            if i == bounds.len() {
                return Some(lo); // overflow bucket: no upper edge
            }
            let hi = bounds[i] as f64;
            return Some(lo + (hi - lo) * ((rank - cum) as f64 / c as f64));
        }
        cum += c;
    }
    unreachable!("rank {rank} beyond cumulative count {cum}")
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of instruments with one snapshot/reset API.
#[derive(Debug, Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// An empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use. Panics if `name` is already a different instrument
    /// kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `bounds` on first use (later calls ignore `bounds`).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// A point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot {
            entries: map
                .iter()
                .map(|(name, inst)| {
                    let value = match inst {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricValue::Histogram {
                            bounds: h.bounds().to_vec(),
                            buckets: h.bucket_counts(),
                            count: h.count(),
                            sum: h.sum(),
                        },
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }

    /// Zeroes every instrument (registrations are kept).
    pub fn reset(&self) {
        let map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        for inst in map.values() {
            match inst {
                Instrument::Counter(c) => c.reset(),
                Instrument::Gauge(g) => g.reset(),
                Instrument::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The process-global registry most producers publish to.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One instrument's value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state: bucket upper bounds, per-bucket counts (one
    /// extra overflow bucket), observation count, and sum.
    Histogram {
        /// Inclusive upper bounds.
        bounds: Vec<u64>,
        /// Per-bucket counts; `bounds.len() + 1` entries.
        buckets: Vec<u64>,
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
    },
}

impl MetricValue {
    /// Quantile estimate for histogram values (see
    /// [`Histogram::quantile`]); `None` for other kinds or when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        match self {
            MetricValue::Histogram {
                bounds, buckets, ..
            } => histogram_quantile(bounds, buckets, q),
            _ => None,
        }
    }

    /// Combines two values of the same instrument under the same name:
    /// counters add, histograms merge bucket-wise (identical bounds
    /// required), and gauges — point-in-time readings, not streams —
    /// keep `other` (the later snapshot). Panics on kind mismatch.
    fn merged(&self, other: &MetricValue) -> MetricValue {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => MetricValue::Counter(a + b),
            (MetricValue::Gauge(_), MetricValue::Gauge(b)) => MetricValue::Gauge(*b),
            (
                MetricValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum,
                },
                MetricValue::Histogram {
                    bounds: b2,
                    buckets: k2,
                    count: c2,
                    sum: s2,
                },
            ) => {
                assert_eq!(
                    bounds, b2,
                    "histogram merge requires identical bucket bounds"
                );
                MetricValue::Histogram {
                    bounds: bounds.clone(),
                    buckets: buckets.iter().zip(k2).map(|(a, b)| a + b).collect(),
                    count: count + c2,
                    sum: sum + s2,
                }
            }
            _ => panic!("cannot merge metric values of different kinds"),
        }
    }
}

/// A point-in-time copy of a [`Registry`], sorted by metric name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in name order.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Looks up one entry by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value by name (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Merges two snapshots name-wise: counters add, histograms merge
    /// bucket-wise, gauges keep `other`'s reading, and names present
    /// in only one side carry over unchanged. `merge(a, b)` equals a
    /// snapshot of one registry that recorded both observation
    /// streams. Panics if a shared name maps to different instrument
    /// kinds or histogram bounds.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = Vec::with_capacity(self.entries.len().max(other.entries.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            let pick = match (self.entries.get(i), other.entries.get(j)) {
                (Some((a, _)), Some((b, _))) => a.as_str().cmp(b.as_str()),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => unreachable!(),
            };
            match pick {
                std::cmp::Ordering::Less => {
                    out.push(self.entries[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.entries[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let (name, a) = &self.entries[i];
                    out.push((name.clone(), a.merged(&other.entries[j].1)));
                    i += 1;
                    j += 1;
                }
            }
        }
        MetricsSnapshot { entries: out }
    }

    /// JSON object `{name: value, ...}`; histograms expand to an
    /// object with `bounds`/`buckets`/`count`/`sum` arrays.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(&escape_json(name));
            out.push_str("\": ");
            match value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                MetricValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum,
                } => {
                    out.push_str(&format!(
                        "{{\"bounds\": {}, \"buckets\": {}, \"count\": {count}, \"sum\": {sum}}}",
                        json_array(bounds),
                        json_array(buckets),
                    ));
                }
            }
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push('}');
        out
    }

    /// CSV `metric,value` rows; histograms expand to
    /// `name.count`/`name.sum`/`name.le_<bound>`/`name.le_inf` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{name},{v}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{name},{v}\n")),
                MetricValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum,
                } => {
                    out.push_str(&format!("{name}.count,{count}\n{name}.sum,{sum}\n"));
                    for (b, n) in bounds.iter().zip(buckets) {
                        out.push_str(&format!("{name}.le_{b},{n}\n"));
                    }
                    out.push_str(&format!("{name}.le_inf,{}\n", buckets[bounds.len()]));
                }
            }
        }
        out
    }

    /// Aligned two-column text block for terminal footers
    /// (histograms render as `count=N sum=S mean=M`).
    pub fn render(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.entries {
            let v = match value {
                MetricValue::Counter(v) => v.to_string(),
                MetricValue::Gauge(v) => v.to_string(),
                MetricValue::Histogram { count, sum, .. } => {
                    let mean = if *count == 0 {
                        0.0
                    } else {
                        *sum as f64 / *count as f64
                    };
                    format!("count={count} sum={sum} mean={mean:.1}")
                }
            };
            out.push_str(&format!("  {name:<width$}  {v}\n"));
        }
        out
    }
}

fn json_array(vals: &[u64]) -> String {
    let inner: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
    format!("[{}]", inner.join(", "))
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("a.count");
        c.inc();
        c.add(4);
        let g = r.gauge("a.gauge");
        g.set(-3);
        g.add(1);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.count"), Some(5));
        assert_eq!(snap.get("a.gauge"), Some(&MetricValue::Gauge(-2)));
        r.reset();
        assert_eq!(r.snapshot().counter("a.count"), Some(0));
    }

    #[test]
    fn same_name_returns_same_instrument() {
        let r = Registry::new();
        r.counter("x").inc();
        r.counter("x").inc();
        assert_eq!(r.snapshot().counter("x"), Some(2));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 2, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5122);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.bucket_counts(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn snapshot_sorted_and_exports() {
        let r = Registry::new();
        r.counter("z.last").add(7);
        r.counter("a.first").add(1);
        r.histogram("m.hist", &[8, 64]).observe(9);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.hist", "z.last"]);
        let json = snap.to_json();
        assert!(json.contains("\"a.first\": 1"));
        assert!(json.contains("\"buckets\": [0, 1, 0]"));
        let csv = snap.to_csv();
        assert!(csv.starts_with("metric,value\n"));
        assert!(csv.contains("m.hist.le_8,0\n"));
        assert!(csv.contains("m.hist.le_64,1\n"));
        assert!(csv.contains("m.hist.le_inf,0\n"));
        assert!(csv.contains("z.last,7\n"));
        let text = snap.render();
        assert!(text.contains("a.first"));
        assert!(text.contains("count=1 sum=9 mean=9.0"));
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("probe.test.global").add(2);
        assert!(global().snapshot().counter("probe.test.global").unwrap() >= 2);
    }
}
