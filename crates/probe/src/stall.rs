//! Per-pipe stall attribution vocabulary.
//!
//! The `sw-isa` interpreter models two in-order issue pipes (P0 =
//! floating point, P1 = everything else). With probes on, it
//! classifies **every** simulated cycle of **each** pipe into exactly
//! one bucket, so for each pipe
//!
//! ```text
//! issue + raw + load_use + pipe_conflict + loop_overhead == total cycles
//! ```
//!
//! holds exactly (enforced by [`StallReport::check`] and pinned by
//! property tests). The buckets:
//!
//! * **issue** — a cycle this pipe issued an instruction;
//! * **raw** — waiting on an in-flight producer that is *not* a load
//!   (vmad→vmad dependence chains, integer address arithmetic);
//! * **load_use** — waiting on an in-flight LDM/mesh load result (the
//!   4-cycle load-use window §5.3 schedules around);
//! * **pipe_conflict** — the pipe was free and no operand was
//!   outstanding, but the in-order front end was blocked elsewhere
//!   (the other pipe's structural hazard, issue-width limits);
//! * **loop_overhead** — pipeline refill after a taken branch
//!   (`BRANCH_TAKEN_PENALTY`), the per-iteration loop tax.

/// Why a pipe did not issue on a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// Read-after-write on a non-load producer.
    Raw,
    /// Read-after-write on an in-flight load.
    LoadUse,
    /// Front end blocked: structural hazard or issue-width limit.
    PipeConflict,
    /// Post-branch refill (taken-branch penalty).
    LoopOverhead,
}

impl StallKind {
    /// All kinds, in table order.
    pub const ALL: [StallKind; 4] = [
        StallKind::Raw,
        StallKind::LoadUse,
        StallKind::PipeConflict,
        StallKind::LoopOverhead,
    ];

    /// Short label for tables.
    pub fn name(self) -> &'static str {
        match self {
            StallKind::Raw => "raw",
            StallKind::LoadUse => "load-use",
            StallKind::PipeConflict => "pipe-conflict",
            StallKind::LoopOverhead => "loop-overhead",
        }
    }
}

/// Cycle accounting for one issue pipe over a full run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeBreakdown {
    /// Cycles this pipe issued an instruction.
    pub issue: u64,
    /// Cycles stalled on a non-load RAW dependence.
    pub raw: u64,
    /// Cycles stalled on an in-flight load result.
    pub load_use: u64,
    /// Cycles idle behind the in-order front end.
    pub pipe_conflict: u64,
    /// Cycles refilling after taken branches.
    pub loop_overhead: u64,
}

impl PipeBreakdown {
    /// Adds `n` cycles to the `kind` bucket.
    #[inline]
    pub fn add(&mut self, kind: StallKind, n: u64) {
        match kind {
            StallKind::Raw => self.raw += n,
            StallKind::LoadUse => self.load_use += n,
            StallKind::PipeConflict => self.pipe_conflict += n,
            StallKind::LoopOverhead => self.loop_overhead += n,
        }
    }

    /// The `kind` bucket's value.
    pub fn get(&self, kind: StallKind) -> u64 {
        match kind {
            StallKind::Raw => self.raw,
            StallKind::LoadUse => self.load_use,
            StallKind::PipeConflict => self.pipe_conflict,
            StallKind::LoopOverhead => self.loop_overhead,
        }
    }

    /// Non-issue cycles.
    pub fn stalls(&self) -> u64 {
        self.raw + self.load_use + self.pipe_conflict + self.loop_overhead
    }

    /// All attributed cycles; equals the run's total cycle count when
    /// the attribution is consistent.
    pub fn total(&self) -> u64 {
        self.issue + self.stalls()
    }
}

impl std::ops::AddAssign for PipeBreakdown {
    fn add_assign(&mut self, rhs: PipeBreakdown) {
        self.issue += rhs.issue;
        self.raw += rhs.raw;
        self.load_use += rhs.load_use;
        self.pipe_conflict += rhs.pipe_conflict;
        self.loop_overhead += rhs.loop_overhead;
    }
}

/// Full-run attribution: one [`PipeBreakdown`] per pipe plus the
/// executor's total cycle count they must both sum to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallReport {
    /// Index 0 = P0 (floating point), index 1 = P1.
    pub pipes: [PipeBreakdown; 2],
    /// Total simulated cycles of the run (`ExecReport::cycles`).
    pub cycles: u64,
}

impl StallReport {
    /// Stall cycles summed over both pipes and all kinds.
    pub fn stall_cycles(&self) -> u64 {
        self.pipes[0].stalls() + self.pipes[1].stalls()
    }

    /// Sum of one kind over both pipes.
    pub fn kind_cycles(&self, kind: StallKind) -> u64 {
        self.pipes[0].get(kind) + self.pipes[1].get(kind)
    }

    /// Issue-slot cycles summed over both pipes (a dual-issue cycle
    /// counts once per pipe, so this equals the instruction count).
    pub fn issue_cycles(&self) -> u64 {
        self.pipes[0].issue + self.pipes[1].issue
    }

    /// The attribution of `n` back-to-back executions of the same
    /// program: every bucket (and the total) scales linearly, because
    /// each run starts from a drained scoreboard. This is the batched
    /// accounting a hot-kernel trace uses — a compiled kernel executed
    /// `n` times reports exactly `n` times its per-run attribution,
    /// with the per-cycle invariant preserved.
    pub fn scaled(&self, n: u64) -> StallReport {
        let scale = |p: &PipeBreakdown| PipeBreakdown {
            issue: p.issue * n,
            raw: p.raw * n,
            load_use: p.load_use * n,
            pipe_conflict: p.pipe_conflict * n,
            loop_overhead: p.loop_overhead * n,
        };
        StallReport {
            pipes: [scale(&self.pipes[0]), scale(&self.pipes[1])],
            cycles: self.cycles * n,
        }
    }

    /// Verifies the defining invariant: each pipe's buckets sum
    /// exactly to `cycles`.
    pub fn check(&self) -> Result<(), String> {
        for (i, p) in self.pipes.iter().enumerate() {
            if p.total() != self.cycles {
                return Err(format!(
                    "pipe P{i} attribution {} != total cycles {} ({p:?})",
                    p.total(),
                    self.cycles
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_sum_to_total() {
        let mut p = PipeBreakdown {
            issue: 10,
            ..Default::default()
        };
        p.add(StallKind::Raw, 5);
        p.add(StallKind::LoadUse, 4);
        p.add(StallKind::PipeConflict, 3);
        p.add(StallKind::LoopOverhead, 2);
        assert_eq!(p.stalls(), 14);
        assert_eq!(p.total(), 24);
        for k in StallKind::ALL {
            assert!(p.get(k) > 0);
        }
    }

    #[test]
    fn check_enforces_invariant() {
        let mut r = StallReport {
            cycles: 24,
            ..Default::default()
        };
        r.pipes[0].issue = 10;
        r.pipes[0].raw = 14;
        r.pipes[1].pipe_conflict = 24;
        assert!(r.check().is_ok());
        assert_eq!(r.stall_cycles(), 38);
        assert_eq!(r.kind_cycles(StallKind::Raw), 14);
        assert_eq!(r.issue_cycles(), 10);
        r.cycles = 25;
        assert!(r.check().is_err());
    }

    #[test]
    fn scaled_preserves_invariant_and_accumulates() {
        let mut r = StallReport {
            cycles: 24,
            ..Default::default()
        };
        r.pipes[0].issue = 10;
        r.pipes[0].raw = 14;
        r.pipes[1].pipe_conflict = 24;
        let s = r.scaled(3);
        assert!(s.check().is_ok());
        assert_eq!(s.cycles, 72);
        assert_eq!(s.pipes[0].issue, 30);
        assert_eq!(s.pipes[0].raw, 42);
        // AddAssign agrees with scaled: n accumulations == scaled(n).
        let mut acc = PipeBreakdown::default();
        for _ in 0..3 {
            acc += r.pipes[0];
        }
        assert_eq!(acc, s.pipes[0]);
        assert_eq!(r.scaled(0), StallReport::default());
    }

    #[test]
    fn kind_names_stable() {
        let names: Vec<&str> = StallKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["raw", "load-use", "pipe-conflict", "loop-overhead"]
        );
    }
}
