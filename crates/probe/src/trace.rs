//! Simulated-time event tracer.
//!
//! Producers emit *spans* — named intervals stamped in simulated
//! cycles — onto *tracks* (one per CPE, DMA engine, or mesh link).
//! A [`Tracer`] is a cheap cloneable handle; the disabled tracer is a
//! `None` behind a single branch, so instrumented code pays one
//! well-predicted compare per probe site when tracing is off.
//!
//! Collected [`TraceData`] exports to the Chrome trace-event JSON
//! format (`{"traceEvents": [...]}` with `B`/`E` duration pairs),
//! which Perfetto and `chrome://tracing` load directly. Timestamps are
//! raw simulated cycles written as integers — deterministic and
//! byte-stable — with one Perfetto "microsecond" standing in for one
//! CPE cycle (1.45 GHz; wall time is a simulator output, not an event
//! clock). Processes group tracks: each distinct process name becomes
//! a `pid`, each track a `tid` with a `thread_name` metadata record.

use crate::metrics::escape_json;
use std::sync::{Arc, Mutex};

/// Identifier of a track inside one [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(u32);

/// Sentinel returned by a disabled tracer; spans sent to it are
/// dropped at the `is_enabled` branch before it is ever read.
const NO_TRACK: TrackId = TrackId(u32::MAX);

/// One timeline (a Perfetto "thread"): a process group plus a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Track {
    /// Grouping name (Perfetto process), e.g. `"timing-dag"`,
    /// `"cpe-dma"`, `"mesh"`.
    pub process: &'static str,
    /// Track name (Perfetto thread), e.g. `"CPE (3,5)"`.
    pub name: String,
}

/// One simulated-time interval on a track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The track this span lives on.
    pub track: TrackId,
    /// Event category (Chrome `cat`), e.g. `"dma"`, `"compute"`.
    pub cat: &'static str,
    /// Event name, e.g. `"load A"`, `"pe.get"`.
    pub name: &'static str,
    /// Simulated start cycle.
    pub start: u64,
    /// Simulated end cycle (`>= start`).
    pub end: u64,
    /// Extra key/value payload (Chrome `args`), e.g. `("bytes", n)`.
    pub args: Vec<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct TraceState {
    tracks: Vec<Track>,
    spans: Vec<Span>,
}

/// Cheap cloneable handle to a span collector; disabled by default.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceState>>>,
}

impl Tracer {
    /// A tracer that drops everything (the near-free default).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer that collects spans for later [`Tracer::take`].
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TraceState::default()))),
        }
    }

    /// The one branch every probe site pays when tracing is off.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers a track; on a disabled tracer this returns a
    /// sentinel id that later spans silently drop.
    pub fn track(&self, process: &'static str, name: impl Into<String>) -> TrackId {
        match &self.inner {
            None => NO_TRACK,
            Some(inner) => {
                let mut st = inner.lock().unwrap_or_else(|e| e.into_inner());
                let id = TrackId(st.tracks.len() as u32);
                st.tracks.push(Track {
                    process,
                    name: name.into(),
                });
                id
            }
        }
    }

    /// Emits a span with no payload.
    #[inline]
    pub fn span(
        &self,
        track: TrackId,
        cat: &'static str,
        name: &'static str,
        start: u64,
        end: u64,
    ) {
        if self.is_enabled() {
            self.push(track, cat, name, start, end, &[]);
        }
    }

    /// Emits a span with a key/value payload.
    #[inline]
    pub fn span_args(
        &self,
        track: TrackId,
        cat: &'static str,
        name: &'static str,
        start: u64,
        end: u64,
        args: &[(&'static str, u64)],
    ) {
        if self.is_enabled() {
            self.push(track, cat, name, start, end, args);
        }
    }

    fn push(
        &self,
        track: TrackId,
        cat: &'static str,
        name: &'static str,
        start: u64,
        end: u64,
        args: &[(&'static str, u64)],
    ) {
        debug_assert!(end >= start, "span {name:?} ends before it starts");
        let inner = self.inner.as_ref().expect("checked by caller");
        let mut st = inner.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(
            (track.0 as usize) < st.tracks.len(),
            "span {name:?} on unregistered track"
        );
        st.spans.push(Span {
            track,
            cat,
            name,
            start,
            end,
            args: args.to_vec(),
        });
    }

    /// Drains everything collected so far (tracks are kept registered
    /// so the handle stays usable).
    pub fn take(&self) -> TraceData {
        match &self.inner {
            None => TraceData::default(),
            Some(inner) => {
                let mut st = inner.lock().unwrap_or_else(|e| e.into_inner());
                TraceData {
                    tracks: st.tracks.clone(),
                    spans: std::mem::take(&mut st.spans),
                }
            }
        }
    }
}

/// The tracks and spans drained from a [`Tracer`].
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// Registered tracks, indexed by [`TrackId`].
    pub tracks: Vec<Track>,
    /// Collected spans in emission order.
    pub spans: Vec<Span>,
}

impl TraceData {
    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Largest span end cycle (0 when empty).
    pub fn max_cycle(&self) -> u64 {
        self.spans.iter().map(|s| s.end).max().unwrap_or(0)
    }

    /// Serializes to Chrome trace-event JSON.
    ///
    /// Deterministic and byte-stable for a given trace: metadata
    /// records first, then all duration events sorted by `(ts, phase,
    /// pid, tid)` with `E` before `B` at equal timestamps (so
    /// back-to-back spans on one track close before the next opens).
    /// Zero-length spans become instant (`i`) events. `ts` is in raw
    /// simulated cycles.
    pub fn to_chrome_json(&self) -> String {
        // Map each distinct process name (in track order) to a pid,
        // and each track to a tid within its process.
        let mut processes: Vec<&'static str> = Vec::new();
        let mut track_ids: Vec<(u32, u32)> = Vec::new(); // (pid, tid) per track
        for t in &self.tracks {
            let pid = match processes.iter().position(|&p| p == t.process) {
                Some(i) => i,
                None => {
                    processes.push(t.process);
                    processes.len() - 1
                }
            } as u32
                + 1;
            let tid = track_ids.iter().filter(|&&(p, _)| p == pid).count() as u32 + 1;
            track_ids.push((pid, tid));
        }

        let mut out = String::from("{\"traceEvents\": [\n");
        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  ");
            out.push_str(&line);
        };

        for (i, p) in processes.iter().enumerate() {
            emit(
                format!(
                    "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": 0, \"args\": {{\"name\": \"{}\"}}}}",
                    i + 1,
                    escape_json(p)
                ),
                &mut out,
            );
        }
        for (t, &(pid, tid)) in self.tracks.iter().zip(&track_ids) {
            emit(
                format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"name\": \"{}\"}}}}",
                    escape_json(&t.name)
                ),
                &mut out,
            );
        }

        // (ts, phase-rank, pid, tid, seq, text). Rank orders E < i < B
        // at equal timestamps.
        let mut events: Vec<(u64, u8, u32, u32, usize, String)> = Vec::new();
        for (seq, s) in self.spans.iter().enumerate() {
            let (pid, tid) = track_ids[s.track.0 as usize];
            let head = format!(
                "\"name\": \"{}\", \"cat\": \"{}\", \"pid\": {pid}, \"tid\": {tid}",
                escape_json(s.name),
                escape_json(s.cat)
            );
            let args = if s.args.is_empty() {
                String::new()
            } else {
                let kv: Vec<String> = s
                    .args
                    .iter()
                    .map(|(k, v)| format!("\"{}\": {v}", escape_json(k)))
                    .collect();
                format!(", \"args\": {{{}}}", kv.join(", "))
            };
            if s.start == s.end {
                events.push((
                    s.start,
                    1,
                    pid,
                    tid,
                    seq,
                    format!(
                        "{{{head}, \"ph\": \"i\", \"ts\": {}, \"s\": \"t\"{args}}}",
                        s.start
                    ),
                ));
            } else {
                events.push((
                    s.start,
                    2,
                    pid,
                    tid,
                    seq,
                    format!("{{{head}, \"ph\": \"B\", \"ts\": {}{args}}}", s.start),
                ));
                events.push((
                    s.end,
                    0,
                    pid,
                    tid,
                    seq,
                    format!("{{{head}, \"ph\": \"E\", \"ts\": {}}}", s.end),
                ));
            }
        }
        events.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
                .then(a.3.cmp(&b.3))
                .then(a.4.cmp(&b.4))
        });
        for (_, _, _, _, _, text) in events {
            emit(text, &mut out);
        }
        out.push_str("\n], \"displayTimeUnit\": \"ns\", \"otherData\": {\"clock\": \"simulated cycles @ 1.45 GHz (1 us = 1 cycle)\"}}\n");
        out
    }
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total events, metadata included.
    pub events: usize,
    /// Completed `B`/`E` pairs.
    pub pairs: usize,
}

/// Checks that `json` is structurally valid Chrome trace-event JSON:
/// a `traceEvents` array whose events carry the required keys
/// (`ph`, `pid`, `tid`, and `ts` + `name` on duration events), with
/// `ts` monotonically non-decreasing over the file and every `B`
/// matched by an `E` on the same `(pid, tid)` stack.
///
/// This is a schema check over the exporter's output shape (one event
/// object per `{...}` group), not a general JSON parser.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceSummary, String> {
    let start = json
        .find("\"traceEvents\"")
        .ok_or("missing \"traceEvents\" key")?;
    let open = json[start..].find('[').ok_or("missing traceEvents array")? + start;
    let body = &json[open + 1..];

    let mut events = 0usize;
    let mut pairs = 0usize;
    let mut last_ts: Option<u64> = None;
    // Open-span depth per (pid, tid).
    let mut open_spans: Vec<((u64, u64), usize)> = Vec::new();

    let mut rest = body;
    while let Some(obj_start) = rest.find('{') {
        // The array closes before the next object starts.
        if rest[..obj_start].contains(']') {
            break;
        }
        let obj_end = match object_end(&rest[obj_start..]) {
            Some(n) => obj_start + n,
            None => return Err("unterminated event object".into()),
        };
        let obj = &rest[obj_start..=obj_end];
        events += 1;

        let ph = str_field(obj, "ph").ok_or_else(|| format!("event missing \"ph\": {obj}"))?;
        let pid = num_field(obj, "pid").ok_or_else(|| format!("event missing \"pid\": {obj}"))?;
        let tid = num_field(obj, "tid").ok_or_else(|| format!("event missing \"tid\": {obj}"))?;
        if str_field(obj, "name").is_none() {
            return Err(format!("event missing \"name\": {obj}"));
        }
        if ph != "M" {
            let ts = num_field(obj, "ts").ok_or_else(|| format!("event missing \"ts\": {obj}"))?;
            if let Some(prev) = last_ts {
                if ts < prev {
                    return Err(format!("ts went backwards: {prev} -> {ts} at {obj}"));
                }
            }
            last_ts = Some(ts);
            let key = (pid, tid);
            match ph.as_str() {
                "B" => match open_spans.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, depth)) => *depth += 1,
                    None => open_spans.push((key, 1)),
                },
                "E" => {
                    let slot = open_spans
                        .iter_mut()
                        .find(|(k, _)| *k == key)
                        .filter(|(_, depth)| *depth > 0)
                        .ok_or_else(|| {
                            format!("\"E\" without open \"B\" on pid={pid} tid={tid}")
                        })?;
                    slot.1 -= 1;
                    pairs += 1;
                }
                "i" | "X" => {}
                other => return Err(format!("unsupported phase {other:?}")),
            }
        }
        rest = &rest[obj_end + 1..];
    }

    if let Some(((pid, tid), depth)) = open_spans.iter().find(|(_, d)| *d > 0) {
        return Err(format!(
            "{depth} unmatched \"B\" event(s) on pid={pid} tid={tid}"
        ));
    }
    Ok(ChromeTraceSummary { events, pairs })
}

/// Byte offset of the `}` closing the object that starts at `s[0]`
/// (which must be `{`), respecting nesting and strings.
fn object_end(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Value of a `"key": "string"` field in a flat-ish JSON object.
fn str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = obj.find(&pat)? + pat.len();
    let rest = &obj[at..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Value of a `"key": 123` field in a flat-ish JSON object.
fn num_field(obj: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let at = obj.find(&pat)? + pat.len();
    let digits: String = obj[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_empty_and_cheap() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let tr = t.track("p", "x");
        t.span(tr, "c", "n", 0, 10);
        assert!(t.take().is_empty());
    }

    #[test]
    fn spans_collect_and_drain() {
        let t = Tracer::enabled();
        let tr = t.track("proc", "track0");
        t.span_args(tr, "dma", "load", 0, 100, &[("bytes", 4096)]);
        t.span(tr, "dma", "store", 100, 150);
        let data = t.take();
        assert_eq!(data.tracks.len(), 1);
        assert_eq!(data.spans.len(), 2);
        assert_eq!(data.max_cycle(), 150);
        assert_eq!(data.spans[0].args, vec![("bytes", 4096)]);
        // Drained; handle still usable.
        assert!(t.take().is_empty());
        t.span(tr, "dma", "more", 150, 160);
        assert_eq!(t.take().spans.len(), 1);
    }

    #[test]
    fn chrome_json_is_valid_and_ordered() {
        let t = Tracer::enabled();
        let a = t.track("timing-dag", "DMA");
        let b = t.track("timing-dag", "CPEs");
        let c = t.track("mesh", "row 0");
        // Emit out of order; back-to-back on one track; zero-length.
        t.span(b, "compute", "k0", 100, 400);
        t.span(a, "dma", "load0", 0, 100);
        t.span(a, "dma", "load1", 100, 200);
        t.span(c, "mesh", "bcast", 150, 150);
        let json = t.take().to_chrome_json();
        let summary = validate_chrome_trace(&json).expect("valid trace");
        // 2 process_name + 3 thread_name + 3 B/E pairs + 1 instant.
        assert_eq!(summary.events, 2 + 3 + 6 + 1);
        assert_eq!(summary.pairs, 3);
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\": \"i\""));
        // E of load0 at ts=100 must precede B of load1 at ts=100.
        let e = json
            .find("\"name\": \"load0\", \"cat\": \"dma\", \"pid\": 1, \"tid\": 1, \"ph\": \"E\"")
            .unwrap();
        let b1 = json.find("\"name\": \"load1\"").unwrap();
        assert!(e < b1, "close before reopen at a shared boundary");
    }

    #[test]
    fn determinism_same_trace_same_bytes() {
        let build = || {
            let t = Tracer::enabled();
            let a = t.track("p", "t1");
            let b = t.track("q", "t2");
            t.span_args(a, "c", "x", 5, 9, &[("bytes", 1), ("run", 2)]);
            t.span(b, "c", "y", 0, 5);
            t.take().to_chrome_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn validator_rejects_backwards_ts() {
        let bad = r#"{"traceEvents": [
  {"name": "a", "cat": "c", "pid": 1, "tid": 1, "ph": "B", "ts": 10},
  {"name": "a", "cat": "c", "pid": 1, "tid": 1, "ph": "E", "ts": 5}
]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("backwards"));
    }

    #[test]
    fn validator_rejects_unmatched_b() {
        let bad = r#"{"traceEvents": [
  {"name": "a", "cat": "c", "pid": 1, "tid": 1, "ph": "B", "ts": 10}
]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("unmatched"));
    }

    #[test]
    fn validator_rejects_missing_keys() {
        let bad = r#"{"traceEvents": [
  {"name": "a", "cat": "c", "pid": 1, "ph": "B", "ts": 10}
]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("tid"));
    }
}
