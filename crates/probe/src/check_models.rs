//! Model-check suite for the flight recorder (compiled only under
//! `--cfg sw_check`, where [`crate::flight`] runs on the
//! checker-instrumented types).
//!
//! The correct models prove, across every explored interleaving under
//! the simulated C11 memory model: a reader that observes a ring's
//! head observes the slot words it covers (the live-peek contract of
//! [`crate::flight::FlightRecorder::tail`]), and the per-ring
//! `clock == Σ busy` ledger invariant holds after the producer joins.
//! The publish property is paired with a seeded-defect mutant (see the
//! `cfg(sw_check)` block in `flight.rs`) that the checker must catch.

use crate::flight::{dma_op_code, EventKind, FlightRecorder, Lane};
use std::sync::Arc;
use sw_check::models::{Expect, NamedModel};
use sw_check::{thread, Config, ViolationKind};

fn no_tune(_: &mut Config) {}

/// Producer records one event; a live reader that sees `total() == 1`
/// must read back the exact event, in every interleaving.
fn flight_publish() {
    let f = Arc::new(FlightRecorder::with_capacity(2));
    let w = f.clone();
    let t = thread::spawn(move || {
        w.advance(0, Lane::Dma, 100);
        w.record(0, EventKind::DmaIssue, dma_op_code("pe.get"), 4096);
    });
    while f.total(0) == 0 {
        thread::yield_now();
    }
    let tail = f.tail(0);
    assert_eq!(tail.len(), 1);
    assert_eq!(
        tail[0].clock, 100,
        "slot words must be ordered before the head"
    );
    assert_eq!(tail[0].kind, EventKind::DmaIssue);
    assert_eq!(tail[0].arg, 4096);
    t.join().unwrap();
}

/// After the producer joins, its ring's busy ledger must sum exactly
/// to its clock — including across a barrier-release `jump_to`.
fn flight_clock_ledger() {
    let f = Arc::new(FlightRecorder::with_capacity(2));
    let w = f.clone();
    let t = thread::spawn(move || {
        w.advance(0, Lane::Compute, 10);
        w.advance(0, Lane::Dma, 5);
        assert_eq!(w.jump_to(0, Lane::Barrier, 20), 5);
        assert_eq!(
            w.jump_to(0, Lane::Barrier, 3),
            0,
            "clocks never run backwards"
        );
    });
    t.join().unwrap();
    let a = f.ring_attribution(0);
    assert_eq!(a.clock, 20);
    assert_eq!(
        a.total_busy(),
        a.clock,
        "clock == sum(busy) ledger invariant"
    );
    assert_eq!(a.busy[Lane::Compute as usize], 10);
    assert_eq!(a.busy[Lane::Dma as usize], 5);
    assert_eq!(a.busy[Lane::Barrier as usize], 5);
}

/// Mutant: head published with `Relaxed` — the reader can see the head
/// move while the slot words are still stale zeros.
fn flight_mutant_relaxed_publish() {
    let f = Arc::new(FlightRecorder::with_capacity(2));
    let w = f.clone();
    let t = thread::spawn(move || {
        w.advance(0, Lane::Dma, 100);
        w.record_mutant_relaxed_publish(0, EventKind::DmaIssue, dma_op_code("pe.get"), 4096);
    });
    while f.total(0) == 0 {
        thread::yield_now();
    }
    let tail = f.tail(0);
    assert_eq!(tail.len(), 1);
    assert_eq!(
        tail[0].clock, 100,
        "slot words must be ordered before the head"
    );
    t.join().unwrap();
}

/// The probe crate's registered models, consumed by the `sw-check`
/// binary and the crate's own `model_check` integration test.
pub fn models() -> Vec<NamedModel> {
    vec![
        NamedModel {
            name: "probe/flight-publish",
            about: "a reader that sees the head sees the slot words it covers",
            expect: Expect::Pass,
            tune: no_tune,
            body: flight_publish,
        },
        NamedModel {
            name: "probe/flight-clock-ledger",
            about: "clock == sum(busy) per ring after the producer joins",
            expect: Expect::Pass,
            tune: no_tune,
            body: flight_clock_ledger,
        },
        NamedModel {
            name: "probe/flight-mutant-relaxed-publish",
            about: "SEEDED DEFECT: head published Relaxed; reader sees stale slots",
            expect: Expect::Violation(ViolationKind::Assert),
            tune: no_tune,
            body: flight_mutant_relaxed_publish,
        },
    ]
}
