//! `sw-probe` — observability for the SW26010 simulator stack.
//!
//! Three independent instruments, all `std`-only:
//!
//! * [`trace`] — a **simulated-time event tracer**. Producers (the
//!   timing DAG, the functional DMA engines, the register mesh) emit
//!   spans stamped in *simulated cycles*, grouped into named tracks.
//!   The collected [`trace::TraceData`] exports as Chrome-trace-event
//!   JSON (loadable in Perfetto, one track per CPE / DMA engine / mesh
//!   link) or as the classic text Gantt via [`gantt`].
//! * [`metrics`] — a **metrics registry**: counters, gauges, and
//!   fixed-bucket histograms on plain atomics, registered by name in a
//!   process-global (or local) [`metrics::Registry`] with one
//!   snapshot/reset API and JSON/CSV export. It absorbs the previously
//!   scattered `DmaCounters`, `MeshCounters`, and kernel-cache stats.
//! * [`flight`] — an always-on **black-box flight recorder**: per-CPE
//!   lock-free bounded rings of compact binary events (kernel, DMA,
//!   mesh, barrier, fault, retry) plus the authoritative per-CPE
//!   simulated clock with per-[`flight::Lane`] busy attribution.
//!   Unlike the tracer it records by default; its tails feed the
//!   diagnostics bundles `sw-dgemm` emits on structured failures
//!   (rendered by the `sw-diagnose` bin, parsed back via [`json`]).
//! * [`stall`] — the vocabulary for **per-pipe stall attribution** in
//!   the `sw-isa` interpreter: every simulated cycle of a kernel run
//!   is classified as issue, RAW stall, load-use stall, pipe conflict,
//!   or loop overhead, per pipe, summing exactly to the reported total.
//!
//! Probes are near-free when disabled: a disabled [`trace::Tracer`] is
//! a `None` behind one branch, and the interpreter's attribution path
//! is compiled out via a const generic, so the fig6 sweep regresses
//! <2% with probes off (asserted by `engine_bench`).

#[cfg(sw_check)]
pub mod check_models;
pub mod flight;
pub mod gantt;
pub mod json;
pub mod metrics;
pub mod stall;
pub mod trace;

pub use flight::{EventKind, FlightEvent, FlightRecorder, Lane, RingAttribution};
pub use metrics::{Counter, Gauge, Histogram, MetricValue, MetricsSnapshot, Registry};
pub use stall::{PipeBreakdown, StallKind, StallReport};
pub use trace::{Span, TraceData, Tracer, Track, TrackId};
