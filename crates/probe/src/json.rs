//! A minimal JSON reader (and string escaper) for diagnostics bundles.
//!
//! The workspace is std-only by design, so bundles are written with
//! hand-rolled formatting and read back with this recursive-descent
//! parser. It accepts exactly the JSON this repo emits (objects,
//! arrays, strings with the standard escapes, numbers, booleans,
//! null) — it is a bundle reader, not a general-purpose validator,
//! though it does reject malformed input with a positioned error.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion order is not preserved; bundle readers key by name.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric field as `u64`; rounds through `f64`, exact to 2^53 —
    /// plenty for simulated-cycle counts in bundles.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse failure with a byte offset into the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Escapes `s` for embedding in a JSON string literal (no quotes
/// added). Shared by every bundle/metrics writer in the workspace.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.i,
            message: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(a));
        }
        loop {
            self.skip_ws();
            a.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(a));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs are not emitted by our
                            // writers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.b.len() && (self.b[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            Value::parse(r#"{"a": [1, 2.5, -3e2], "b": {"s": "x\ny\"z\\", "t": true, "n": null}}"#)
                .unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        let b = v.get("b").unwrap();
        assert_eq!(b.get("s").unwrap().as_str(), Some("x\ny\"z\\"));
        assert_eq!(b.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(b.get("n"), Some(&Value::Null));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}π—∑";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = Value::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"abc",
            "1 2",
            "{\"a\":1}x",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
        assert_eq!(Value::parse("[]").unwrap(), Value::Arr(vec![]));
    }
}
