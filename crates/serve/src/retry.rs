//! Seeded exponential backoff and the retryability taxonomy.
//!
//! Backoff delays are a pure function of `(policy seed, request id,
//! attempt)` — no wall clock, no thread timing — so a replay of the
//! same workload produces the same retry schedule, and tests can pin
//! schedules exactly. Delays grow ×2 per attempt with deterministic
//! jitter in `[0.5, 1.0]` of the exponential step, hard-capped at
//! `cap`.

use std::time::Duration;
use sw_dgemm::gen::SplitMix64;
use sw_dgemm::DgemmError;

/// Retry policy of one service: how many attempts a request gets and
/// how long workers back off between them.
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    /// First retry's nominal delay (attempt 1).
    pub base: Duration,
    /// Hard ceiling on any single delay.
    pub cap: Duration,
    /// Total attempts per request (first try included); 1 disables
    /// retries.
    pub max_attempts: u32,
    /// Seed folded with the request id into the jitter.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_micros(200),
            cap: Duration::from_millis(20),
            max_attempts: 3,
            seed: 0x5eed_0bac_c0ff_ee01,
        }
    }
}

impl BackoffPolicy {
    /// The delay before the given retry (`attempt` is 1-based: the
    /// delay taken *before* attempt N+1, after attempt N failed).
    /// Deterministic in `(seed, request_id, attempt)`.
    pub fn delay(&self, request_id: u64, attempt: u32) -> Duration {
        let attempt = attempt.max(1);
        let base = self.base.as_nanos().max(1) as u64;
        // base · 2^(attempt-1), saturating well before overflow.
        let exp = base.saturating_mul(1u64 << (attempt - 1).min(32));
        let mut rng = SplitMix64::new(
            self.seed ^ request_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(attempt),
        );
        let frac = 0.5 + 0.5 * rng.next_f64();
        let jittered = (exp as f64 * frac) as u64;
        Duration::from_nanos(jittered).min(self.cap)
    }

    /// The full retry schedule a request would see if every attempt
    /// failed: the delays before attempts 2..=max_attempts.
    pub fn schedule(&self, request_id: u64) -> Vec<Duration> {
        (1..self.max_attempts)
            .map(|a| self.delay(request_id, a))
            .collect()
    }
}

/// Whether an error class is worth another attempt (possibly on a
/// different core group). Transient memory faults, wedged meshes, and
/// uncorrected ABFT mismatches are environment-attributable and
/// retryable; malformed requests and cancellations are not — retrying
/// them wastes capacity on a deterministic outcome.
pub fn is_retryable(err: &DgemmError) -> bool {
    match err {
        DgemmError::Mem(_) | DgemmError::MeshDeadlock { .. } | DgemmError::AbftMismatch { .. } => {
            true
        }
        DgemmError::BadParams(_)
        | DgemmError::BadDims(_)
        | DgemmError::Lint(_)
        | DgemmError::Cancelled { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(5),
            max_attempts: 6,
            seed: 42,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let p = policy();
        assert_eq!(p.schedule(7), p.schedule(7));
        // Distinct requests get decorrelated jitter.
        assert_ne!(p.schedule(7), p.schedule(8));
        // A different seed moves every request's schedule.
        let q = BackoffPolicy { seed: 43, ..p };
        assert_ne!(p.schedule(7), q.schedule(7));
    }

    #[test]
    fn delays_grow_and_respect_the_cap() {
        let p = policy();
        let sched = p.schedule(3);
        assert_eq!(sched.len() as u32, p.max_attempts - 1);
        for d in &sched {
            assert!(*d <= p.cap, "delay {d:?} exceeds cap {:?}", p.cap);
            assert!(*d >= p.base / 2, "jitter floor is half the step");
        }
        // The exponential trend holds until the cap bites: attempt 5's
        // nominal step (1.6 ms) still fits under the 5 ms cap, so the
        // last delay must exceed the first (16× step vs ≤2× jitter).
        assert!(sched[sched.len() - 1] > sched[0]);
        // And a tiny cap flattens everything.
        let tight = BackoffPolicy {
            cap: Duration::from_micros(80),
            ..p
        };
        for d in tight.schedule(3) {
            assert!(d <= Duration::from_micros(80));
        }
    }

    #[test]
    fn retryability_taxonomy() {
        use sw_dgemm::DgemmError as E;
        assert!(is_retryable(&E::Mem(sw_dgemm::MemError::Transient {
            what: String::new()
        })));
        assert!(is_retryable(&E::MeshDeadlock {
            coord: (0, 0),
            summary: String::new()
        }));
        assert!(is_retryable(&E::AbftMismatch {
            block: (0, 0, 0),
            attempts: 4,
            detail: String::new()
        }));
        assert!(!is_retryable(&E::BadDims(String::new())));
        assert!(!is_retryable(&E::BadParams(String::new())));
        assert!(!is_retryable(&E::Lint(String::new())));
        assert!(!is_retryable(&E::Cancelled { deadline: true }));
    }
}
