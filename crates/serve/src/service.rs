//! The service proper: admission, workers, the deadline watchdog, and
//! the quarantine healer, assembled over the queue and pool layers.
//!
//! Thread anatomy of a running [`Service`]:
//!
//! * **submitters** (caller threads) run admission in
//!   [`Service::submit`]: shutdown check, deadline-feasibility check
//!   against the smoothed completion latency, then a bounded push into
//!   the tenant's queue — every refusal is a structured
//!   [`RejectReason`];
//! * **workers** (`cfg.workers` threads) pop jobs in DRR order, lease a
//!   core group, and drive attempts through [`DgemmRunner::run_on`]
//!   with a per-request [`CancelToken`] + `diag_tag`, retrying
//!   transient failures on a *different* group with seeded backoff;
//! * **the watchdog** (one thread) holds a deadline heap; on expiry it
//!   fires the request's token (`cancel_deadline`), which poisons the
//!   run's barriers and frees the group at its next sync point, with
//!   the mesh fuse already clamped to the remaining budget at dispatch;
//! * **the healer** (one thread) probes quarantined groups with a
//!   bitwise GEMM and readmits them, closing the quarantine state
//!   machine's loop.
//!
//! Failure telemetry rides the existing rails: each failed attempt
//! emits at most one diagnostics bundle tagged with the request id, and
//! every decision increments a `serve.*` metric (global and
//! per-tenant).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sw_dgemm::{DgemmError, DgemmRunner, TunePolicy};
use sw_probe::metrics;
use sw_sim::CancelToken;

use crate::pool::{CgPool, Probe};
use crate::queue::{Pop, PushError, TenantCfg, TenantQueues};
use crate::request::{GemmRequest, RejectReason, ServeOutcome, Ticket};
use crate::retry::{is_retryable, BackoffPolicy};

/// Static configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Tenant table: queue bounds and DRR weights.
    pub tenants: Vec<TenantCfg>,
    /// Worker threads consuming the queues.
    pub workers: usize,
    /// Core groups in the pool (64 simulated CPEs each — keep small).
    pub core_groups: usize,
    /// Retry/backoff policy.
    pub backoff: BackoffPolicy,
    /// Consecutive failed leases before a group is quarantined.
    pub quarantine_threshold: u32,
    /// Mesh deadlock fuse for service runs; clamped further to a
    /// request's remaining deadline at dispatch.
    pub mesh_timeout: Duration,
    /// Blocking resolution for requests that did not pin `params`:
    /// the default [`TunePolicy::CacheOnly`] consults the persistent
    /// tune cache (repeated tenant shapes stop paying search cost once
    /// something — a `tune_bench` run, a `Search`-policy deployment —
    /// has populated it) and never searches on the serving path;
    /// [`TunePolicy::Search`] searches on a miss and persists the
    /// winner.
    pub tune: TunePolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenants: vec![TenantCfg::new("default")],
            workers: 2,
            core_groups: 2,
            backoff: BackoffPolicy::default(),
            quarantine_threshold: 3,
            mesh_timeout: Duration::from_millis(250),
            tune: TunePolicy::CacheOnly,
        }
    }
}

/// One admitted request in flight.
struct Job {
    req: GemmRequest,
    ticket: Ticket,
    id: u64,
    admitted: Instant,
    deadline_at: Option<Instant>,
}

/// Exponentially-weighted completion latency in microseconds; the
/// feasibility estimate admission checks deadlines against.
#[derive(Debug, Default)]
struct LatencyEwma(AtomicU64);

impl LatencyEwma {
    fn observe(&self, latency: Duration) {
        let sample = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let prev = self.0.load(Ordering::Relaxed);
        let next = if prev == 0 {
            sample
        } else {
            // α = 1/8: smooth enough to ride out one outlier, fresh
            // enough to track a regime change within ~10 requests.
            prev - prev / 8 + sample / 8
        };
        self.0.store(next, Ordering::Relaxed);
    }

    fn estimate(&self) -> Duration {
        Duration::from_micros(self.0.load(Ordering::Relaxed))
    }
}

/// Deadline registry consumed by the watchdog thread.
#[derive(Default)]
struct WatchdogState {
    /// `(fires_at, registration id, token)`, unordered; the watchdog
    /// scans for the earliest. Entries are few (≤ in-flight requests).
    entries: Vec<(Instant, u64, CancelToken)>,
    shutdown: bool,
}

struct Watchdog {
    state: Mutex<WatchdogState>,
    cv: Condvar,
    next_id: AtomicU64,
}

impl Watchdog {
    fn new() -> Arc<Self> {
        Arc::new(Watchdog {
            state: Mutex::new(WatchdogState::default()),
            cv: Condvar::new(),
            next_id: AtomicU64::new(0),
        })
    }

    /// Registers a token to fire at `at`; returns the id for
    /// [`Self::unregister`].
    fn register(&self, at: Instant, token: CancelToken) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.entries.push((at, id, token));
        drop(st);
        self.cv.notify_one();
        id
    }

    fn unregister(&self, id: u64) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.entries.retain(|(_, i, _)| *i != id);
    }

    fn run(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.shutdown {
                return;
            }
            let now = Instant::now();
            // Fire everything due; collect the earliest future entry.
            let mut earliest: Option<Instant> = None;
            st.entries.retain(|(at, _, token)| {
                if *at <= now {
                    token.cancel_deadline();
                    metrics::global().counter("serve.watchdog.fired").inc();
                    false
                } else {
                    earliest = Some(earliest.map_or(*at, |e| e.min(*at)));
                    true
                }
            });
            st = match earliest {
                Some(at) => {
                    let (guard, _) = self
                        .cv
                        .wait_timeout(st, at.saturating_duration_since(now))
                        .unwrap_or_else(|e| e.into_inner());
                    guard
                }
                None => self.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
            };
        }
    }

    fn shutdown(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.shutdown = true;
        drop(st);
        self.cv.notify_all();
    }
}

/// The admission-controlled, deadline-aware DGEMM service.
pub struct Service {
    cfg: ServeConfig,
    queues: Arc<TenantQueues<Job>>,
    pool: Arc<CgPool>,
    watchdog: Arc<Watchdog>,
    ewma: Arc<LatencyEwma>,
    next_request: AtomicU64,
    shutdown: std::sync::atomic::AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Starts a service: spawns workers, the watchdog, and the healer.
    pub fn start(cfg: ServeConfig) -> Arc<Self> {
        Self::start_with_probe(cfg, crate::pool::default_probe())
    }

    /// [`Self::start`] with a custom pool health probe (tests).
    pub fn start_with_probe(cfg: ServeConfig, probe: Box<Probe>) -> Arc<Self> {
        assert!(cfg.workers >= 1, "at least one worker");
        let pool = CgPool::with_probe(cfg.core_groups, cfg.quarantine_threshold, probe);
        let service = Arc::new(Service {
            queues: Arc::new(TenantQueues::new(&cfg.tenants)),
            pool,
            watchdog: Watchdog::new(),
            ewma: Arc::new(LatencyEwma::default()),
            next_request: AtomicU64::new(0),
            shutdown: std::sync::atomic::AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
            cfg,
        });
        let mut threads = Vec::new();
        for w in 0..service.cfg.workers {
            let svc = Arc::clone(&service);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || svc.worker_loop())
                    .expect("spawn worker"),
            );
        }
        {
            let wd = Arc::clone(&service.watchdog);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-watchdog".into())
                    .spawn(move || wd.run())
                    .expect("spawn watchdog"),
            );
        }
        {
            let pool = Arc::clone(&service.pool);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-healer".into())
                    .spawn(move || healer_loop(&pool))
                    .expect("spawn healer"),
            );
        }
        *service.threads.lock().unwrap_or_else(|e| e.into_inner()) = threads;
        service
    }

    /// Admission: returns a [`Ticket`] or a structured refusal. Never
    /// blocks on queue space — bounded admission sheds load explicitly.
    pub fn submit(&self, req: GemmRequest) -> Result<Ticket, RejectReason> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(RejectReason::ShuttingDown);
        }
        assert!(req.tenant < self.cfg.tenants.len(), "unknown tenant");
        let tenant = req.tenant;
        if let Some(deadline) = req.deadline {
            // Feasibility: refuse only the blatantly hopeless (budget
            // under half the smoothed completion latency) — the
            // deadline machinery handles near-misses, this check just
            // refuses to burn a core group on a lost cause.
            let estimate = self.ewma.estimate();
            if !estimate.is_zero() && deadline < estimate / 2 {
                metrics::global()
                    .counter("serve.rejected.deadline_infeasible")
                    .inc();
                self.tenant_counter(tenant, "rejected").inc();
                return Err(RejectReason::DeadlineInfeasible { deadline, estimate });
            }
        }
        let now = Instant::now();
        let job = Job {
            deadline_at: req.deadline.map(|d| now + d),
            ticket: Ticket::new(),
            id: self.next_request.fetch_add(1, Ordering::Relaxed),
            admitted: now,
            req,
        };
        let ticket = job.ticket.clone();
        let priority = job.req.priority;
        match self.queues.push(tenant, priority, job) {
            Ok(_) => {
                metrics::global().counter("serve.admitted").inc();
                self.tenant_counter(tenant, "admitted").inc();
                Ok(ticket)
            }
            Err(PushError::Full(depth, cap)) => {
                metrics::global().counter("serve.rejected.queue_full").inc();
                self.tenant_counter(tenant, "rejected").inc();
                Err(RejectReason::QueueFull { tenant, depth, cap })
            }
            Err(PushError::ShutDown) => Err(RejectReason::ShuttingDown),
        }
    }

    /// The service's smoothed completion-latency estimate (admission's
    /// feasibility yardstick).
    pub fn latency_estimate(&self) -> Duration {
        self.ewma.estimate()
    }

    /// `(free, leased, quarantined)` pool census.
    pub fn pool_census(&self) -> (usize, usize, usize) {
        self.pool.census()
    }

    /// Graceful shutdown: refuses new work, drains queued jobs, joins
    /// every thread. Idempotent.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.queues.shutdown();
        let threads = {
            let mut guard = self.threads.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        // Workers exit once the queues drain; only then take the pool
        // and watchdog down (draining jobs still need both).
        let (workers, aux): (Vec<_>, Vec<_>) = threads.into_iter().partition(|t| {
            t.thread()
                .name()
                .is_some_and(|n| n.starts_with("serve-worker"))
        });
        for t in workers {
            let _ = t.join();
        }
        self.watchdog.shutdown();
        self.pool.shutdown();
        for t in aux {
            let _ = t.join();
        }
    }

    fn tenant_counter(&self, tenant: usize, what: &str) -> Arc<metrics::Counter> {
        metrics::global().counter(&format!(
            "serve.tenant.{}.{what}",
            self.cfg.tenants[tenant].name
        ))
    }

    fn worker_loop(&self) {
        loop {
            match self.queues.pop() {
                Pop::Shutdown => return,
                Pop::Job { tenant, job } => self.process(tenant, job),
            }
        }
    }

    /// Drives one admitted request to a terminal outcome.
    fn process(&self, tenant: usize, job: Job) {
        // A deadline that expired while queued: resolve without
        // touching a core group.
        if let Some(at) = job.deadline_at {
            if Instant::now() >= at {
                metrics::global().counter("serve.cancelled.deadline").inc();
                self.tenant_counter(tenant, "cancelled").inc();
                job.ticket.fulfill(ServeOutcome::Cancelled {
                    deadline: true,
                    attempts: 0,
                });
                return;
            }
        }
        let mut tried: Vec<usize> = Vec::new();
        let mut attempt: u32 = 0;
        loop {
            let Some(mut lease) = self.pool.lease(&tried) else {
                // Pool shut down mid-flight.
                job.ticket.fulfill(ServeOutcome::Cancelled {
                    deadline: false,
                    attempts: attempt,
                });
                return;
            };
            attempt += 1;
            let token = CancelToken::new();
            let mut fuse = self.cfg.mesh_timeout;
            let mut watchdog_id = None;
            if let Some(at) = job.deadline_at {
                let remaining = at.saturating_duration_since(Instant::now());
                // Clamp the mesh fuse to the remaining budget: barrier
                // poison frees barrier-parked CPEs, the fuse bounds
                // mesh-blocked ones — together "cancel frees the group
                // promptly" holds on every path.
                fuse = fuse.min(remaining.max(Duration::from_millis(1)));
                watchdog_id = Some(self.watchdog.register(at, token.clone()));
            }
            let mut runner = DgemmRunner::new(job.req.variant)
                .abft(job.req.abft)
                .cancel(token.clone())
                .mesh_timeout(fuse)
                .diag_tag(format!("req-{}-t{}-a{}", job.id, tenant, attempt));
            if let Some(p) = job.req.params {
                runner = runner.params(p);
            } else {
                // Unpinned blocking: resolve through the tune cache
                // under the service's policy (the runner falls back to
                // the legacy candidates on a miss or unusable entry).
                runner = runner.tune(self.cfg.tune);
                metrics::global().counter("serve.tune.consults").inc();
            }
            if let Some(plan) = &job.req.faults {
                if let Some(spec) = plan.spec_for(attempt - 1) {
                    runner = runner.faults(*spec);
                }
            }
            let mut c = (*job.req.c).clone();
            let result = runner.run_on(
                lease.cg_mut(),
                job.req.alpha,
                &job.req.a,
                &job.req.b,
                job.req.beta,
                &mut c,
            );
            if let Some(id) = watchdog_id {
                self.watchdog.unregister(id);
            }
            match result {
                Ok(_) => {
                    lease.succeed();
                    let latency = job.admitted.elapsed();
                    self.ewma.observe(latency);
                    metrics::global().counter("serve.completed").inc();
                    metrics::global()
                        .histogram("serve.latency_us", &LATENCY_BUCKETS_US)
                        .observe(latency.as_micros().min(u128::from(u64::MAX)) as u64);
                    self.tenant_counter(tenant, "completed").inc();
                    if attempt > 1 {
                        metrics::global()
                            .counter("serve.completed_after_retry")
                            .inc();
                    }
                    job.ticket.fulfill(ServeOutcome::Completed {
                        c,
                        attempts: attempt,
                        latency,
                    });
                    return;
                }
                Err(DgemmError::Cancelled { deadline }) => {
                    // A policy outcome: says nothing about the group.
                    lease.release();
                    let which = if deadline { "deadline" } else { "explicit" };
                    metrics::global()
                        .counter(&format!("serve.cancelled.{which}"))
                        .inc();
                    self.tenant_counter(tenant, "cancelled").inc();
                    job.ticket.fulfill(ServeOutcome::Cancelled {
                        deadline,
                        attempts: attempt,
                    });
                    return;
                }
                Err(err) if is_retryable(&err) && attempt < self.cfg.backoff.max_attempts => {
                    let slot = lease.slot();
                    lease.fail();
                    tried.push(slot);
                    metrics::global().counter("serve.retries").inc();
                    // Backoff with the lease released: waiting costs
                    // this worker, never a core group.
                    std::thread::sleep(self.cfg.backoff.delay(job.id, attempt));
                    continue;
                }
                Err(err) => {
                    if is_retryable(&err) {
                        // Budget exhausted on an environment fault.
                        lease.fail();
                    } else {
                        // Malformed request: the group is blameless.
                        lease.release();
                    }
                    metrics::global().counter("serve.failed").inc();
                    self.tenant_counter(tenant, "failed").inc();
                    job.ticket.fulfill(ServeOutcome::Failed {
                        error: err,
                        attempts: attempt,
                    });
                    return;
                }
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Completion-latency histogram bounds (µs): 100 µs .. ~6.5 s.
const LATENCY_BUCKETS_US: [u64; 8] = [100, 400, 1600, 6400, 25_600, 102_400, 409_600, 1_638_400];

/// The healer thread: probe quarantined groups and readmit the healthy
/// ones, forever (until pool shutdown).
fn healer_loop(pool: &Arc<CgPool>) {
    while let Some((slot, mut cg)) = pool.take_quarantined() {
        let healthy = pool.probe(&mut cg);
        pool.readmit(slot, cg, healthy);
        if !healthy {
            // A genuinely sick group: re-probe after a pause instead of
            // spinning on it.
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
