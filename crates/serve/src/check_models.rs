//! Model-check suite for the tenant-queue handoff (compiled only under
//! `--cfg sw_check`, where [`crate::queue`] runs on the
//! checker-instrumented types).
//!
//! The correct models prove, across every explored interleaving: an
//! enqueued job is handed to a consumer without depending on a
//! timed-park rescue (no lost wakeups), shutdown wakes a parked
//! consumer, jobs queued before shutdown are drained before
//! `Pop::Shutdown`, and a tenant cancellation racing a pop delivers or
//! sweeps each job exactly once. The park-before-notify mutant
//! ([`TenantQueues::push_mutant_no_notify`]) is the seeded defect the
//! suite must catch.

use crate::queue::{Pop, TenantCfg, TenantQueues};
use crate::request::Priority;
use std::sync::Arc;
use sw_check::models::{Expect, NamedModel};
use sw_check::{thread, Config, ViolationKind};

/// Queue progress must never depend on a timed park expiring: any
/// forced condvar-timeout rescue is a lost wakeup.
fn forbid_rescue(cfg: &mut Config) {
    cfg.forbid_timeout_rescue = true;
}

fn one_tenant() -> Arc<TenantQueues<u32>> {
    Arc::new(TenantQueues::new(&[TenantCfg::new("t0")]))
}

/// Producer pushes one job, consumer pops it: the handoff must
/// complete in every interleaving without a timeout rescue.
fn queue_handoff() {
    let q = one_tenant();
    let consumer = {
        let q = q.clone();
        thread::spawn(move || {
            assert_eq!(q.pop(), Pop::Job { tenant: 0, job: 7 });
        })
    };
    q.push(0, Priority::Normal, 7).unwrap();
    consumer.join().unwrap();
}

/// Shutdown must wake a consumer parked on an empty queue.
fn queue_shutdown_wakes() {
    let q = one_tenant();
    let consumer = {
        let q = q.clone();
        thread::spawn(move || {
            assert_eq!(q.pop(), Pop::Shutdown);
        })
    };
    q.shutdown();
    consumer.join().unwrap();
}

/// A job queued before shutdown must be delivered before the consumer
/// sees `Pop::Shutdown` (drain-before-exit).
fn queue_drain_on_shutdown() {
    let q = one_tenant();
    let consumer = {
        let q = q.clone();
        thread::spawn(move || {
            assert_eq!(q.pop(), Pop::Job { tenant: 0, job: 3 });
            assert_eq!(q.pop(), Pop::Shutdown);
        })
    };
    q.push(0, Priority::Normal, 3).unwrap();
    q.shutdown();
    consumer.join().unwrap();
}

/// A tenant cancellation racing a pop: the queued job is delivered or
/// swept, exactly once, and nobody strands.
fn queue_cancel_vs_pop() {
    let q = one_tenant();
    q.push(0, Priority::Normal, 9).unwrap();
    // The checked spawn carries no return payload; hand the popped job
    // out through a checked cell instead.
    let popped = Arc::new(sw_check::sync::Mutex::new(None));
    let popper = {
        let q = q.clone();
        let popped = Arc::clone(&popped);
        thread::spawn(move || {
            *popped.lock().unwrap_or_else(|e| e.into_inner()) = q.try_pop().map(|(_, j)| j);
        })
    };
    let swept = q.cancel_tenant(0);
    popper.join().unwrap();
    let popped = popped.lock().unwrap_or_else(|e| e.into_inner()).take();
    let delivered = usize::from(popped.is_some()) + swept.len();
    assert_eq!(
        delivered, 1,
        "exactly-once: popped {popped:?}, swept {swept:?}"
    );
}

/// Mutant: push without ringing the doorbell — the parked consumer is
/// only ever rescued by its park timeout, which the config forbids.
fn queue_mutant_push_no_notify() {
    let q = one_tenant();
    let consumer = {
        let q = q.clone();
        thread::spawn(move || {
            assert_eq!(q.pop(), Pop::Job { tenant: 0, job: 1 });
        })
    };
    q.push_mutant_no_notify(0, Priority::Normal, 1).unwrap();
    consumer.join().unwrap();
}

/// The serve crate's registered models, consumed by the `sw-check`
/// binary and the crate's own `model_check` integration test.
pub fn models() -> Vec<NamedModel> {
    vec![
        NamedModel {
            name: "serve/queue-handoff",
            about: "one push hands off to one pop with no timeout rescue",
            expect: Expect::Pass,
            tune: forbid_rescue,
            body: queue_handoff,
        },
        NamedModel {
            name: "serve/queue-shutdown-wakes",
            about: "shutdown wakes a consumer parked on an empty queue",
            expect: Expect::Pass,
            tune: forbid_rescue,
            body: queue_shutdown_wakes,
        },
        NamedModel {
            name: "serve/queue-drain-on-shutdown",
            about: "jobs queued before shutdown are delivered before Shutdown",
            expect: Expect::Pass,
            tune: forbid_rescue,
            body: queue_drain_on_shutdown,
        },
        NamedModel {
            name: "serve/queue-cancel-vs-pop",
            about: "tenant cancel racing a pop delivers or sweeps exactly once",
            expect: Expect::Pass,
            tune: forbid_rescue,
            body: queue_cancel_vs_pop,
        },
        NamedModel {
            name: "serve/queue-mutant-push-no-notify",
            about: "SEEDED DEFECT: push without notify loses the parked consumer's wakeup",
            expect: Expect::Violation(ViolationKind::LostWakeup),
            tune: forbid_rescue,
            body: queue_mutant_push_no_notify,
        },
    ]
}
