//! Request/response vocabulary of the service.
//!
//! A [`GemmRequest`] is one `C = α·A·B + β·C` problem submitted by a
//! tenant; the service answers with a [`Ticket`] that resolves to a
//! [`ServeOutcome`] — completion with the result matrix, a structured
//! rejection at admission, a structured failure after the retry budget,
//! or a cancellation. Every path is explicit: the service never drops a
//! request silently and never returns a wrong answer in place of an
//! error.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use sw_dgemm::{AbftPolicy, BlockingParams, DgemmError, Matrix, Variant};
use sw_faults::FaultSpec;

/// Scheduling priority inside a tenant's queue. High-priority requests
/// are served before normal ones *of the same tenant*; cross-tenant
/// ordering is governed by the deficit round-robin weights alone, so
/// one tenant's high-priority flood cannot starve its neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Ahead of the tenant's normal queue.
    High,
    /// The default lane.
    #[default]
    Normal,
}

/// How a request's fault plan composes with retries — the knob the
/// chaos bench turns.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Inject on every attempt (models an environment-wide storm; only
    /// ABFT healing or degradation can complete the request).
    EveryAttempt(FaultSpec),
    /// Inject on the first attempt only (models a transiently sick
    /// core group; the retry on a different group runs clean).
    FirstAttemptOnly(FaultSpec),
}

impl FaultPlan {
    /// The spec to install for the given 0-based attempt.
    pub(crate) fn spec_for(&self, attempt: u32) -> Option<&FaultSpec> {
        match self {
            FaultPlan::EveryAttempt(s) => Some(s),
            FaultPlan::FirstAttemptOnly(s) if attempt == 0 => Some(s),
            FaultPlan::FirstAttemptOnly(_) => None,
        }
    }
}

/// One GEMM problem submitted to the service. Operands are shared
/// (`Arc`) so retries re-run from the original inputs without copies;
/// the initial `c` is cloned per attempt (the update must apply exactly
/// once no matter how many attempts it takes).
#[derive(Debug, Clone)]
pub struct GemmRequest {
    /// Index into the service's tenant table.
    pub tenant: usize,
    /// GEMM α scalar.
    pub alpha: f64,
    /// GEMM β scalar.
    pub beta: f64,
    /// m×k input.
    pub a: Arc<Matrix>,
    /// k×n input.
    pub b: Arc<Matrix>,
    /// m×n input/output (the service returns the updated copy).
    pub c: Arc<Matrix>,
    /// DGEMM variant to run (default SCHED).
    pub variant: Variant,
    /// Blocking override; `None` lets the runner choose.
    pub params: Option<BlockingParams>,
    /// Queue lane within the tenant.
    pub priority: Priority,
    /// Completion deadline measured from admission; `None` means
    /// best-effort. Expiry cancels the request wherever it is (queued
    /// or running) and frees its core group promptly.
    pub deadline: Option<Duration>,
    /// Fault-injection plan for this request (chaos testing).
    pub faults: Option<FaultPlan>,
    /// ABFT checksum policy for this request's runs.
    pub abft: AbftPolicy,
}

impl GemmRequest {
    /// A plain best-effort request with unit scalars on the SCHED
    /// variant — the common case; override fields as needed.
    pub fn new(tenant: usize, a: Arc<Matrix>, b: Arc<Matrix>, c: Arc<Matrix>) -> Self {
        GemmRequest {
            tenant,
            alpha: 1.0,
            beta: 0.0,
            a,
            b,
            c,
            variant: Variant::Sched,
            params: None,
            priority: Priority::Normal,
            deadline: None,
            faults: None,
            abft: AbftPolicy::Off,
        }
    }
}

/// Why admission refused a request — load shedding is a structured
/// answer, not an unbounded queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's bounded queue is at capacity.
    QueueFull {
        /// The refused tenant.
        tenant: usize,
        /// Jobs queued for the tenant at refusal time.
        depth: usize,
        /// The tenant's configured capacity.
        cap: usize,
    },
    /// The requested deadline is hopeless against the observed service
    /// latency; failing fast beats wasting a core group on it.
    DeadlineInfeasible {
        /// The requested budget.
        deadline: Duration,
        /// The service's current smoothed completion-latency estimate.
        estimate: Duration,
    },
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { tenant, depth, cap } => {
                write!(f, "tenant {tenant} queue full ({depth}/{cap})")
            }
            RejectReason::DeadlineInfeasible { deadline, estimate } => write!(
                f,
                "deadline {deadline:?} infeasible against latency estimate {estimate:?}"
            ),
            RejectReason::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

/// Terminal state of an admitted request.
#[derive(Debug, Clone)]
pub enum ServeOutcome {
    /// The GEMM ran to completion; `c` is bitwise what a direct
    /// `DgemmRunner` call would have produced.
    Completed {
        /// The updated C matrix.
        c: Matrix,
        /// Attempts executed (1 = first try succeeded).
        attempts: u32,
        /// Admission-to-completion latency.
        latency: Duration,
    },
    /// Every attempt in the retry budget failed; the *last* error is
    /// preserved.
    Failed {
        /// The final attempt's structured error.
        error: DgemmError,
        /// Attempts executed.
        attempts: u32,
    },
    /// The request was cancelled — by its deadline (`deadline = true`)
    /// or by service shutdown.
    Cancelled {
        /// Whether a deadline (rather than shutdown) fired.
        deadline: bool,
        /// Attempts started before the cancel landed.
        attempts: u32,
    },
}

/// The caller's handle on an admitted request.
#[derive(Debug, Clone)]
pub struct Ticket {
    slot: Arc<(Mutex<Option<ServeOutcome>>, Condvar)>,
}

impl Ticket {
    pub(crate) fn new() -> Self {
        Ticket {
            slot: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    /// Blocks until the request reaches a terminal state.
    pub fn wait(&self) -> ServeOutcome {
        let (lock, cv) = &*self.slot;
        let mut guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = guard.clone() {
                return outcome;
            }
            guard = cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking poll.
    pub fn try_take(&self) -> Option<ServeOutcome> {
        self.slot
            .0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Resolves the ticket (worker side); first resolution wins.
    pub(crate) fn fulfill(&self, outcome: ServeOutcome) {
        let (lock, cv) = &*self.slot;
        let mut guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            *guard = Some(outcome);
            cv.notify_all();
        }
    }
}
