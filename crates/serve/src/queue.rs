//! Bounded per-tenant queues with deficit-round-robin fairness — the
//! service's admission/handoff primitive.
//!
//! One `TenantQueues` instance fronts the worker pool: producers
//! (`submit`) push into their tenant's bounded lane and ring the
//! doorbell; consumers (workers) block in [`TenantQueues::pop`] until a
//! job, a cancellation sweep, or shutdown releases them. Fairness is
//! classic deficit round robin: each tenant's deficit is replenished by
//! its weight when its turn comes, and one job costs one unit, so under
//! saturation tenants are served in proportion to their weights
//! regardless of offered load. Within a tenant, the high-priority lane
//! drains before the normal lane.
//!
//! # Concurrency contract (model-checked)
//!
//! The concurrency vocabulary comes from the `sw-check` facade: plain
//! `std` re-exports in a normal build, checker-instrumented types under
//! `--cfg sw_check`, where `check_models.rs` explores this exact source
//! across interleavings. The checked properties: an enqueued job is
//! delivered exactly once with no interleaving depending on the timed
//! park (no lost wakeups), shutdown wakes every parked worker, jobs
//! already queued at shutdown are drained before `Pop::Shutdown` is
//! reported, and a tenant cancellation racing a pop delivers-or-cancels
//! each job exactly once. A seeded park-before-notify mutant
//! ([`TenantQueues::push_mutant_no_notify`]) pins the checker's ability
//! to catch the classic defect.

use std::collections::VecDeque;
use sw_check::sync::{Condvar, Mutex};
use sw_check::time::Duration;

use crate::request::Priority;

/// Timed-park quantum for blocked consumers; bounds the cost of a
/// missed wakeup without a handshake on every push, exactly like the
/// barrier's straggler park. Progress never *depends* on it — the
/// model checker runs with `forbid_timeout_rescue`.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Static shape of one tenant's lane.
#[derive(Debug, Clone)]
pub struct TenantCfg {
    /// Human-readable tenant name (used in per-tenant metric names).
    pub name: String,
    /// DRR weight: service share under saturation (≥ 1).
    pub weight: u32,
    /// Bounded queue capacity across both priority lanes.
    pub queue_cap: usize,
}

impl TenantCfg {
    /// A tenant with the given name, weight 1, capacity 64.
    pub fn new(name: impl Into<String>) -> Self {
        TenantCfg {
            name: name.into(),
            weight: 1,
            queue_cap: 64,
        }
    }
}

/// What a consumer gets back from [`TenantQueues::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// A job, with the tenant it came from.
    Job {
        /// Owning tenant index.
        tenant: usize,
        /// The dequeued job.
        job: T,
    },
    /// The queues are shut down and fully drained; the worker should
    /// exit.
    Shutdown,
}

/// Why [`TenantQueues::push`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The tenant's lane is at capacity; carries `(depth, cap)`.
    Full(usize, usize),
    /// The queues are shut down.
    ShutDown,
}

/// One tenant's two lanes plus its DRR bookkeeping.
#[derive(Debug)]
struct Lane<T> {
    high: VecDeque<T>,
    normal: VecDeque<T>,
    deficit: u64,
}

impl<T> Lane<T> {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }
}

#[derive(Debug)]
struct QState<T> {
    lanes: Vec<Lane<T>>,
    /// Next tenant the DRR scan visits.
    cursor: usize,
    shutdown: bool,
}

/// Bounded, weighted, shutdown-aware multi-tenant queues. `T` is the
/// job payload (the service uses its internal job struct; the model
/// checker uses small integers).
#[derive(Debug)]
pub struct TenantQueues<T> {
    weights: Vec<u32>,
    caps: Vec<usize>,
    state: Mutex<QState<T>>,
    doorbell: Condvar,
}

impl<T> TenantQueues<T> {
    /// Builds the queues for the given tenant table.
    pub fn new(tenants: &[TenantCfg]) -> Self {
        assert!(!tenants.is_empty(), "at least one tenant");
        assert!(
            tenants.iter().all(|t| t.weight >= 1),
            "DRR weights must be >= 1"
        );
        TenantQueues {
            weights: tenants.iter().map(|t| t.weight).collect(),
            caps: tenants.iter().map(|t| t.queue_cap).collect(),
            state: Mutex::new(QState {
                lanes: tenants
                    .iter()
                    .map(|_| Lane {
                        high: VecDeque::new(),
                        normal: VecDeque::new(),
                        deficit: 0,
                    })
                    .collect(),
                cursor: 0,
                shutdown: false,
            }),
            doorbell: Condvar::new(),
        }
    }

    /// Enqueues a job into the tenant's lane, or refuses with the
    /// structured reason (bounded admission — the caller sheds load
    /// instead of queueing without limit). On success returns the
    /// tenant's new depth and rings the doorbell for one parked worker.
    pub fn push(&self, tenant: usize, priority: Priority, job: T) -> Result<usize, PushError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.shutdown {
            return Err(PushError::ShutDown);
        }
        let depth = st.lanes[tenant].len();
        if depth >= self.caps[tenant] {
            return Err(PushError::Full(depth, self.caps[tenant]));
        }
        match priority {
            Priority::High => st.lanes[tenant].high.push_back(job),
            Priority::Normal => st.lanes[tenant].normal.push_back(job),
        }
        let depth = st.lanes[tenant].len();
        drop(st);
        // One job, one wakeup: each push releases exactly one parked
        // worker; a worker that finds the job already taken re-checks
        // under the lock and parks again.
        self.doorbell.notify_one();
        Ok(depth)
    }

    /// SEEDED DEFECT (tests + model checker only): [`Self::push`]
    /// without the doorbell — the classic park-before-notify lost
    /// wakeup. The model suite must catch it.
    #[cfg(any(test, sw_check))]
    pub fn push_mutant_no_notify(
        &self,
        tenant: usize,
        priority: Priority,
        job: T,
    ) -> Result<usize, PushError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.shutdown {
            return Err(PushError::ShutDown);
        }
        let depth = st.lanes[tenant].len();
        if depth >= self.caps[tenant] {
            return Err(PushError::Full(depth, self.caps[tenant]));
        }
        match priority {
            Priority::High => st.lanes[tenant].high.push_back(job),
            Priority::Normal => st.lanes[tenant].normal.push_back(job),
        }
        Ok(st.lanes[tenant].len())
    }

    /// Blocks until a job is available (DRR order) or the queues shut
    /// down *and* drain. Safe to call from any number of workers.
    pub fn pop(&self) -> Pop<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((tenant, job)) = self.pop_locked(&mut st) {
                return Pop::Job { tenant, job };
            }
            if st.shutdown {
                // Drained: every job enqueued before shutdown has been
                // handed to some worker.
                return Pop::Shutdown;
            }
            let (guard, _timeout) = self
                .doorbell
                .wait_timeout(st, PARK_TIMEOUT)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Non-blocking variant of [`Self::pop`]: `None` when no job is
    /// ready (regardless of shutdown state).
    pub fn try_pop(&self) -> Option<(usize, T)> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.pop_locked(&mut st)
    }

    /// Removes every queued job of one tenant (both lanes), returning
    /// them so the caller can resolve their tickets as cancelled. Jobs
    /// already handed to workers are unaffected — each job is delivered
    /// *or* swept, never both.
    pub fn cancel_tenant(&self, tenant: usize) -> Vec<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let lane = &mut st.lanes[tenant];
        lane.deficit = 0;
        let mut out: Vec<T> = lane.high.drain(..).collect();
        out.extend(lane.normal.drain(..));
        out
    }

    /// Marks the queues shut down and wakes every parked worker.
    /// Already-queued jobs are still delivered (drain-before-exit);
    /// new pushes are refused.
    pub fn shutdown(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.shutdown = true;
        drop(st);
        self.doorbell.notify_all();
    }

    /// Total queued jobs across all tenants.
    pub fn depth(&self) -> usize {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.lanes.iter().map(Lane::len).sum()
    }

    /// One DRR scan step under the lock. Replenishes a tenant's deficit
    /// by its weight when its turn starts, charges one unit per job,
    /// and advances the cursor when the deficit (or the lane) runs out
    /// — so a weight-3 tenant gets a 3-job turn per round while its
    /// neighbours get their own turns in between.
    fn pop_locked(&self, st: &mut QState<T>) -> Option<(usize, T)> {
        let n = st.lanes.len();
        if st.lanes.iter().all(|l| l.len() == 0) {
            return None;
        }
        // At most one full cycle reaches a non-empty lane.
        loop {
            let t = st.cursor;
            let lane = &mut st.lanes[t];
            if lane.len() == 0 {
                lane.deficit = 0;
                st.cursor = (t + 1) % n;
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = u64::from(self.weights[t]);
            }
            lane.deficit -= 1;
            let job = lane
                .high
                .pop_front()
                .or_else(|| lane.normal.pop_front())
                .expect("lane checked non-empty");
            if lane.len() == 0 {
                lane.deficit = 0;
            }
            if lane.deficit == 0 {
                st.cursor = (t + 1) % n;
            }
            return Some((t, job));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenants(weights: &[u32]) -> Vec<TenantCfg> {
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| TenantCfg {
                name: format!("t{i}"),
                weight: w,
                queue_cap: 1024,
            })
            .collect()
    }

    #[test]
    fn drr_serves_in_weight_proportion() {
        let q = TenantQueues::new(&tenants(&[3, 1]));
        for i in 0..40u32 {
            q.push(0, Priority::Normal, i).unwrap();
            q.push(1, Priority::Normal, 100 + i).unwrap();
        }
        // First 16 pops: weight-3 tenant gets 12, weight-1 gets 4.
        let mut counts = [0usize; 2];
        for _ in 0..16 {
            let (t, _) = q.try_pop().unwrap();
            counts[t] += 1;
        }
        assert_eq!(counts, [12, 4], "3:1 service under saturation");
    }

    #[test]
    fn high_priority_drains_before_normal_within_a_tenant() {
        let q = TenantQueues::new(&tenants(&[1]));
        q.push(0, Priority::Normal, 1u32).unwrap();
        q.push(0, Priority::High, 2).unwrap();
        q.push(0, Priority::High, 3).unwrap();
        let order: Vec<u32> = (0..3).map(|_| q.try_pop().unwrap().1).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn bounded_admission_refuses_with_depth_and_cap() {
        let q = TenantQueues::new(&[TenantCfg {
            name: "t".into(),
            weight: 1,
            queue_cap: 2,
        }]);
        assert_eq!(q.push(0, Priority::Normal, 1u32), Ok(1));
        assert_eq!(q.push(0, Priority::High, 2), Ok(2));
        assert_eq!(q.push(0, Priority::Normal, 3), Err(PushError::Full(2, 2)));
        // Draining one readmits.
        q.try_pop().unwrap();
        assert_eq!(q.push(0, Priority::Normal, 3), Ok(2));
    }

    #[test]
    fn shutdown_drains_then_releases_workers() {
        let q = std::sync::Arc::new(TenantQueues::new(&tenants(&[1])));
        q.push(0, Priority::Normal, 7u32).unwrap();
        q.shutdown();
        assert_eq!(q.push(0, Priority::Normal, 8), Err(PushError::ShutDown));
        assert_eq!(q.pop(), Pop::Job { tenant: 0, job: 7 });
        assert_eq!(q.pop(), Pop::Shutdown);
        // A worker parked before shutdown is released too.
        let q2 = std::sync::Arc::new(TenantQueues::<u32>::new(&tenants(&[1])));
        let w = {
            let q2 = q2.clone();
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        q2.shutdown();
        assert_eq!(w.join().unwrap(), Pop::Shutdown);
    }

    #[test]
    fn cancel_tenant_sweeps_only_that_tenant() {
        let q = TenantQueues::new(&tenants(&[1, 1]));
        q.push(0, Priority::Normal, 1u32).unwrap();
        q.push(0, Priority::High, 2).unwrap();
        q.push(1, Priority::Normal, 3).unwrap();
        let swept = q.cancel_tenant(0);
        assert_eq!(swept, vec![2, 1]);
        assert_eq!(q.try_pop(), Some((1, 3)));
        assert_eq!(q.try_pop(), None);
    }
}
