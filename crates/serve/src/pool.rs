//! The shared, self-healing [`CoreGroup`] pool.
//!
//! Core groups are expensive (64 persistent CPE threads each), so the
//! service owns a small fixed pool and leases groups to workers one
//! request-attempt at a time. Failure handling is the pool's whole
//! point:
//!
//! * a lease closed with [`Lease::succeed`] resets the group's
//!   consecutive-failure count;
//! * a lease closed with [`Lease::fail`] increments it, and at the
//!   quarantine threshold the group leaves the rotation entirely —
//!   one persistently sick group degrades *capacity*, never
//!   availability;
//! * a healer thread (see [`crate::service`]) health-checks each
//!   quarantined group with a probe GEMM (bitwise against the host
//!   reference) and readmits it on a pass, so transient sickness heals
//!   without operator action;
//! * a lease dropped or closed with [`Lease::release`] (cancelled
//!   requests) returns the group neutrally — a deadline expiry says
//!   nothing about the group's health.
//!
//! [`CgPool::lease`] takes an `exclude` list so retries land on a
//! *different* group than the attempts that already failed, whenever
//! the pool has an alternative free.

use std::sync::{Arc, Condvar, Mutex};
use sw_dgemm::{gen, reference, BlockingParams, DgemmRunner, Variant};
use sw_probe::metrics;
use sw_sim::CoreGroup;

/// Health probe run on a quarantined group before readmission: `true`
/// means healthy. The default probe runs a small GEMM and compares
/// bitwise against the chunked host reference.
pub type Probe = dyn Fn(&mut CoreGroup) -> bool + Send + Sync;

/// Where a pool slot is in the quarantine state machine.
enum SlotState {
    /// In rotation, ready to lease.
    Free(Box<CoreGroup>),
    /// Checked out by a worker.
    Leased,
    /// Out of rotation pending a healer probe.
    Quarantined(Box<CoreGroup>),
    /// Being probed by the healer right now.
    Probing,
}

#[derive(Debug, Default)]
struct SlotMeta {
    /// Failures since the last success; quarantine trips at the
    /// threshold.
    consecutive_failures: u32,
    /// Times this slot has been quarantined (telemetry).
    quarantines: u64,
}

struct PoolState {
    slots: Vec<SlotState>,
    meta: Vec<SlotMeta>,
    shutdown: bool,
}

/// A fixed-size pool of reusable core groups with quarantine.
pub struct CgPool {
    state: Mutex<PoolState>,
    /// Signalled when a slot becomes Free (lease waiters) or
    /// Quarantined (the healer).
    changed: Condvar,
    threshold: u32,
    probe: Box<Probe>,
}

impl std::fmt::Debug for CgPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CgPool")
            .field("threshold", &self.threshold)
            .finish_non_exhaustive()
    }
}

/// The default health probe: a 128×64×128 GEMM on the test blocking,
/// bitwise-checked against [`reference::dgemm_chunked_fma`].
pub fn default_probe() -> Box<Probe> {
    Box::new(|cg: &mut CoreGroup| {
        let p = BlockingParams::test_small();
        let a = gen::random_matrix(128, 128, 0xbeef);
        let b = gen::random_matrix(128, 64, 0xcafe);
        let c0 = gen::random_matrix(128, 64, 0xf00d);
        let mut c = c0.clone();
        let ok = DgemmRunner::new(Variant::Sched)
            .params(p)
            .run_on(cg, 1.0, &a, &b, 1.0, &mut c)
            .is_ok();
        if !ok {
            return false;
        }
        let mut expect = c0;
        reference::dgemm_chunked_fma(1.0, &a, &b, 1.0, &mut expect, p.pk);
        c == expect
    })
}

impl CgPool {
    /// A pool of `n` fresh core groups quarantining after `threshold`
    /// consecutive failed leases, probed with the default GEMM probe.
    pub fn new(n: usize, threshold: u32) -> Arc<Self> {
        Self::with_probe(n, threshold, default_probe())
    }

    /// [`Self::new`] with a custom health probe (tests inject probes
    /// that fail deterministically).
    pub fn with_probe(n: usize, threshold: u32, probe: Box<Probe>) -> Arc<Self> {
        assert!(n >= 1, "pool needs at least one core group");
        assert!(threshold >= 1, "quarantine threshold must be >= 1");
        Arc::new(CgPool {
            state: Mutex::new(PoolState {
                slots: (0..n).map(|_| SlotState::Free(Box::default())).collect(),
                meta: (0..n).map(|_| SlotMeta::default()).collect(),
                shutdown: false,
            }),
            changed: Condvar::new(),
            threshold,
            probe,
        })
    }

    /// Leases a free group, blocking while none is available. Prefers
    /// a slot not in `exclude` (retry-on-a-different-group); falls back
    /// to an excluded slot when that is all the rotation has — a busy
    /// pool beats an artificial deadlock. Returns `None` on shutdown.
    pub fn lease(self: &Arc<Self>, exclude: &[usize]) -> Option<Lease> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.shutdown {
                return None;
            }
            let free: Vec<usize> = st
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, SlotState::Free(_)))
                .map(|(i, _)| i)
                .collect();
            let pick = free
                .iter()
                .copied()
                .find(|i| !exclude.contains(i))
                .or(free.first().copied());
            if let Some(slot) = pick {
                let cg = match std::mem::replace(&mut st.slots[slot], SlotState::Leased) {
                    SlotState::Free(cg) => cg,
                    _ => unreachable!("slot was checked Free"),
                };
                return Some(Lease {
                    pool: Arc::clone(self),
                    slot,
                    cg: Some(cg),
                });
            }
            st = self.changed.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Takes one quarantined group for probing (healer side); blocks
    /// until one exists or shutdown (`None`).
    pub fn take_quarantined(&self) -> Option<(usize, Box<CoreGroup>)> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.shutdown {
                return None;
            }
            let found = st
                .slots
                .iter()
                .position(|s| matches!(s, SlotState::Quarantined(_)));
            if let Some(slot) = found {
                let cg = match std::mem::replace(&mut st.slots[slot], SlotState::Probing) {
                    SlotState::Quarantined(cg) => cg,
                    _ => unreachable!("slot was checked Quarantined"),
                };
                return Some((slot, cg));
            }
            st = self.changed.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Runs the configured probe against a group (healer side).
    pub fn probe(&self, cg: &mut CoreGroup) -> bool {
        (self.probe)(cg)
    }

    /// Returns a probed group to the pool: into rotation on a healthy
    /// probe (failure count reset), back to quarantine otherwise.
    pub fn readmit(&self, slot: usize, cg: Box<CoreGroup>, healthy: bool) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(matches!(st.slots[slot], SlotState::Probing));
        if healthy {
            st.meta[slot].consecutive_failures = 0;
            st.slots[slot] = SlotState::Free(cg);
            metrics::global().counter("serve.pool.readmitted").inc();
        } else {
            st.slots[slot] = SlotState::Quarantined(cg);
            metrics::global().counter("serve.pool.probe_failures").inc();
        }
        drop(st);
        self.changed.notify_all();
    }

    /// Unblocks every lease/healer waiter; the pool stops handing out
    /// groups.
    pub fn shutdown(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.shutdown = true;
        drop(st);
        self.changed.notify_all();
    }

    /// `(free, leased, quarantined)` snapshot for telemetry and tests.
    pub fn census(&self) -> (usize, usize, usize) {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut c = (0, 0, 0);
        for s in &st.slots {
            match s {
                SlotState::Free(_) => c.0 += 1,
                SlotState::Leased => c.1 += 1,
                SlotState::Quarantined(_) | SlotState::Probing => c.2 += 1,
            }
        }
        c
    }

    /// Times the given slot has entered quarantine.
    pub fn quarantine_count(&self, slot: usize) -> u64 {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.meta[slot].quarantines
    }

    fn close(&self, slot: usize, cg: Box<CoreGroup>, verdict: LeaseVerdict) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match verdict {
            LeaseVerdict::Success => {
                st.meta[slot].consecutive_failures = 0;
                st.slots[slot] = SlotState::Free(cg);
            }
            LeaseVerdict::Neutral => {
                st.slots[slot] = SlotState::Free(cg);
            }
            LeaseVerdict::Failure => {
                st.meta[slot].consecutive_failures += 1;
                if st.meta[slot].consecutive_failures >= self.threshold {
                    st.meta[slot].quarantines += 1;
                    st.slots[slot] = SlotState::Quarantined(cg);
                    metrics::global().counter("serve.pool.quarantined").inc();
                } else {
                    st.slots[slot] = SlotState::Free(cg);
                }
            }
        }
        drop(st);
        self.changed.notify_all();
    }
}

enum LeaseVerdict {
    Success,
    Neutral,
    Failure,
}

/// An exclusive checkout of one core group. Closing the lease reports
/// the attempt's verdict to the quarantine state machine; dropping it
/// without a verdict is a neutral release.
pub struct Lease {
    pool: Arc<CgPool>,
    slot: usize,
    cg: Option<Box<CoreGroup>>,
}

impl Lease {
    /// The pool slot this lease holds (feed into `lease`'s `exclude`
    /// on retry).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The leased group.
    pub fn cg_mut(&mut self) -> &mut CoreGroup {
        self.cg.as_mut().expect("lease still open")
    }

    /// Closes the lease after a successful run: failure streak resets.
    pub fn succeed(mut self) {
        let cg = self.cg.take().expect("lease still open");
        self.pool.close(self.slot, cg, LeaseVerdict::Success);
    }

    /// Closes the lease after a run whose failure is attributable to
    /// the environment/group; may trip quarantine.
    pub fn fail(mut self) {
        let cg = self.cg.take().expect("lease still open");
        self.pool.close(self.slot, cg, LeaseVerdict::Failure);
    }

    /// Closes the lease with no health signal (cancelled or malformed
    /// requests say nothing about the group).
    pub fn release(mut self) {
        let cg = self.cg.take().expect("lease still open");
        self.pool.close(self.slot, cg, LeaseVerdict::Neutral);
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if let Some(cg) = self.cg.take() {
            self.pool.close(self.slot, cg, LeaseVerdict::Neutral);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_prefers_a_different_group_on_retry() {
        let pool = CgPool::new(2, 2);
        let first = pool.lease(&[]).unwrap();
        let first_slot = first.slot();
        first.fail();
        // Retry excluding the failed slot must pick the other one.
        let retry = pool.lease(&[first_slot]).unwrap();
        assert_ne!(retry.slot(), first_slot, "retry rotates to a fresh group");
        retry.release();
        // With the alternative leased away, exclusion degrades
        // gracefully to the excluded slot instead of blocking forever.
        let other = pool.lease(&[first_slot]).unwrap();
        let held = pool.lease(&[other.slot()]).unwrap();
        assert_eq!(held.slot(), first_slot);
        held.release();
        other.release();
    }

    #[test]
    fn quarantine_trips_at_threshold_and_probe_readmits() {
        let pool = CgPool::new(1, 2);
        for _ in 0..2 {
            pool.lease(&[]).unwrap().fail();
        }
        assert_eq!(pool.census(), (0, 0, 1), "slot quarantined at threshold");
        assert_eq!(pool.quarantine_count(0), 1);
        // Healer cycle: probe passes (the group is actually healthy —
        // wedges are per-request injections), slot rejoins rotation.
        let (slot, mut cg) = pool.take_quarantined().unwrap();
        let healthy = pool.probe(&mut cg);
        assert!(healthy, "a clean group passes the default probe");
        pool.readmit(slot, cg, healthy);
        assert_eq!(pool.census(), (1, 0, 0));
        // The streak reset with readmission: one more failure does not
        // re-quarantine.
        pool.lease(&[]).unwrap().fail();
        assert_eq!(pool.census(), (1, 0, 0));
    }

    #[test]
    fn success_and_neutral_release_do_not_advance_the_streak() {
        let pool = CgPool::new(1, 2);
        pool.lease(&[]).unwrap().fail();
        pool.lease(&[]).unwrap().succeed(); // resets
        pool.lease(&[]).unwrap().fail();
        pool.lease(&[]).unwrap().release(); // neutral: no reset, no count
        pool.lease(&[]).unwrap().fail(); // second consecutive -> quarantine
        assert_eq!(pool.census(), (0, 0, 1));
    }

    #[test]
    fn failed_probe_keeps_the_group_quarantined() {
        let pool = CgPool::with_probe(1, 1, Box::new(|_| false));
        pool.lease(&[]).unwrap().fail();
        let (slot, mut cg) = pool.take_quarantined().unwrap();
        let healthy = pool.probe(&mut cg);
        assert!(!healthy);
        pool.readmit(slot, cg, healthy);
        assert_eq!(pool.census(), (0, 0, 1), "still out of rotation");
    }
}
