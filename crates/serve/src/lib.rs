//! `sw-serve`: an admission-controlled, deadline-aware DGEMM service
//! over a self-healing pool of simulated SW26010 core groups.
//!
//! The one-shot `DgemmRunner` binaries answer "how fast is one GEMM";
//! this crate answers the question above it, the one swCaffe showed
//! dominates at scale: how does a *persistent, multi-tenant* runtime
//! keep serving when individual requests, tenants, or core groups
//! misbehave? The design treats failure as the normal case:
//!
//! * **Bounded admission** ([`Service::submit`]) — per-tenant bounded
//!   queues under deficit-round-robin fairness; overload is shed with
//!   a structured [`RejectReason`], never queued without limit.
//! * **Deadlines** — a watchdog fires each request's
//!   [`sw_sim::CancelToken`] on expiry, which poisons the run's
//!   barriers, while the mesh deadlock fuse is clamped to the
//!   remaining budget at dispatch; a cancelled request frees its core
//!   group promptly on every path and resolves as
//!   [`ServeOutcome::Cancelled`].
//! * **Retries** — transient `DgemmError`s retry with seeded
//!   exponential backoff ([`BackoffPolicy`]) on a *different* core
//!   group; a group failing [`ServeConfig::quarantine_threshold`]
//!   leases in a row is quarantined, health-checked with a bitwise
//!   probe GEMM, and readmitted ([`crate::pool::CgPool`]).
//! * **Telemetry** — every decision increments a `serve.*` metric
//!   (global and per-tenant), and each failed attempt emits at most
//!   one request-tagged diagnostics bundle.
//!
//! Completed responses are bitwise identical to a direct
//! [`sw_dgemm::DgemmRunner`] call — the service adds scheduling and
//! resilience policy, never numerics. `serve_bench` (in `sw-bench`)
//! drives the whole stack under load and fault storms and pins the
//! chaos gate in `BENCH_serve.json`.

pub mod pool;
pub mod queue;
pub mod request;
pub mod retry;
pub mod service;

#[cfg(sw_check)]
pub mod check_models;

pub use pool::CgPool;
pub use queue::{Pop, PushError, TenantCfg, TenantQueues};
pub use request::{FaultPlan, GemmRequest, Priority, RejectReason, ServeOutcome, Ticket};
pub use retry::{is_retryable, BackoffPolicy};
pub use service::{ServeConfig, Service};
pub use sw_dgemm::TunePolicy;
