//! End-to-end service behaviour: bitwise-correct completions, bounded
//! admission, deadline cancellation, the retry/backoff contract
//! (rotation, budget, last-error preservation), and the quarantine →
//! probe → readmission cycle. The CI fault-tolerance job runs the
//! chaos-relevant tests here alongside the fault sweep.

use std::sync::Arc;
use std::time::Duration;
use sw_dgemm::{
    gen, reference, BlockingParams, DgemmError, DgemmRunner, FaultSpec, Matrix, Variant, WedgeSpec,
};
use sw_probe::metrics;
use sw_serve::{
    BackoffPolicy, FaultPlan, GemmRequest, RejectReason, ServeConfig, ServeOutcome, Service,
    TenantCfg,
};

const P: fn() -> BlockingParams = BlockingParams::test_small;

fn shapes(seed: u64) -> (Arc<Matrix>, Arc<Matrix>, Arc<Matrix>) {
    (
        Arc::new(gen::random_matrix(128, 128, seed)),
        Arc::new(gen::random_matrix(128, 64, seed + 1)),
        Arc::new(gen::random_matrix(128, 64, seed + 2)),
    )
}

fn request(seed: u64) -> GemmRequest {
    let (a, b, c) = shapes(seed);
    GemmRequest {
        alpha: 1.5,
        beta: 0.5,
        params: Some(P()),
        ..GemmRequest::new(0, a, b, c)
    }
}

fn wedge() -> FaultSpec {
    FaultSpec {
        wedge: Some(WedgeSpec { cpe: 18, epoch: 0 }),
        ..FaultSpec::seeded(0)
    }
}

fn small_cfg() -> ServeConfig {
    ServeConfig {
        tenants: vec![TenantCfg::new("test")],
        workers: 1,
        core_groups: 1,
        backoff: BackoffPolicy {
            base: Duration::from_micros(50),
            cap: Duration::from_millis(1),
            max_attempts: 2,
            seed: 7,
        },
        quarantine_threshold: 100, // effectively off unless a test opts in
        mesh_timeout: Duration::from_millis(60),
        tune: sw_serve::TunePolicy::Off,
    }
}

/// Completions are bitwise identical to a direct `DgemmRunner` call on
/// the same operands — the service adds policy, never numerics.
#[test]
fn completion_is_bitwise_equal_to_direct_runner() {
    let svc = Service::start(small_cfg());
    let req = request(100);
    let (a, b, c0) = (req.a.clone(), req.b.clone(), req.c.clone());
    let ticket = svc.submit(req).expect("admitted");
    let outcome = ticket.wait();
    svc.shutdown();
    let ServeOutcome::Completed { c, attempts, .. } = outcome else {
        panic!("expected completion, got {outcome:?}");
    };
    assert_eq!(attempts, 1);
    let mut direct = (*c0).clone();
    DgemmRunner::new(Variant::Sched)
        .params(P())
        .run(1.5, &a, &b, 0.5, &mut direct)
        .expect("direct run succeeds");
    assert!(c == direct, "service result must be bitwise the runner's");
    // And both match the chunked host reference bitwise.
    let mut expect = (*c0).clone();
    reference::dgemm_chunked_fma(1.5, &a, &b, 0.5, &mut expect, P().pk);
    assert!(c == expect);
}

/// Bounded admission: once the tenant's queue is full, submit refuses
/// with the structured depth/cap reason instead of queueing unbounded.
#[test]
fn queue_full_sheds_with_structured_reason() {
    let mut cfg = small_cfg();
    cfg.tenants = vec![TenantCfg {
        name: "test".into(),
        weight: 1,
        queue_cap: 2,
    }];
    let svc = Service::start(cfg);
    // Occupy the single worker with a wedged request (one fuse wait
    // per attempt buys plenty of time to fill the queue behind it).
    let mut blocker = request(200);
    blocker.faults = Some(FaultPlan::EveryAttempt(wedge()));
    let blocker_ticket = svc.submit(blocker).expect("admitted");
    std::thread::sleep(Duration::from_millis(20)); // worker picks it up
    let mut outcomes = Vec::new();
    let mut rejected = 0;
    for seed in [201, 202, 203, 204] {
        match svc.submit(request(seed)) {
            Ok(t) => outcomes.push(t),
            Err(RejectReason::QueueFull { tenant, depth, cap }) => {
                assert_eq!((tenant, depth, cap), (0, 2, 2));
                rejected += 1;
            }
            Err(other) => panic!("unexpected rejection {other}"),
        }
    }
    assert!(rejected >= 2, "cap 2 must shed at least 2 of 4");
    // Everything admitted still completes; nothing is silently lost.
    for t in outcomes {
        assert!(matches!(t.wait(), ServeOutcome::Completed { .. }));
    }
    assert!(matches!(blocker_ticket.wait(), ServeOutcome::Failed { .. }));
    svc.shutdown();
}

/// A deadline that expires while queued resolves as a deadline
/// cancellation without ever touching a core group.
#[test]
fn expired_deadline_cancels_without_a_lease() {
    let svc = Service::start(small_cfg());
    let mut req = request(300);
    req.deadline = Some(Duration::ZERO);
    let outcome = svc.submit(req).expect("admitted").wait();
    let ServeOutcome::Cancelled { deadline, attempts } = outcome else {
        panic!("expected cancellation, got {outcome:?}");
    };
    assert!(deadline);
    assert_eq!(attempts, 0, "no core group was spent on it");
    // The service stays live.
    assert!(matches!(
        svc.submit(request(301)).unwrap().wait(),
        ServeOutcome::Completed { .. }
    ));
    svc.shutdown();
}

/// Infeasible deadlines are refused at admission once the service has
/// a latency estimate.
#[test]
fn hopeless_deadline_is_shed_at_admission() {
    let svc = Service::start(small_cfg());
    // Prime the EWMA with one completion.
    assert!(matches!(
        svc.submit(request(400)).unwrap().wait(),
        ServeOutcome::Completed { .. }
    ));
    assert!(!svc.latency_estimate().is_zero());
    let mut req = request(401);
    req.deadline = Some(Duration::from_nanos(1));
    match svc.submit(req) {
        Err(RejectReason::DeadlineInfeasible { deadline, estimate }) => {
            assert_eq!(deadline, Duration::from_nanos(1));
            assert!(!estimate.is_zero());
        }
        other => panic!("expected DeadlineInfeasible, got {other:?}"),
    }
    svc.shutdown();
}

/// Satellite contract: a transient first-attempt fault retries on a
/// *different* core group and completes bitwise-correct on attempt 2.
#[test]
fn transient_fault_retries_on_a_different_group_and_heals() {
    let mut cfg = small_cfg();
    cfg.core_groups = 2;
    let svc = Service::start(cfg);
    let mut req = request(500);
    req.faults = Some(FaultPlan::FirstAttemptOnly(wedge()));
    let c0 = req.c.clone();
    let (a, b) = (req.a.clone(), req.b.clone());
    let outcome = svc.submit(req).expect("admitted").wait();
    let ServeOutcome::Completed { c, attempts, .. } = outcome else {
        panic!("expected retry-healed completion, got {outcome:?}");
    };
    assert_eq!(attempts, 2, "first attempt wedges, second heals");
    let mut expect = (*c0).clone();
    reference::dgemm_chunked_fma(1.5, &a, &b, 0.5, &mut expect, P().pk);
    assert!(c == expect, "healed result is bitwise correct");
    svc.shutdown();
}

/// Satellite contract: a permanent fault plan exhausts the retry
/// budget and the *last* error is preserved in the outcome.
#[test]
fn permanent_fault_exhausts_budget_with_last_error_preserved() {
    let mut cfg = small_cfg();
    cfg.core_groups = 2;
    cfg.backoff.max_attempts = 3;
    let svc = Service::start(cfg);
    let mut req = request(600);
    req.faults = Some(FaultPlan::EveryAttempt(wedge()));
    let outcome = svc.submit(req).expect("admitted").wait();
    let ServeOutcome::Failed { error, attempts } = outcome else {
        panic!("expected budget exhaustion, got {outcome:?}");
    };
    assert_eq!(attempts, 3, "the full budget was spent");
    assert!(
        matches!(error, DgemmError::MeshDeadlock { .. }),
        "the final attempt's structured error survives: {error}"
    );
    svc.shutdown();
}

/// The quarantine state machine end to end: a group that fails
/// threshold leases in a row leaves the rotation, the healer probes it
/// with a bitwise GEMM, readmits it, and clean traffic then completes
/// on the recovered (sole) group.
#[test]
fn quarantine_probe_readmission_cycle() {
    let quarantined_before = metrics::global()
        .snapshot()
        .counter("serve.pool.quarantined")
        .unwrap_or(0);
    let mut cfg = small_cfg();
    cfg.quarantine_threshold = 2;
    cfg.backoff.max_attempts = 1; // each wedge burns exactly one lease
    let svc = Service::start(cfg);
    for seed in [700, 701] {
        let mut req = request(seed);
        req.faults = Some(FaultPlan::EveryAttempt(wedge()));
        assert!(matches!(
            svc.submit(req).unwrap().wait(),
            ServeOutcome::Failed { .. }
        ));
    }
    let quarantined_after = metrics::global()
        .snapshot()
        .counter("serve.pool.quarantined")
        .unwrap_or(0);
    assert!(
        quarantined_after > quarantined_before,
        "the second consecutive failure must quarantine the group"
    );
    // The pool's only group is (or was) quarantined; this completion
    // proves the healer probed and readmitted it.
    let req = request(702);
    let c0 = req.c.clone();
    let (a, b) = (req.a.clone(), req.b.clone());
    let outcome = svc.submit(req).unwrap().wait();
    let ServeOutcome::Completed { c, .. } = outcome else {
        panic!("expected completion on the readmitted group, got {outcome:?}");
    };
    let mut expect = (*c0).clone();
    reference::dgemm_chunked_fma(1.5, &a, &b, 0.5, &mut expect, P().pk);
    assert!(c == expect, "recovered group computes bitwise correctly");
    svc.shutdown();
}

/// Graceful shutdown drains admitted work: every ticket resolves.
#[test]
fn shutdown_drains_admitted_requests() {
    let svc = Service::start(small_cfg());
    let tickets: Vec<_> = (0..4)
        .map(|i| svc.submit(request(800 + i)).expect("admitted"))
        .collect();
    svc.shutdown();
    for t in tickets {
        assert!(
            matches!(t.wait(), ServeOutcome::Completed { .. }),
            "queued work drains before workers exit"
        );
    }
    assert!(matches!(
        svc.submit(request(900)),
        Err(RejectReason::ShuttingDown)
    ));
}
