//! Model-checks the tenant-queue handoff. Compiled to nothing without
//! `RUSTFLAGS='--cfg sw_check'`; the CI `model-check` job runs it
//! instrumented.
#![cfg(sw_check)]

use sw_check::models::Expect;

#[test]
fn serve_models_match_expectations() {
    for model in sw_serve::check_models::models() {
        let report = model.run(0);
        assert!(
            model.satisfied(&report),
            "model `{}` expected {:?}, got:\n{report}",
            model.name,
            model.expect,
        );
        if let Expect::Violation(_) = model.expect {
            let v = report.violation().expect("mutant violates");
            assert!(!v.trace.is_empty(), "`{}` has no trace", model.name);
            assert!(
                !v.schedule.is_empty(),
                "`{}` has no replay token",
                model.name
            );
        }
    }
}
