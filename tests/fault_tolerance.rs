//! End-to-end fault-injection and recovery tests: the seeded fault
//! plans of `sw-faults` driven through `DgemmRunner`, asserting that
//! every injected failure mode is either healed (bitwise-identical
//! result) or surfaced as the documented structured error — never a
//! panic.

use std::time::Duration;
use sw26010_dgemm::mem::MemError;
use sw26010_dgemm::sim::CoreGroup;
use sw_dgemm::gen::random_matrix;
use sw_dgemm::reference::{dgemm_naive, gemm_tolerance};
use sw_dgemm::{
    AbftPolicy, BlockingParams, DgemmError, DgemmRunner, FaultSpec, Matrix, StuckSpec, Variant,
    WedgeSpec,
};

/// Operands at test blocking: `blocks = (grid_m, grid_n, grid_k)`.
fn operands(
    p: &BlockingParams,
    blocks: (usize, usize, usize),
    seed: u64,
) -> (Matrix, Matrix, Matrix) {
    let (m, n, k) = (p.bm() * blocks.0, p.bn() * blocks.1, p.bk() * blocks.2);
    (
        random_matrix(m, k, seed),
        random_matrix(k, n, seed + 1),
        random_matrix(m, n, seed + 2),
    )
}

/// The fault-free result of the same runner configuration, for bitwise
/// comparison against healed runs.
fn clean_result(v: Variant, p: BlockingParams, a: &Matrix, b: &Matrix, c0: &Matrix) -> Matrix {
    let mut c = c0.clone();
    DgemmRunner::new(v)
        .params(p)
        .run(1.5, a, b, 0.5, &mut c)
        .expect("fault-free run failed");
    c
}

/// ABFT `Correct` heals a guaranteed DMA bit-flip in every CG block:
/// the result is bitwise identical to the fault-free run, and the
/// injection/detection/correction tallies line up.
#[test]
fn abft_correct_heals_per_block_bitflips() {
    let p = BlockingParams::test_small();
    let (a, b, c0) = operands(&p, (2, 1, 2), 11);
    let expect = clean_result(Variant::Pe, p, &a, &b, &c0);

    let mut c = c0.clone();
    let spec = FaultSpec {
        bitflip_every_epoch: true,
        ..FaultSpec::seeded(0xB17F11B)
    };
    let report = DgemmRunner::new(Variant::Pe)
        .params(p)
        .faults(spec)
        .abft(AbftPolicy::Correct)
        .run(1.5, &a, &b, 0.5, &mut c)
        .expect("ABFT Correct must heal the flips");
    assert_eq!(
        c.max_abs_diff(&expect),
        0.0,
        "healed result must be bitwise clean"
    );

    let f = report.faults.expect("fault plan installed");
    let blocks = 4;
    assert!(
        f.injected_dma_bitflip >= blocks,
        "one guaranteed flip per block: {f:?}"
    );
    assert!(f.detected_abft >= blocks, "every flip detected: {f:?}");
    assert_eq!(
        f.recovered_abft_blocks, f.detected_abft,
        "every detection healed by recompute: {f:?}"
    );
}

/// The acceptance-scale case: ABFT `Correct` at the paper's blocking
/// (§III-C.2), one guaranteed bit-flip in the CG block, stays within
/// the same forward-error tolerance as the fault-free variant ladder.
#[test]
fn abft_correct_at_paper_blocking_within_tolerance() {
    let p = BlockingParams::paper_single();
    let (a, b, c0) = operands(&p, (1, 1, 1), 23);
    let mut c = c0.clone();
    let spec = FaultSpec {
        bitflip_every_epoch: true,
        ..FaultSpec::seeded(0xAB1)
    };
    let report = DgemmRunner::new(Variant::Pe)
        .params(p)
        .faults(spec)
        .abft(AbftPolicy::Correct)
        .run(1.5, &a, &b, 0.5, &mut c)
        .expect("paper-blocking ABFT run failed");
    assert!(report.faults.unwrap().injected_dma_bitflip >= 1);

    let mut expect = c0.clone();
    dgemm_naive(1.5, &a, &b, 0.5, &mut expect);
    let tol = gemm_tolerance(&a, &b, 1.5) * 1.5;
    let err = c.max_abs_diff(&expect);
    assert!(
        err <= tol,
        "max error {err:.3e} exceeds tolerance {tol:.3e}"
    );
}

/// ABFT `Detect` refuses to silently return a corrupted C: the same
/// flip plan surfaces as a structured `AbftMismatch` after one attempt.
#[test]
fn abft_detect_surfaces_structured_mismatch() {
    let p = BlockingParams::test_small();
    let (a, b, c0) = operands(&p, (1, 1, 1), 31);
    let mut c = c0.clone();
    let spec = FaultSpec {
        bitflip_every_epoch: true,
        ..FaultSpec::seeded(7)
    };
    let err = DgemmRunner::new(Variant::Pe)
        .params(p)
        .faults(spec)
        .abft(AbftPolicy::Detect)
        .run(1.5, &a, &b, 0.5, &mut c)
        .expect_err("Detect must not heal");
    match err {
        DgemmError::AbftMismatch {
            block, attempts, ..
        } => {
            assert_eq!(block, (0, 0, 0));
            assert_eq!(attempts, 1);
        }
        other => panic!("expected AbftMismatch, got {other}"),
    }
}

/// An artificially wedged CPE converts the old mesh-deadlock panic into
/// a structured `MeshDeadlock` naming the starving rendezvous group —
/// and the *same* core group runs a subsequent clean DGEMM.
#[test]
fn wedged_mesh_returns_structured_deadlock_then_group_recovers() {
    let p = BlockingParams::test_small();
    let (a, b, c0) = operands(&p, (1, 1, 1), 47);
    let mut cg = CoreGroup::new();

    let mut c = c0.clone();
    let spec = FaultSpec {
        // CPE (2,2): both its row group and column group starve.
        wedge: Some(WedgeSpec { cpe: 18, epoch: 0 }),
        ..FaultSpec::seeded(5)
    };
    let err = DgemmRunner::new(Variant::Sched)
        .params(p)
        .faults(spec)
        .mesh_timeout(Duration::from_millis(200))
        .run_on(&mut cg, 1.5, &a, &b, 0.5, &mut c)
        .expect_err("a wedged sender must deadlock the mesh");
    match err {
        DgemmError::MeshDeadlock { coord, summary } => {
            // Starvation cascades (the wedged CPE's row mates are
            // themselves column senders), so the fuse can trip
            // anywhere — but the summary names the starving groups.
            assert!(coord.0 < 8 && coord.1 < 8, "fuse at {coord:?}");
            assert!(
                summary.contains("waits for"),
                "summary must name the starving groups: {summary}"
            );
            assert_ne!(summary, "all row/column rendezvous groups balanced");
        }
        other => panic!("expected MeshDeadlock, got {other}"),
    }

    // Recovery is a non-event: same group, clean run, exact result.
    let expect = clean_result(Variant::Sched, p, &a, &b, &c0);
    let mut c2 = c0.clone();
    DgemmRunner::new(Variant::Sched)
        .params(p)
        .run_on(&mut cg, 1.5, &a, &b, 0.5, &mut c2)
        .expect("the group must survive a deadlocked run");
    assert_eq!(c2.max_abs_diff(&expect), 0.0);
}

/// A stuck CPE (its DMA never completes) exhausts the retry budget,
/// gets mapped out, and the schedule degrades onto the 63 survivors —
/// with a bitwise-identical result.
#[test]
fn stuck_cpe_degrades_onto_survivors_bitwise_clean() {
    let p = BlockingParams::test_small();
    let (a, b, c0) = operands(&p, (2, 1, 1), 59);
    let expect = clean_result(Variant::Pe, p, &a, &b, &c0);

    let mut c = c0.clone();
    let spec = FaultSpec {
        stuck: Some(StuckSpec { cpe: 9, epoch: 0 }),
        ..FaultSpec::seeded(13)
    };
    let report = DgemmRunner::new(Variant::Pe)
        .params(p)
        .faults(spec)
        .run(1.5, &a, &b, 0.5, &mut c)
        .expect("degradation must heal a stuck CPE");
    assert_eq!(
        c.max_abs_diff(&expect),
        0.0,
        "degraded blocks must be bitwise identical"
    );

    let f = report.faults.unwrap();
    assert_eq!(f.recovered_failed_cpes, 1, "{f:?}");
    assert_eq!(
        f.recovered_degraded_blocks, 2,
        "both blocks degraded: {f:?}"
    );
    assert!(f.detected_retry_exhausted >= 1, "{f:?}");
    assert!(f.injected_stuck_dma >= 1, "{f:?}");
    assert!(
        report.stats.panicked_cpes.contains(&9),
        "the stuck CPE's abort is recorded: {:?}",
        report.stats.panicked_cpes
    );
}

/// With degradation disabled, the same stuck CPE surfaces as the
/// structured retry-budget error instead of being mapped out.
#[test]
fn degrade_off_surfaces_retry_budget_exhaustion() {
    let p = BlockingParams::test_small();
    let (a, b, c0) = operands(&p, (1, 1, 1), 61);
    let mut c = c0.clone();
    let spec = FaultSpec {
        stuck: Some(StuckSpec { cpe: 9, epoch: 0 }),
        ..FaultSpec::seeded(13)
    };
    let err = DgemmRunner::new(Variant::Pe)
        .params(p)
        .faults(spec)
        .degrade(false)
        .run(1.5, &a, &b, 0.5, &mut c)
        .expect_err("degrade(false) must surface the failure");
    match err {
        DgemmError::Mem(MemError::RetryBudgetExhausted { attempts, what }) => {
            assert_eq!(attempts, 3, "budget is 1 try + 2 retries");
            assert!(what.contains("op 0"), "{what}");
        }
        other => panic!("expected RetryBudgetExhausted, got {other}"),
    }
}

/// Transient DMA failures below the retry budget are healed in place
/// by backoff-retry: exact result, `recovered_dma_retry` counted, no
/// CPE failures, no degradation.
#[test]
fn transient_dma_faults_healed_by_retry() {
    let p = BlockingParams::test_small();
    let (a, b, c0) = operands(&p, (2, 1, 1), 71);
    let expect = clean_result(Variant::Row, p, &a, &b, &c0);

    let mut c = c0.clone();
    let spec = FaultSpec {
        dma_transient_per_myriad: 500, // 5% of DMA ops fail once
        ..FaultSpec::seeded(0x7E4)
    };
    let report = DgemmRunner::new(Variant::Row)
        .params(p)
        .faults(spec)
        .run(1.5, &a, &b, 0.5, &mut c)
        .expect("transients within budget must be invisible");
    assert_eq!(c.max_abs_diff(&expect), 0.0);

    let f = report.faults.unwrap();
    assert!(f.injected_dma_transient > 0, "rate must have fired: {f:?}");
    assert!(f.recovered_dma_retry > 0, "{f:?}");
    assert!(f.recovered_dma_retry <= f.injected_dma_transient, "{f:?}");
    assert_eq!(f.recovered_failed_cpes, 0, "{f:?}");
    assert_eq!(f.detected_retry_exhausted, 0, "{f:?}");
    assert!(report.stats.panicked_cpes.is_empty());
}

/// An installed-but-empty fault plan is metabolically free: zero
/// counters, and the result is bitwise identical to the fast path.
#[test]
fn empty_fault_plan_counts_nothing() {
    let p = BlockingParams::test_small();
    let (a, b, c0) = operands(&p, (1, 1, 1), 83);
    let expect = clean_result(Variant::Pe, p, &a, &b, &c0);

    let mut c = c0.clone();
    let report = DgemmRunner::new(Variant::Pe)
        .params(p)
        .faults(FaultSpec::seeded(99))
        .run(1.5, &a, &b, 0.5, &mut c)
        .expect("empty plan must run clean");
    assert_eq!(c.max_abs_diff(&expect), 0.0);
    let f = report.faults.unwrap();
    assert_eq!(f.total_injected(), 0, "{f:?}");
    assert_eq!(f, Default::default(), "all counters zero: {f:?}");

    // And with no plan at all, the report carries no fault section.
    let mut c2 = c0.clone();
    let r2 = DgemmRunner::new(Variant::Pe)
        .params(p)
        .run(1.5, &a, &b, 0.5, &mut c2)
        .unwrap();
    assert!(r2.faults.is_none());
}

/// Fault injection and ABFT need the recovery machinery of the shared
/// variants; on RAW they are rejected up front as a parameter error.
#[test]
fn raw_variant_rejects_fault_plans() {
    let p = BlockingParams::test_small();
    let (a, b, c0) = operands(&p, (1, 1, 1), 89);
    let mut c = c0.clone();
    let err = DgemmRunner::new(Variant::Raw)
        .faults(FaultSpec::seeded(1))
        .run(1.5, &a, &b, 0.5, &mut c)
        .expect_err("RAW has no recovery machinery");
    assert!(matches!(err, DgemmError::BadParams(_)), "{err}");
}

/// LDM soft errors and mesh word drops under `Correct` are healed the
/// same way DMA payload faults are: detect, recompute, converge.
#[test]
fn ldm_and_mesh_faults_healed_under_correct() {
    let p = BlockingParams::test_small();
    let (a, b, c0) = operands(&p, (1, 1, 2), 97);
    let expect = clean_result(Variant::Pe, p, &a, &b, &c0);

    let mut c = c0.clone();
    let spec = FaultSpec {
        ldm_bitflip_per_myriad: 600,
        mesh_drop_per_myriad: 2,
        ..FaultSpec::seeded(0x1D31)
    };
    let report = DgemmRunner::new(Variant::Pe)
        .params(p)
        .faults(spec)
        .mesh_timeout(Duration::from_millis(200))
        .abft(AbftPolicy::Correct)
        .run(1.5, &a, &b, 0.5, &mut c);
    // A dropped mesh word can starve a receive into a (structured)
    // deadlock rather than a checksum miss; both are acceptable
    // outcomes — what is not acceptable is a panic or a silent wrong
    // answer.
    match report {
        Ok(r) => {
            assert_eq!(c.max_abs_diff(&expect), 0.0);
            let f = r.faults.unwrap();
            assert!(f.injected_ldm_bitflip > 0, "{f:?}");
            assert_eq!(f.recovered_abft_blocks, f.detected_abft, "{f:?}");
        }
        Err(DgemmError::MeshDeadlock { .. }) => {}
        Err(other) => panic!("unexpected failure: {other}"),
    }
}
