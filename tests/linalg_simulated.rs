//! End-to-end: the dense-solver layer driving its O(n³) updates
//! through the 64-thread simulated DGEMM.

use sw_dgemm::gen::random_matrix;
use sw_dgemm::{Matrix, Variant};
use sw_linalg::GemmBackend;
use sw_linalg::{lu_factor, lu_residual, lu_solve, syrk, trsm_left, Backend, Diag, Uplo};

#[test]
fn blocked_lu_with_simulated_trailing_updates() {
    let n = 256;
    let a = random_matrix(n, n, 71);
    let sim = Backend::Simulated(Variant::Sched);
    let f = lu_factor(&a, 64, &sim).expect("LU on the simulator");
    let scale = a.max_abs() * n as f64 * f64::EPSILON;
    let res = lu_residual(&a, &f);
    assert!(
        res < 128.0 * scale,
        "residual {res:.3e} vs scale {scale:.3e}"
    );
    // And it solves.
    let xs = random_matrix(n, 2, 72);
    let mut b = Matrix::zeros(n, 2);
    Backend::Host.gemm(1.0, &a, &xs, 0.0, &mut b).unwrap();
    let x = lu_solve(&f, &b).unwrap();
    assert!(
        x.max_abs_diff(&xs) < 1e-6,
        "solve error {}",
        x.max_abs_diff(&xs)
    );
}

#[test]
fn simulated_and_host_lu_agree() {
    // Same algorithm, two backends: the simulated GEMM's FMA rounding
    // differs slightly, but factors must agree to GEMM accuracy.
    let n = 128;
    let a = random_matrix(n, n, 73);
    let fh = lu_factor(&a, 32, &Backend::Host).unwrap();
    let fs = lu_factor(&a, 32, &Backend::Simulated(Variant::Db)).unwrap();
    assert_eq!(fh.piv, fs.piv, "pivot choices must coincide");
    assert!(
        fh.lu.max_abs_diff(&fs.lu) < 1e-9,
        "{}",
        fh.lu.max_abs_diff(&fs.lu)
    );
}

#[test]
fn trsm_through_the_simulator() {
    let n = 192;
    let r = random_matrix(n, n, 74);
    let a = Matrix::from_fn(n, n, |i, j| {
        if i > j {
            0.3 * r.get(i, j)
        } else if i == j {
            3.0 + r.get(i, i).abs()
        } else {
            0.0
        }
    });
    let xs = random_matrix(n, 8, 75);
    let mut b = Matrix::zeros(n, 8);
    Backend::Host.gemm(1.0, &a, &xs, 0.0, &mut b).unwrap();
    trsm_left(
        Uplo::Lower,
        Diag::NonUnit,
        1.0,
        &a,
        &mut b,
        64,
        &Backend::Simulated(Variant::Sched),
    )
    .unwrap();
    assert!(b.max_abs_diff(&xs) < 1e-9, "{}", b.max_abs_diff(&xs));
}

#[test]
fn syrk_through_the_simulator() {
    let (n, k) = (128, 64);
    let a = random_matrix(n, k, 76);
    let c0 = random_matrix(n, n, 77);
    let mut c_sim = c0.clone();
    let mut c_host = c0.clone();
    syrk(
        Uplo::Lower,
        2.0,
        &a,
        1.0,
        &mut c_sim,
        64,
        &Backend::Simulated(Variant::Sched),
    )
    .unwrap();
    syrk(Uplo::Lower, 2.0, &a, 1.0, &mut c_host, 64, &Backend::Host).unwrap();
    assert!(
        c_sim.max_abs_diff(&c_host) < 1e-9,
        "{}",
        c_sim.max_abs_diff(&c_host)
    );
    // Off-triangle untouched either way.
    for j in 1..n {
        for i in 0..j {
            assert_eq!(c_sim.get(i, j), c0.get(i, j));
        }
    }
}
