//! Property-based tests on the core invariants, driven by hand-rolled
//! seeded generators (`sw_dgemm::gen::SplitMix64`) instead of an
//! external property-testing framework. Every case derives entirely
//! from a deterministic seed, so failures reproduce exactly; assertion
//! messages carry the case seed.

use sw26010_dgemm::dgemm::mapping::{row_mode_global_row, row_mode_owner};
use sw26010_dgemm::dgemm::reference::{dgemm_chunked_fma, dgemm_naive, gemm_tolerance};
use sw26010_dgemm::isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
use sw26010_dgemm::isa::sched::list_schedule;
use sw26010_dgemm::isa::{Machine, NullComm};
use sw26010_dgemm::mem::{Ldm, MainMemory};
use sw26010_dgemm::sim::{Dag, Resource};
use sw_dgemm::gen::{random_matrix, SplitMix64};

/// Runs `body` once per case with a per-case RNG; panics carry the
/// case index so a failure is reproducible by construction.
fn cases(n: u64, test_salt: u64, mut body: impl FnMut(&mut SplitMix64)) {
    for case in 0..n {
        let mut rng = SplitMix64::new(test_salt.wrapping_mul(0x9E37_79B9).wrapping_add(case));
        body(&mut rng);
    }
}

/// The ROW_MODE interleave is a bijection on {0..128} × columns
/// (exhaustive over the old sampled domain).
#[test]
fn row_mode_interleave_bijective() {
    for g in 0..1024 {
        let (c, l) = row_mode_owner(g);
        assert!(c < 8, "g={g}");
        assert_eq!(row_mode_global_row(l, c), g, "g={g}");
    }
}

/// LDM bump allocation never overlaps, never exceeds capacity, and
/// always returns 128 B-aligned buffers.
#[test]
fn ldm_allocations_disjoint_and_aligned() {
    cases(64, 1, |rng| {
        let n_allocs = rng.range_usize(1, 20);
        let mut ldm = Ldm::new();
        let mut taken: Vec<(usize, usize)> = Vec::new();
        for _ in 0..n_allocs {
            let len = rng.range_usize(1, 700);
            match ldm.alloc(len) {
                Ok(buf) => {
                    assert_eq!(buf.len(), len);
                    assert_eq!(buf.offset() % 16, 0);
                    assert!(buf.offset() + buf.len() <= 8192);
                    for &(o, l) in &taken {
                        assert!(
                            buf.offset() >= o + l || o >= buf.offset() + buf.len(),
                            "overlap: ({}, {}) vs ({o}, {l})",
                            buf.offset(),
                            buf.len()
                        );
                    }
                    taken.push((buf.offset(), buf.len()));
                }
                Err(_) => {
                    // Once full, it must stay full for this size.
                    assert!(ldm.free_doubles() < len);
                }
            }
        }
    });
}

/// The chunked-FMA reference agrees with the naive reference within the
/// forward-error envelope for random shapes, chunkings and scalars.
#[test]
fn chunked_reference_within_tolerance() {
    cases(24, 2, |rng| {
        let m = 4 * rng.range_usize(1, 12);
        let n = 4 * rng.range_usize(1, 12);
        let chunk = [4usize, 8, 16][rng.range_usize(0, 3)];
        let k = chunk * rng.range_usize(1, 6);
        let alpha = rng.range_f64(-4.0, 4.0);
        let beta = rng.range_f64(-4.0, 4.0);
        let seed = rng.next_u64() % 1000;
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 1);
        let mut c1 = random_matrix(m, n, seed + 2);
        let mut c2 = c1.clone();
        dgemm_naive(alpha, &a, &b, beta, &mut c1);
        dgemm_chunked_fma(alpha, &a, &b, beta, &mut c2, chunk);
        let tol = gemm_tolerance(&a, &b, alpha) * (1.0 + beta.abs());
        assert!(
            c1.max_abs_diff(&c2) <= tol,
            "m={m} n={n} k={k} chunk={chunk}"
        );
    });
}

/// The list scheduler preserves kernel semantics for arbitrary shapes
/// (numerics must match the unscheduled stream bitwise) and never slows
/// a stream down.
#[test]
fn list_scheduler_preserves_semantics() {
    cases(12, 3, |rng| {
        let pm = 16 * rng.range_usize(1, 3);
        let pn = 4 * rng.range_usize(1, 4);
        let pk = [2usize, 5, 8][rng.range_usize(0, 3)];
        let alpha = rng.range_f64(-2.0, 2.0);
        let seed = rng.next_u64() % 100;
        let cfg = BlockKernelCfg {
            pm,
            pn,
            pk,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base: 0,
            b_base: 2048,
            c_base: 4096,
            alpha_addr: 8000,
        };
        let naive = gen_block_kernel(&cfg, KernelStyle::Naive);
        let auto = list_schedule(&naive);
        let mk_ldm = || {
            let mut v = random_matrix(8192, 1, seed).into_vec();
            v[8000] = alpha;
            v
        };
        let mut l1 = mk_ldm();
        let mut l2 = mk_ldm();
        let mut comm = NullComm;
        let r1 = Machine::new(&mut l1, &mut comm).run(&naive);
        let r2 = Machine::new(&mut l2, &mut comm).run(&auto);
        assert_eq!(l1, l2, "pm={pm} pn={pn} pk={pk}");
        assert!(
            r2.cycles <= r1.cycles,
            "scheduling must never slow a stream down: {} vs {}",
            r2.cycles,
            r1.cycles
        );
    });
}

/// Timing-engine sanity: the makespan is at least the critical serial
/// resource demand and at most the fully serial sum.
#[test]
fn dag_makespan_bounds() {
    cases(64, 4, |rng| {
        let n_tasks = rng.range_usize(1, 40);
        let mut dag = Dag::new();
        let mut total = 0u64;
        let mut dma = 0u64;
        let mut cpes = 0u64;
        let mut prev = None;
        for i in 0..n_tasks {
            let resource = if rng.range_usize(0, 2) == 0 {
                Resource::Dma
            } else {
                Resource::Cpes
            };
            let d = rng.range_usize(1, 1000) as u64;
            match resource {
                Resource::Dma => dma += d,
                Resource::Cpes => cpes += d,
                _ => {}
            }
            total += d;
            // Chain every third task to create dependence structure.
            let deps: Vec<_> = if i % 3 == 0 {
                prev.into_iter().collect()
            } else {
                vec![]
            };
            prev = Some(dag.task(resource, d, &deps, "t"));
        }
        let r = dag.schedule();
        assert!(r.makespan_cycles <= total);
        assert!(r.makespan_cycles >= dma.max(cpes));
        assert_eq!(r.dma_busy_cycles, dma);
        assert_eq!(r.cpes_busy_cycles, cpes);
    });
}

/// Main-memory install/extract round-trips arbitrary matrices.
#[test]
fn main_memory_roundtrip() {
    cases(32, 5, |rng| {
        let rows = rng.range_usize(1, 64);
        let cols = rng.range_usize(1, 64);
        let m = random_matrix(rows, cols, rng.next_u64() % 1000);
        let mut mem = MainMemory::new();
        let id = mem.install(m.clone()).unwrap();
        assert_eq!(mem.extract(id).unwrap(), m);
    });
}

/// Matrix max_abs_diff is a metric-ish: symmetric and zero iff equal.
#[test]
fn matrix_diff_properties() {
    cases(32, 6, |rng| {
        let rows = rng.range_usize(1, 16);
        let cols = rng.range_usize(1, 16);
        let seed = rng.next_u64() % 100;
        let a = random_matrix(rows, cols, seed);
        let b = random_matrix(rows, cols, seed + 1);
        assert_eq!(a.max_abs_diff(&b), b.max_abs_diff(&a));
        assert_eq!(a.max_abs_diff(&a), 0.0);
    });
}

/// End-to-end: the SCHED variant matches the naive host reference for
/// random block-aligned shapes and scalars. (The full functional
/// simulator is expensive; fewer cases.)
#[test]
fn functional_sched_random_shapes() {
    cases(6, 7, |rng| {
        let p = sw_dgemm::BlockingParams::test_small();
        let m = p.bm() * rng.range_usize(1, 3);
        let n = p.bn() * rng.range_usize(1, 3);
        let k = p.bk() * rng.range_usize(1, 3);
        let alpha = rng.range_f64(-2.0, 2.0);
        let beta = rng.range_f64(-2.0, 2.0);
        let seed = rng.next_u64() % 1000;
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 1);
        let mut c = random_matrix(m, n, seed + 2);
        let mut expect = c.clone();
        sw_dgemm::DgemmRunner::new(sw_dgemm::Variant::Sched)
            .params(p)
            .run(alpha, &a, &b, beta, &mut c)
            .unwrap();
        dgemm_naive(alpha, &a, &b, beta, &mut expect);
        let tol = gemm_tolerance(&a, &b, alpha) * (1.0 + beta.abs());
        assert!(c.max_abs_diff(&expect) <= tol, "m={m} n={n} k={k}");
    });
}

/// The software-emulated cache is transparent: any access sequence
/// reads the same values as direct memory access, and after a flush,
/// main memory reflects all writes.
#[test]
fn software_cache_is_transparent() {
    cases(32, 8, |rng| {
        use sw26010_dgemm::mem::SoftCache;
        let lines = rng.range_usize(1, 8);
        let n_ops = rng.range_usize(1, 60);
        let seed = rng.next_u64() % 100;
        let mut mem = MainMemory::new();
        let m0 = random_matrix(64, 8, seed);
        let mat = mem.install(m0.clone()).unwrap();
        let mut shadow = m0;
        let mut ldm = Ldm::new();
        let buf = ldm.alloc(lines * 16).unwrap();
        let mut cache = SoftCache::new(&mem, mat, buf).unwrap();
        for _ in 0..n_ops {
            let r = rng.range_usize(0, 64);
            let c = rng.range_usize(0, 8);
            if rng.range_usize(0, 2) == 0 {
                let v = rng.range_f64(-100.0, 100.0);
                cache.write(&mem, &mut ldm, r, c, v).unwrap();
                shadow.set(r, c, v);
            } else {
                let got = cache.read(&mem, &mut ldm, r, c).unwrap();
                assert_eq!(got, shadow.get(r, c), "r={r} c={c}");
            }
        }
        cache.flush(&mem, &ldm).unwrap();
        assert_eq!(mem.extract(mat).unwrap(), shadow);
    });
}

/// ROW_MODE get followed by ROW_MODE put is the identity for any
/// aligned region, for every mesh column.
#[test]
fn row_mode_roundtrip_property() {
    cases(16, 9, |rng| {
        use sw26010_dgemm::mem::dma::{row_get, row_put, MatRegion};
        let rows = 16 * rng.range_usize(1, 6);
        let cols = rng.range_usize(1, 6);
        let col0 = rng.range_usize(0, 3);
        let seed = rng.next_u64() % 100;
        let src = random_matrix(rows.max(128), 8, seed);
        let mut mem = MainMemory::new();
        let a = mem.install(src.clone()).unwrap();
        let b = mem
            .install(sw_dgemm::Matrix::zeros(src.rows(), src.cols()))
            .unwrap();
        let region_a = MatRegion::new(a, 0, col0, rows, cols);
        let region_b = MatRegion::new(b, 0, col0, rows, cols);
        for mesh_col in 0..8 {
            let mut ldm = Ldm::new();
            let buf = ldm.alloc(rows * cols / 8).unwrap();
            row_get(&mem, region_a, mesh_col, &mut ldm, buf).unwrap();
            row_put(&mem, region_b, mesh_col, &ldm, buf).unwrap();
        }
        let out = mem.extract(b).unwrap();
        for c in col0..col0 + cols {
            for r in 0..rows {
                assert_eq!(out.get(r, c), src.get(r, c), "r={r} c={c}");
            }
        }
    });
}

/// Padding embeds/extracts are lossless and zero-fill the frame.
#[test]
fn padding_embed_extract() {
    cases(32, 10, |rng| {
        use sw_dgemm::padding::PadPlan;
        let rows = rng.range_usize(1, 20);
        let cols = rng.range_usize(1, 20);
        let pr = rng.range_usize(0, 10);
        let pc = rng.range_usize(0, 10);
        let m = random_matrix(rows, cols, rng.next_u64() % 100);
        let e = PadPlan::embed(&m, rows + pr, cols + pc);
        assert_eq!(PadPlan::extract(&e, rows, cols), m.clone());
        // Frame is zero.
        for c in 0..cols + pc {
            for r in 0..rows + pr {
                if r >= rows || c >= cols {
                    assert_eq!(e.get(r, c), 0.0);
                }
            }
        }
    });
}

/// Binary encode/decode is a bijection over random well-formed
/// instructions.
#[test]
fn instruction_encoding_roundtrip() {
    use sw26010_dgemm::isa::encoding::{decode, encode};
    use sw26010_dgemm::isa::instr::{Instr, Net};
    use sw26010_dgemm::isa::{IReg, VReg};
    cases(256, 11, |rng| {
        let ir = |r: u8| IReg(r % 8);
        let rd = rng.range_usize(0, 32) as u8;
        let ra = rng.range_usize(0, 32) as u8;
        let rb = rng.range_usize(0, 32) as u8;
        let rc_ = rng.range_usize(0, 32) as u8;
        let disp = rng.range_usize(0, 16384) as i64 - 8192;
        let target = rng.range_usize(0, 65536);
        let i = match rng.range_usize(0, 15) {
            0 => Instr::Vmad {
                a: VReg(ra),
                b: VReg(rb),
                c: VReg(rc_),
                d: VReg(rd),
            },
            1 => Instr::Vldd {
                d: VReg(rd),
                base: ir(ra),
                off: disp,
            },
            2 => Instr::Vstd {
                s: VReg(rd),
                base: ir(ra),
                off: disp,
            },
            3 => Instr::Ldde {
                d: VReg(rd),
                base: ir(ra),
                off: disp,
            },
            4 => Instr::Vldr {
                d: VReg(rd),
                base: ir(ra),
                off: disp,
                net: Net::Row,
            },
            5 => Instr::Vldr {
                d: VReg(rd),
                base: ir(ra),
                off: disp,
                net: Net::Col,
            },
            6 => Instr::Lddec {
                d: VReg(rd),
                base: ir(ra),
                off: disp,
                net: Net::Row,
            },
            7 => Instr::Lddec {
                d: VReg(rd),
                base: ir(ra),
                off: disp,
                net: Net::Col,
            },
            8 => Instr::Getr { d: VReg(rd) },
            9 => Instr::Getc { d: VReg(rd) },
            10 => Instr::Vclr { d: VReg(rd) },
            11 => Instr::Addl {
                d: ir(rd),
                s: ir(ra),
                imm: disp,
            },
            12 => Instr::Setl {
                d: ir(rd),
                imm: disp,
            },
            13 => Instr::Bne { s: ir(rd), target },
            _ => Instr::Nop,
        };
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    });
}

/// The CG-level traffic formula of §III-C.1 is exact against a direct
/// walk of Algorithm 1's loads/stores.
#[test]
fn cg_traffic_formula_exact() {
    cases(32, 12, |rng| {
        use sw_dgemm::model::cg_traffic_elements;
        let (bm, bn, bk) = (128usize, 256usize, 768usize);
        let m = bm * rng.range_usize(1, 6);
        let n = bn * rng.range_usize(1, 6);
        let k = bk * rng.range_usize(1, 6);
        // Walk Algorithm 1: per (j, l): B block once; per i: A block, C
        // in and out.
        let mut elems = 0usize;
        for _j in 0..n / bn {
            for _l in 0..k / bk {
                elems += bk * bn;
                for _i in 0..m / bm {
                    elems += bm * bk + 2 * bm * bn;
                }
            }
        }
        let formula = cg_traffic_elements(m, n, k, bk, bn);
        assert!(
            (formula - elems as f64).abs() < 1.0,
            "formula {formula}, walked {elems}"
        );
    });
}

/// Padding overhead is the flop ratio and is always ≥ 1 and < the
/// worst-case bound ((1 + bm/m)(1 + bn/n)(1 + bk/k)).
#[test]
fn padding_overhead_bounds() {
    cases(128, 13, |rng| {
        use sw_dgemm::padding::PadPlan;
        let m = rng.range_usize(1, 500);
        let n = rng.range_usize(1, 500);
        let k = rng.range_usize(1, 500);
        let (bm, bn, bk) = (128usize, 64usize, 128usize);
        let p = PadPlan::new(m, n, k, bm, bn, bk).unwrap();
        let o = p.overhead();
        assert!(o >= 1.0);
        let bound = (1.0 + bm as f64 / m as f64)
            * (1.0 + bn as f64 / n as f64)
            * (1.0 + bk as f64 / k as f64);
        assert!(o <= bound, "m={m} n={n} k={k}: {o} > {bound}");
    });
}

// ---------------------------------------------------------------------
// Execution-engine equivalence: every selectable backend (decoded,
// batched, trace-compiled) must match the seed interpreter
// (`Machine::run_reference`) on random valid programs — register file,
// LDM image, and ExecReport field for field.
// ---------------------------------------------------------------------

mod engine_equivalence {
    use sw26010_dgemm::isa::instr::{Instr, Net};
    use sw26010_dgemm::isa::{DecodedProgram, EngineBackend, IReg, Machine, SinkComm, VReg};
    use sw_dgemm::gen::SplitMix64;

    const LDM_LEN: usize = 512;

    /// One random valid instruction. Memory operands use base `IReg(0)`
    /// (never written, so always 0) with in-bounds offsets; integer ops
    /// write only r1..r6, keeping r0 and the loop counter r7 stable.
    pub(crate) fn random_instr(rng: &mut SplitMix64) -> Instr {
        let v = |rng: &mut SplitMix64| VReg(rng.range_usize(0, 32) as u8);
        let gp = |rng: &mut SplitMix64| IReg(rng.range_usize(1, 7) as u8);
        let base = IReg(0);
        let voff = |rng: &mut SplitMix64| (4 * rng.range_usize(0, LDM_LEN / 4 - 1)) as i64;
        let soff = |rng: &mut SplitMix64| rng.range_usize(0, LDM_LEN) as i64;
        let net = |rng: &mut SplitMix64| {
            if rng.range_usize(0, 2) == 0 {
                Net::Row
            } else {
                Net::Col
            }
        };
        match rng.range_usize(0, 12) {
            0..=2 => Instr::Vmad {
                a: v(rng),
                b: v(rng),
                c: v(rng),
                d: v(rng),
            },
            3 => Instr::Vldd {
                d: v(rng),
                base,
                off: voff(rng),
            },
            4 => Instr::Vstd {
                s: v(rng),
                base,
                off: voff(rng),
            },
            5 => Instr::Ldde {
                d: v(rng),
                base,
                off: soff(rng),
            },
            6 => Instr::Vldr {
                d: v(rng),
                base,
                off: voff(rng),
                net: net(rng),
            },
            7 => Instr::Lddec {
                d: v(rng),
                base,
                off: soff(rng),
                net: net(rng),
            },
            8 => {
                if rng.range_usize(0, 2) == 0 {
                    Instr::Getr { d: v(rng) }
                } else {
                    Instr::Getc { d: v(rng) }
                }
            }
            9 => Instr::Vclr { d: v(rng) },
            10 => Instr::Addl {
                d: gp(rng),
                s: gp(rng),
                imm: rng.range_usize(0, 64) as i64 - 32,
            },
            11 => Instr::Setl {
                d: gp(rng),
                imm: rng.range_usize(0, 1024) as i64 - 512,
            },
            _ => Instr::Nop,
        }
    }

    pub(crate) fn random_ldm(rng: &mut SplitMix64) -> Vec<f64> {
        (0..LDM_LEN).map(|_| rng.range_f64(-8.0, 8.0)).collect()
    }

    /// Runs `prog` on both engines and asserts exact agreement.
    fn assert_engines_agree(prog: &[Instr], ldm0: &[f64], what: &str) {
        let mut ldm_ref = ldm0.to_vec();
        let mut comm_ref = SinkComm;
        let mut m_ref = Machine::new(&mut ldm_ref, &mut comm_ref);
        let r_ref = m_ref.run_reference(prog);
        let (v_ref, i_ref) = (m_ref.vregs, m_ref.iregs);

        let decoded = DecodedProgram::new(prog);
        let mut ldm_dec = ldm0.to_vec();
        let mut comm_dec = SinkComm;
        let mut m_dec = Machine::new(&mut ldm_dec, &mut comm_dec);
        let r_dec = m_dec.run_decoded(&decoded);
        let (v_dec, i_dec) = (m_dec.vregs, m_dec.iregs);

        assert_eq!(r_ref.cycles, r_dec.cycles, "{what}: cycles");
        assert_eq!(
            r_ref.instructions, r_dec.instructions,
            "{what}: instructions"
        );
        assert_eq!(r_ref.vmads, r_dec.vmads, "{what}: vmads");
        assert_eq!(
            r_ref.dual_issue_cycles, r_dec.dual_issue_cycles,
            "{what}: dual_issue_cycles"
        );
        assert_eq!(
            r_ref.taken_branches, r_dec.taken_branches,
            "{what}: taken_branches"
        );
        assert_eq!(v_ref, v_dec, "{what}: vector registers");
        assert_eq!(i_ref, i_dec, "{what}: integer registers");
        assert_eq!(ldm_ref, ldm_dec, "{what}: LDM image");

        // Every selectable backend must reproduce the same machine
        // state and the bitwise-identical report. `Compiled` here is a
        // forced compile (no hot gating), so even one-shot random
        // programs exercise the trace path — or its decoded fallback
        // for branchy bodies, which must be just as invisible.
        for backend in EngineBackend::ALL {
            let mut ldm_b = ldm0.to_vec();
            let mut comm_b = SinkComm;
            let mut m_b = Machine::new(&mut ldm_b, &mut comm_b);
            let r_b = m_b.run_backend(backend, prog);
            assert_eq!(r_ref, r_b, "{what}: {backend} report");
            assert_eq!(v_ref, m_b.vregs, "{what}: {backend} vector registers");
            assert_eq!(i_ref, m_b.iregs, "{what}: {backend} integer registers");
            assert_eq!(ldm_ref, ldm_b, "{what}: {backend} LDM image");
        }
    }

    /// Straight-line random programs over the full ISA.
    #[test]
    fn straight_line_random_programs() {
        for case in 0..96u64 {
            let mut rng = SplitMix64::new(0xE9_0E00 + case);
            let len = rng.range_usize(1, 60);
            let prog: Vec<Instr> = (0..len).map(|_| random_instr(&mut rng)).collect();
            let ldm = random_ldm(&mut rng);
            assert_engines_agree(&prog, &ldm, &format!("case {case}"));
        }
    }

    /// Random loop bodies under a counted `bne` back-edge (r7 is the
    /// counter; bodies never write it), exercising the branch-penalty
    /// and taken-branch paths.
    #[test]
    fn counted_loops_random_bodies() {
        for case in 0..24u64 {
            let mut rng = SplitMix64::new(0x10_0B00 + case);
            let iters = rng.range_usize(1, 6) as i64;
            let body_len = rng.range_usize(1, 16);
            let mut prog = vec![Instr::Setl {
                d: IReg(7),
                imm: iters,
            }];
            for _ in 0..body_len {
                prog.push(random_instr(&mut rng));
            }
            prog.push(Instr::Addl {
                d: IReg(7),
                s: IReg(7),
                imm: -1,
            });
            prog.push(Instr::Bne {
                s: IReg(7),
                target: 1,
            });
            let ldm = random_ldm(&mut rng);
            assert_engines_agree(&prog, &ldm, &format!("loop case {case}"));
        }
    }

    /// The empty program and single-instruction programs of every kind.
    #[test]
    fn degenerate_programs() {
        assert_engines_agree(&[], &random_ldm(&mut SplitMix64::new(7)), "empty");
        let mut rng = SplitMix64::new(0xD0_0D);
        for case in 0..40 {
            let i = random_instr(&mut rng);
            let ldm = random_ldm(&mut rng);
            assert_engines_agree(&[i], &ldm, &format!("singleton {case}: {i}"));
        }
    }
}

// ---------------------------------------------------------------------
// Fault-injection determinism: every injection decision is a pure
// function of (seed, site, epoch, attempt, cpe, op) — never of host
// thread interleaving — so the same fault plan on the same problem
// yields a byte-identical report (modulo host wall time) and identical
// fault tallies on every run.
// ---------------------------------------------------------------------

/// Same seed + same plan ⇒ identical C (bitwise), identical traffic
/// stats, identical panic set, and identical fault counter snapshots.
#[test]
fn fault_injection_is_deterministic() {
    use sw_dgemm::{AbftPolicy, DgemmRunner, FaultSpec, StuckSpec, Variant};
    let p = sw_dgemm::BlockingParams::test_small();
    let (m, n, k) = (2 * p.bm(), p.bn(), 2 * p.bk());
    cases(3, 14, |rng| {
        let seed = rng.next_u64();
        let a = random_matrix(m, k, seed % 1000);
        let b = random_matrix(k, n, seed % 1000 + 1);
        let c0 = random_matrix(m, n, seed % 1000 + 2);
        let spec = FaultSpec {
            dma_transient_per_myriad: 300,
            // Low enough that four recompute attempts virtually never
            // all draw fresh corruption (each attempt redraws).
            ldm_bitflip_per_myriad: 5,
            bitflip_every_epoch: true,
            stuck: Some(StuckSpec {
                cpe: (seed % 64) as usize,
                epoch: 2,
            }),
            ..FaultSpec::seeded(seed)
        };
        let run = || {
            let mut c = c0.clone();
            let report = DgemmRunner::new(Variant::Pe)
                .params(p)
                .faults(spec)
                .abft(AbftPolicy::Correct)
                .run(1.5, &a, &b, 0.5, &mut c)
                .expect("Correct + degrade must heal this plan");
            (c, report)
        };
        let (c1, r1) = run();
        let (c2, r2) = run();
        assert_eq!(c1.max_abs_diff(&c2), 0.0, "seed {seed}: C differs");
        assert_eq!(r1.stats.dma, r2.stats.dma, "seed {seed}");
        assert_eq!(r1.stats.mesh, r2.stats.mesh, "seed {seed}");
        assert_eq!(
            r1.stats.panicked_cpes, r2.stats.panicked_cpes,
            "seed {seed}"
        );
        assert_eq!(r1.faults, r2.faults, "seed {seed}");
        assert_eq!(r1.plan.map(|p| p.params), r2.plan.map(|p| p.params));
        assert!(r1.faults.unwrap().total_injected() > 0, "seed {seed}");
    });
}

/// The execution-engine backend is an implementation detail even with
/// the fault injector live: the same fault plan through every backend
/// yields a bitwise-identical healed C, identical traffic stats, and
/// identical fault tallies.
#[test]
fn fault_injection_is_backend_invariant() {
    use sw_dgemm::{AbftPolicy, DgemmRunner, EngineBackend, FaultSpec, StuckSpec, Variant};
    let p = sw_dgemm::BlockingParams::test_small();
    let (m, n, k) = (2 * p.bm(), p.bn(), 2 * p.bk());
    // Same seed stream as `fault_injection_is_deterministic`, whose
    // plans are known to heal under four recompute attempts.
    cases(2, 14, |rng| {
        let seed = rng.next_u64();
        let a = random_matrix(m, k, seed % 1000);
        let b = random_matrix(k, n, seed % 1000 + 1);
        let c0 = random_matrix(m, n, seed % 1000 + 2);
        let spec = FaultSpec {
            dma_transient_per_myriad: 300,
            ldm_bitflip_per_myriad: 5,
            bitflip_every_epoch: true,
            stuck: Some(StuckSpec {
                cpe: (seed % 64) as usize,
                epoch: 2,
            }),
            ..FaultSpec::seeded(seed)
        };
        let run = |backend| {
            let mut c = c0.clone();
            let report = DgemmRunner::new(Variant::Pe)
                .params(p)
                .engine_backend(backend)
                .faults(spec)
                .abft(AbftPolicy::Correct)
                .run(1.5, &a, &b, 0.5, &mut c)
                .expect("Correct + degrade must heal this plan");
            (c, report)
        };
        let (c0_out, r0) = run(EngineBackend::default());
        for backend in EngineBackend::ALL {
            let (cb, rb) = run(backend);
            assert_eq!(
                c0_out.max_abs_diff(&cb),
                0.0,
                "seed {seed}: C differs under {backend}"
            );
            assert_eq!(r0.stats.dma, rb.stats.dma, "seed {seed}: {backend}");
            assert_eq!(r0.stats.mesh, rb.stats.mesh, "seed {seed}: {backend}");
            assert_eq!(r0.faults, rb.faults, "seed {seed}: {backend}");
        }
    });
}

// ---------------------------------------------------------------------
// Stall attribution: with probes on, every simulated cycle of each pipe
// is classified into exactly one bucket, so the per-pipe buckets sum
// exactly to ExecReport::cycles — on random straight-line and counted-
// loop programs, for every selectable backend (decoded, batched,
// trace-compiled) and the golden model (`run_reference`), and all the
// engines' attributions agree.
// ---------------------------------------------------------------------

mod stall_attribution {
    use super::engine_equivalence::{random_instr, random_ldm};
    use sw26010_dgemm::isa::instr::Instr;
    use sw26010_dgemm::isa::{EngineBackend, IReg, Machine, SinkComm};
    use sw_dgemm::gen::SplitMix64;

    /// Runs `prog` probed on both engines; asserts the defining
    /// invariant (buckets sum to total cycles, per pipe) and exact
    /// cross-engine agreement of reports and attributions.
    fn assert_attribution_exact(prog: &[Instr], ldm0: &[f64], what: &str) {
        let mut ldm_dec = ldm0.to_vec();
        let mut comm_dec = SinkComm;
        let mut m_dec = Machine::new(&mut ldm_dec, &mut comm_dec);
        let (r_dec, s_dec) = m_dec.run_probed(prog);

        s_dec.check().unwrap_or_else(|e| panic!("{what}: {e}"));
        assert_eq!(s_dec.cycles, r_dec.cycles, "{what}: stall total");
        for (p, b) in s_dec.pipes.iter().enumerate() {
            assert_eq!(
                b.total(),
                r_dec.cycles,
                "{what}: pipe P{p} attribution {b:?} != {} cycles",
                r_dec.cycles
            );
        }
        // Issue slots across both pipes must equal instructions.
        assert_eq!(s_dec.issue_cycles(), r_dec.instructions, "{what}: issues");

        let mut ldm_ref = ldm0.to_vec();
        let mut comm_ref = SinkComm;
        let mut m_ref = Machine::new(&mut ldm_ref, &mut comm_ref);
        let (r_ref, s_ref) = m_ref.run_reference_probed(prog);
        assert_eq!(r_ref, r_dec, "{what}: reports");
        assert_eq!(s_ref, s_dec, "{what}: attributions");
        assert_eq!(ldm_ref, ldm_dec, "{what}: LDM image");

        // Probed runs through every selectable backend: fused micro-ops
        // and compiled traces must attribute stalls cycle-for-cycle
        // like the golden model, not just match the totals.
        for backend in EngineBackend::ALL {
            let mut ldm_b = ldm0.to_vec();
            let mut comm_b = SinkComm;
            let mut m_b = Machine::new(&mut ldm_b, &mut comm_b);
            let (r_b, s_b) = m_b.run_backend_probed(backend, prog);
            s_b.check()
                .unwrap_or_else(|e| panic!("{what}: {backend}: {e}"));
            assert_eq!(r_b, r_ref, "{what}: {backend} report");
            assert_eq!(s_b, s_ref, "{what}: {backend} attribution");
            assert_eq!(ldm_b, ldm_ref, "{what}: {backend} LDM image");
        }
    }

    /// Straight-line random programs over the full ISA.
    #[test]
    fn straight_line_attribution_sums_to_cycles() {
        for case in 0..96u64 {
            let mut rng = SplitMix64::new(0x57A_1100 + case);
            let len = rng.range_usize(1, 60);
            let prog: Vec<Instr> = (0..len).map(|_| random_instr(&mut rng)).collect();
            let ldm = random_ldm(&mut rng);
            assert_attribution_exact(&prog, &ldm, &format!("case {case}"));
        }
    }

    /// Counted loops (r7 counter, random bodies): the taken-branch
    /// refill windows must be attributed exactly, including the
    /// clamped window when a taken branch ends the run.
    #[test]
    fn counted_loop_attribution_sums_to_cycles() {
        for case in 0..24u64 {
            let mut rng = SplitMix64::new(0x57A_1200 + case);
            let iters = rng.range_usize(1, 6) as i64;
            let body_len = rng.range_usize(1, 16);
            let mut prog = vec![Instr::Setl {
                d: IReg(7),
                imm: iters,
            }];
            for _ in 0..body_len {
                prog.push(random_instr(&mut rng));
            }
            prog.push(Instr::Addl {
                d: IReg(7),
                s: IReg(7),
                imm: -1,
            });
            prog.push(Instr::Bne {
                s: IReg(7),
                target: 1,
            });
            let ldm = random_ldm(&mut rng);
            assert_attribution_exact(&prog, &ldm, &format!("loop case {case}"));
        }
    }

    /// Degenerate shapes: empty, singletons, and a trailing taken
    /// branch whose refill window outlives the run.
    #[test]
    fn degenerate_attribution() {
        let mut rng = SplitMix64::new(0x57A_1300);
        assert_attribution_exact(&[], &random_ldm(&mut rng), "empty");
        for case in 0..40 {
            let i = random_instr(&mut rng);
            let ldm = random_ldm(&mut rng);
            assert_attribution_exact(&[i], &ldm, &format!("singleton {case}: {i}"));
        }
        let trailing = [
            Instr::Setl { d: IReg(7), imm: 1 },
            Instr::Bne {
                s: IReg(7),
                target: 2,
            },
        ];
        assert_attribution_exact(&trailing, &random_ldm(&mut rng), "trailing taken branch");
    }
}
