//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use sw26010_dgemm::dgemm::mapping::{row_mode_global_row, row_mode_owner};
use sw26010_dgemm::dgemm::reference::{dgemm_chunked_fma, dgemm_naive, gemm_tolerance};
use sw26010_dgemm::isa::kernels::{gen_block_kernel, BlockKernelCfg, KernelStyle, Operand};
use sw26010_dgemm::isa::sched::list_schedule;
use sw26010_dgemm::isa::{Machine, NullComm};
use sw26010_dgemm::mem::{Ldm, MainMemory};
use sw26010_dgemm::sim::{Dag, Resource};
use sw_dgemm::gen::random_matrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ROW_MODE interleave is a bijection on {0..128} × columns.
    #[test]
    fn row_mode_interleave_bijective(g in 0usize..1024) {
        let (c, l) = row_mode_owner(g);
        prop_assert!(c < 8);
        prop_assert_eq!(row_mode_global_row(l, c), g);
    }

    /// LDM bump allocation never overlaps, never exceeds capacity, and
    /// always returns 128 B-aligned buffers.
    #[test]
    fn ldm_allocations_disjoint_and_aligned(sizes in proptest::collection::vec(1usize..700, 1..20)) {
        let mut ldm = Ldm::new();
        let mut taken: Vec<(usize, usize)> = Vec::new();
        for len in sizes {
            match ldm.alloc(len) {
                Ok(buf) => {
                    prop_assert_eq!(buf.len(), len);
                    prop_assert_eq!(buf.offset() % 16, 0);
                    prop_assert!(buf.offset() + buf.len() <= 8192);
                    for &(o, l) in &taken {
                        prop_assert!(buf.offset() >= o + l || o >= buf.offset() + buf.len(),
                            "overlap: ({}, {}) vs ({o}, {l})", buf.offset(), buf.len());
                    }
                    taken.push((buf.offset(), buf.len()));
                }
                Err(_) => {
                    // Once full, it must stay full for this size.
                    prop_assert!(ldm.free_doubles() < len);
                }
            }
        }
    }

    /// The chunked-FMA reference agrees with the naive reference within
    /// the forward-error envelope for random shapes, chunkings and
    /// scalars.
    #[test]
    fn chunked_reference_within_tolerance(
        mi in 1usize..12,
        ni in 1usize..12,
        chunks in 1usize..6,
        chunk in prop_oneof![Just(4usize), Just(8), Just(16)],
        alpha in -4.0f64..4.0,
        beta in -4.0f64..4.0,
        seed in 0u64..1000,
    ) {
        let (m, n, k) = (mi * 4, ni * 4, chunks * chunk);
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 1);
        let mut c1 = random_matrix(m, n, seed + 2);
        let mut c2 = c1.clone();
        dgemm_naive(alpha, &a, &b, beta, &mut c1);
        dgemm_chunked_fma(alpha, &a, &b, beta, &mut c2, chunk);
        let tol = gemm_tolerance(&a, &b, alpha) * (1.0 + beta.abs());
        prop_assert!(c1.max_abs_diff(&c2) <= tol);
    }

    /// The list scheduler preserves kernel semantics for arbitrary
    /// shapes and operand sources (numerics must match the unscheduled
    /// stream bitwise).
    #[test]
    fn list_scheduler_preserves_semantics(
        pm_tiles in 1usize..3,
        pn_tiles in 1usize..4,
        pk in prop_oneof![Just(2usize), Just(5), Just(8)],
        alpha in -2.0f64..2.0,
        seed in 0u64..100,
    ) {
        let (pm, pn) = (16 * pm_tiles, 4 * pn_tiles);
        let cfg = BlockKernelCfg {
            pm, pn, pk,
            a_src: Operand::Ldm,
            b_src: Operand::Ldm,
            a_base: 0,
            b_base: 2048,
            c_base: 4096,
            alpha_addr: 8000,
        };
        let naive = gen_block_kernel(&cfg, KernelStyle::Naive);
        let auto = list_schedule(&naive);
        let mk_ldm = || {
            let mat = random_matrix(8192, 1, seed);
            let mut v = mat.into_vec();
            v[8000] = alpha;
            v
        };
        let mut l1 = mk_ldm();
        let mut l2 = mk_ldm();
        let mut comm = NullComm;
        let r1 = Machine::new(&mut l1, &mut comm).run(&naive);
        let r2 = Machine::new(&mut l2, &mut comm).run(&auto);
        prop_assert_eq!(l1, l2);
        prop_assert!(r2.cycles <= r1.cycles, "scheduling must never slow a stream down: {} vs {}", r2.cycles, r1.cycles);
    }

    /// Timing-engine sanity: the makespan is at least the critical
    /// serial resource demand and at most the fully serial sum.
    #[test]
    fn dag_makespan_bounds(durations in proptest::collection::vec((0u8..2, 1u64..1000), 1..40)) {
        let mut dag = Dag::new();
        let mut total = 0u64;
        let mut dma = 0u64;
        let mut cpes = 0u64;
        let mut prev = None;
        for (i, &(res, d)) in durations.iter().enumerate() {
            let resource = if res == 0 { Resource::Dma } else { Resource::Cpes };
            match resource { Resource::Dma => dma += d, Resource::Cpes => cpes += d, _ => {} }
            total += d;
            // Chain every third task to create dependence structure.
            let deps: Vec<_> = if i % 3 == 0 { prev.into_iter().collect() } else { vec![] };
            prev = Some(dag.task(resource, d, &deps, "t"));
        }
        let r = dag.schedule();
        prop_assert!(r.makespan_cycles <= total);
        prop_assert!(r.makespan_cycles >= dma.max(cpes));
        prop_assert_eq!(r.dma_busy_cycles, dma);
        prop_assert_eq!(r.cpes_busy_cycles, cpes);
    }

    /// Main-memory install/extract round-trips arbitrary matrices.
    #[test]
    fn main_memory_roundtrip(rows in 1usize..64, cols in 1usize..64, seed in 0u64..1000) {
        let m = random_matrix(rows, cols, seed);
        let mut mem = MainMemory::new();
        let id = mem.install(m.clone()).unwrap();
        prop_assert_eq!(mem.extract(id).unwrap(), m);
    }

    /// Matrix max_abs_diff is a metric-ish: symmetric and zero iff
    /// equal.
    #[test]
    fn matrix_diff_properties(rows in 1usize..16, cols in 1usize..16, seed in 0u64..100) {
        let a = random_matrix(rows, cols, seed);
        let b = random_matrix(rows, cols, seed + 1);
        prop_assert_eq!(a.max_abs_diff(&b), b.max_abs_diff(&a));
        prop_assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}

proptest! {
    // The full functional simulator is expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end: the SCHED variant matches the naive host reference
    /// for random block-aligned shapes and scalars.
    #[test]
    fn functional_sched_random_shapes(
        mi in 1usize..3,
        ni in 1usize..3,
        ki in 1usize..3,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let p = sw_dgemm::BlockingParams::test_small();
        let (m, n, k) = (mi * p.bm(), ni * p.bn(), ki * p.bk());
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 1);
        let mut c = random_matrix(m, n, seed + 2);
        let mut expect = c.clone();
        sw_dgemm::DgemmRunner::new(sw_dgemm::Variant::Sched)
            .params(p)
            .run(alpha, &a, &b, beta, &mut c)
            .unwrap();
        dgemm_naive(alpha, &a, &b, beta, &mut expect);
        let tol = gemm_tolerance(&a, &b, alpha) * (1.0 + beta.abs());
        prop_assert!(c.max_abs_diff(&expect) <= tol);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The software-emulated cache is transparent: any access sequence
    /// reads the same values as direct memory access, and after a
    /// flush, main memory reflects all writes.
    #[test]
    fn software_cache_is_transparent(
        lines in 1usize..8,
        ops in proptest::collection::vec((0usize..64, 0usize..8, proptest::option::of(-100.0f64..100.0)), 1..60),
        seed in 0u64..100,
    ) {
        use sw26010_dgemm::mem::SoftCache;
        let mut mem = MainMemory::new();
        let m0 = random_matrix(64, 8, seed);
        let mat = mem.install(m0.clone()).unwrap();
        let mut shadow = m0;
        let mut ldm = Ldm::new();
        let buf = ldm.alloc(lines * 16).unwrap();
        let mut cache = SoftCache::new(&mem, mat, buf).unwrap();
        for (r, c, write) in ops {
            match write {
                Some(v) => {
                    cache.write(&mem, &mut ldm, r, c, v).unwrap();
                    shadow.set(r, c, v);
                }
                None => {
                    let got = cache.read(&mem, &mut ldm, r, c).unwrap();
                    prop_assert_eq!(got, shadow.get(r, c));
                }
            }
        }
        cache.flush(&mem, &ldm).unwrap();
        prop_assert_eq!(mem.extract(mat).unwrap(), shadow);
    }

    /// ROW_MODE get followed by ROW_MODE put is the identity for any
    /// aligned region, for every mesh column.
    #[test]
    fn row_mode_roundtrip_property(
        row_blocks in 1usize..6,
        cols in 1usize..6,
        col0 in 0usize..3,
        seed in 0u64..100,
    ) {
        use sw26010_dgemm::mem::dma::{row_get, row_put, MatRegion};
        let rows = 16 * row_blocks.max(1);
        let src = random_matrix(rows.max(128), 8, seed);
        let mut mem = MainMemory::new();
        let a = mem.install(src.clone()).unwrap();
        let b = mem.install(sw_dgemm::Matrix::zeros(src.rows(), src.cols())).unwrap();
        let region_a = MatRegion::new(a, 0, col0, rows, cols);
        let region_b = MatRegion::new(b, 0, col0, rows, cols);
        for mesh_col in 0..8 {
            let mut ldm = Ldm::new();
            let buf = ldm.alloc(rows * cols / 8).unwrap();
            row_get(&mem, region_a, mesh_col, &mut ldm, buf).unwrap();
            row_put(&mem, region_b, mesh_col, &ldm, buf).unwrap();
        }
        let out = mem.extract(b).unwrap();
        for c in col0..col0 + cols {
            for r in 0..rows {
                prop_assert_eq!(out.get(r, c), src.get(r, c));
            }
        }
    }

    /// Padding embeds/extracts are lossless and zero-fill the frame.
    #[test]
    fn padding_embed_extract(rows in 1usize..20, cols in 1usize..20, pr in 0usize..10, pc in 0usize..10, seed in 0u64..100) {
        use sw_dgemm::padding::PadPlan;
        let m = random_matrix(rows, cols, seed);
        let e = PadPlan::embed(&m, rows + pr, cols + pc);
        prop_assert_eq!(PadPlan::extract(&e, rows, cols), m.clone());
        // Frame is zero.
        for c in 0..cols + pc {
            for r in 0..rows + pr {
                if r >= rows || c >= cols {
                    prop_assert_eq!(e.get(r, c), 0.0);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Binary encode/decode is a bijection over random well-formed
    /// instructions.
    #[test]
    fn instruction_encoding_roundtrip(
        op in 0usize..15,
        rd in 0u8..32,
        ra in 0u8..32,
        rb in 0u8..32,
        rc_ in 0u8..32,
        disp in -8192i64..8192,
        target in 0usize..65536,
    ) {
        use sw26010_dgemm::isa::encoding::{decode, encode};
        use sw26010_dgemm::isa::instr::{Instr, Net};
        use sw26010_dgemm::isa::{IReg, VReg};
        let ir = |r: u8| IReg(r % 8);
        let i = match op {
            0 => Instr::Vmad { a: VReg(ra), b: VReg(rb), c: VReg(rc_), d: VReg(rd) },
            1 => Instr::Vldd { d: VReg(rd), base: ir(ra), off: disp },
            2 => Instr::Vstd { s: VReg(rd), base: ir(ra), off: disp },
            3 => Instr::Ldde { d: VReg(rd), base: ir(ra), off: disp },
            4 => Instr::Vldr { d: VReg(rd), base: ir(ra), off: disp, net: Net::Row },
            5 => Instr::Vldr { d: VReg(rd), base: ir(ra), off: disp, net: Net::Col },
            6 => Instr::Lddec { d: VReg(rd), base: ir(ra), off: disp, net: Net::Row },
            7 => Instr::Lddec { d: VReg(rd), base: ir(ra), off: disp, net: Net::Col },
            8 => Instr::Getr { d: VReg(rd) },
            9 => Instr::Getc { d: VReg(rd) },
            10 => Instr::Vclr { d: VReg(rd) },
            11 => Instr::Addl { d: ir(rd), s: ir(ra), imm: disp },
            12 => Instr::Setl { d: ir(rd), imm: disp },
            13 => Instr::Bne { s: ir(rd), target },
            _ => Instr::Nop,
        };
        let w = encode(&i).unwrap();
        prop_assert_eq!(decode(w).unwrap(), i);
    }

    /// The CG-level traffic formula of §III-C.1 is exact against a
    /// direct walk of Algorithm 1's loads/stores.
    #[test]
    fn cg_traffic_formula_exact(mi in 1usize..6, ni in 1usize..6, ki in 1usize..6) {
        use sw_dgemm::model::cg_traffic_elements;
        let (bm, bn, bk) = (128usize, 256usize, 768usize);
        let (m, n, k) = (mi * bm, ni * bn, ki * bk);
        // Walk Algorithm 1: per (j, l): B block once; per i: A block, C
        // in and out.
        let mut elems = 0usize;
        for _j in 0..n / bn {
            for _l in 0..k / bk {
                elems += bk * bn;
                for _i in 0..m / bm {
                    elems += bm * bk + 2 * bm * bn;
                }
            }
        }
        let formula = cg_traffic_elements(m, n, k, bk, bn);
        prop_assert!((formula - elems as f64).abs() < 1.0, "formula {formula}, walked {elems}");
    }

    /// Padding overhead is the flop ratio and is always ≥ 1 and < the
    /// worst-case bound ((1 + bm/m)(1 + bn/n)(1 + bk/k)).
    #[test]
    fn padding_overhead_bounds(m in 1usize..500, n in 1usize..500, k in 1usize..500) {
        use sw_dgemm::padding::PadPlan;
        let (bm, bn, bk) = (128usize, 64usize, 128usize);
        let p = PadPlan::new(m, n, k, bm, bn, bk).unwrap();
        let o = p.overhead();
        prop_assert!(o >= 1.0);
        let bound = (1.0 + bm as f64 / m as f64)
            * (1.0 + bn as f64 / n as f64)
            * (1.0 + bk as f64 / k as f64);
        prop_assert!(o <= bound);
    }
}
