//! Golden-file pin of the Chrome-trace exporter.
//!
//! A tiny DB-variant timing DAG is traced and exported; the JSON must
//! match `tests/golden/trace_db_small.json` byte for byte AND pass the
//! structural Perfetto-schema validator. Everything feeding the bytes
//! is deterministic — the calibrated DMA model, the measured kernel
//! cycle counts, the DAG schedule, and the exporter's sort — so any
//! diff here is a real behavior change. Re-bless with:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test --test trace_golden
//! ```

use sw_dgemm::timing::build_shared_dag;
use sw_dgemm::{BlockingParams, Variant};
use sw_mem::dma::BandwidthModel;
use sw_probe::trace::validate_chrome_trace;
use sw_sim::Tracer;

const GOLDEN_PATH: &str = "tests/golden/trace_db_small.json";

/// The smallest DB run with real double-buffering: two CG blocks along
/// M, so the second block's loads prefetch under the first's compute.
fn tiny_db_trace_json() -> String {
    let p = BlockingParams::test_small();
    let model = BandwidthModel::calibrated();
    let (dag, _) = build_shared_dag(Variant::Db, 2 * p.bm(), p.bn(), p.bk(), p, &model)
        .expect("tiny DB plan must validate");
    let tracer = Tracer::enabled();
    dag.emit_trace(&tracer);
    tracer.take().to_chrome_json()
}

#[test]
fn tiny_db_trace_matches_golden_bytes() {
    let json = tiny_db_trace_json();
    if std::env::var("BLESS_GOLDEN").is_ok() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with BLESS_GOLDEN=1 to create it");
    assert_eq!(
        json, golden,
        "Chrome-trace export drifted from {GOLDEN_PATH}; \
         if intentional, re-bless with BLESS_GOLDEN=1"
    );
}

#[test]
fn tiny_db_trace_is_schema_valid() {
    let json = tiny_db_trace_json();
    let summary = validate_chrome_trace(&json).expect("exporter must emit Perfetto-valid JSON");
    assert!(summary.events > 0);
    assert!(summary.pairs > 0, "a DB schedule has non-trivial spans");
}

#[test]
fn exporter_is_deterministic_across_runs() {
    assert_eq!(tiny_db_trace_json(), tiny_db_trace_json());
}
