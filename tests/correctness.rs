//! Cross-crate integration tests: every DGEMM variant, run on the full
//! 64-thread functional simulator, against host references.

use sw_dgemm::gen::random_matrix;
use sw_dgemm::reference::{dgemm_chunked_fma, dgemm_naive, gemm_tolerance};
use sw_dgemm::variants::raw::RawParams;
use sw_dgemm::{BlockingParams, DgemmRunner, Matrix, Variant};

fn run_variant(
    v: Variant,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    beta: f64,
    seed: u64,
) -> (Matrix, Matrix, Matrix, Matrix) {
    let a = random_matrix(m, k, seed);
    let b = random_matrix(k, n, seed + 1);
    let c0 = random_matrix(m, n, seed + 2);
    let mut c = c0.clone();
    let runner = match v {
        Variant::Raw => DgemmRunner::new(v).raw_params(RawParams::test_small()),
        _ => DgemmRunner::new(v).params(BlockingParams::test_small()),
    };
    runner
        .run(alpha, &a, &b, beta, &mut c)
        .expect("simulated DGEMM failed");
    (a, b, c0, c)
}

#[test]
fn all_variants_match_reference_within_tolerance() {
    let (m, n, k) = (256, 128, 256);
    for v in Variant::ALL {
        let (a, b, c0, c) = run_variant(v, m, n, k, 1.0, 1.0, 42);
        let mut expect = c0.clone();
        dgemm_naive(1.0, &a, &b, 1.0, &mut expect);
        let err = c.max_abs_diff(&expect);
        let tol = gemm_tolerance(&a, &b, 1.0);
        assert!(
            err <= tol,
            "{v}: max error {err:.3e} exceeds tolerance {tol:.3e}"
        );
    }
}

#[test]
fn shared_variants_are_bitwise_identical() {
    // PE, ROW, DB and SCHED perform the same per-element FMA sequence
    // (only data placement and instruction schedule differ), so their
    // results must agree to the last bit.
    let (m, n, k) = (256, 128, 256);
    let (_, _, _, c_pe) = run_variant(Variant::Pe, m, n, k, 1.5, -0.5, 7);
    for v in [Variant::Row, Variant::Db, Variant::Sched] {
        let (_, _, _, c_v) = run_variant(v, m, n, k, 1.5, -0.5, 7);
        assert_eq!(c_pe, c_v, "{v} diverged bitwise from PE");
    }
}

#[test]
fn shared_variants_bitwise_match_chunked_reference() {
    let (m, n, k) = (128, 64, 256);
    let (a, b, c0, c) = run_variant(Variant::Sched, m, n, k, 2.25, 0.75, 11);
    let mut expect = c0.clone();
    // chunk = pK of the test blocking.
    dgemm_chunked_fma(
        2.25,
        &a,
        &b,
        0.75,
        &mut expect,
        BlockingParams::test_small().pk,
    );
    assert_eq!(
        c, expect,
        "SCHED must be bitwise equal to the chunked-FMA reference"
    );
}

#[test]
fn raw_bitwise_matches_chunked_reference() {
    let (m, n, k) = (128, 64, 64);
    let (a, b, c0, c) = run_variant(Variant::Raw, m, n, k, -1.25, 2.0, 13);
    let mut expect = c0.clone();
    dgemm_chunked_fma(-1.25, &a, &b, 2.0, &mut expect, RawParams::test_small().kc);
    assert_eq!(
        c, expect,
        "RAW must be bitwise equal to the chunked-FMA reference"
    );
}

#[test]
fn alpha_beta_special_cases() {
    let (m, n, k) = (128, 64, 128);
    for (alpha, beta) in [(0.0, 1.0), (1.0, 0.0), (0.0, 0.0), (-3.5, 2.5)] {
        let (a, b, c0, c) = run_variant(Variant::Sched, m, n, k, alpha, beta, 17);
        let mut expect = c0.clone();
        dgemm_naive(alpha, &a, &b, beta, &mut expect);
        let tol = gemm_tolerance(&a, &b, alpha);
        assert!(
            c.max_abs_diff(&expect) <= tol,
            "alpha={alpha} beta={beta}: error {}",
            c.max_abs_diff(&expect)
        );
    }
}

#[test]
fn non_square_shapes() {
    for (v, m, n, k) in [
        (Variant::Sched, 384, 64, 128),
        (Variant::Db, 128, 192, 256),
        (Variant::Pe, 128, 64, 384),
        (Variant::Row, 256, 64, 128),
    ] {
        let (a, b, c0, c) = run_variant(v, m, n, k, 1.0, 1.0, 23);
        let mut expect = c0;
        dgemm_naive(1.0, &a, &b, 1.0, &mut expect);
        let tol = gemm_tolerance(&a, &b, 1.0);
        assert!(c.max_abs_diff(&expect) <= tol, "{v} {m}x{n}x{k}");
    }
}

#[test]
fn multi_k_blocks_accumulate_correctly() {
    // grid_k > 1 exercises the β-once / accumulate-rest path.
    let (m, n, k) = (128, 64, 512);
    let (a, b, c0, c) = run_variant(Variant::Db, m, n, k, 1.0, 3.0, 29);
    let mut expect = c0;
    dgemm_naive(1.0, &a, &b, 3.0, &mut expect);
    assert!(c.max_abs_diff(&expect) <= gemm_tolerance(&a, &b, 1.0));
}

#[test]
fn determinism_across_runs() {
    // Thread interleaving varies between runs; results must not.
    let (_, _, _, c1) = run_variant(Variant::Sched, 128, 64, 128, 1.5, 0.5, 31);
    let (_, _, _, c2) = run_variant(Variant::Sched, 128, 64, 128, 1.5, 0.5, 31);
    assert_eq!(c1, c2);
}

#[test]
fn dimension_mismatch_rejected() {
    let a = Matrix::zeros(128, 128);
    let b = Matrix::zeros(64, 64); // k mismatch
    let mut c = Matrix::zeros(128, 64);
    let err = sw_dgemm::dgemm(Variant::Sched, 1.0, &a, &b, 0.0, &mut c).unwrap_err();
    assert!(matches!(err, sw_dgemm::DgemmError::BadDims(_)));
}

#[test]
fn unaligned_dims_rejected_with_clear_error() {
    let a = Matrix::zeros(100, 128);
    let b = Matrix::zeros(128, 64);
    let mut c = Matrix::zeros(100, 64);
    let err = sw_dgemm::dgemm(Variant::Sched, 1.0, &a, &b, 0.0, &mut c).unwrap_err();
    assert!(matches!(err, sw_dgemm::DgemmError::BadDims(_)));
}

#[test]
fn padded_arbitrary_dimensions_match_reference() {
    // Dimensions that are not multiples of anything: the padded runner
    // must still produce the exact GEMM on the visible window.
    for (m, n, k) in [
        (100usize, 50usize, 75usize),
        (130, 65, 17),
        (1, 1, 1),
        (127, 63, 129),
    ] {
        let a = random_matrix(m, k, 41);
        let b = random_matrix(k, n, 42);
        let c0 = random_matrix(m, n, 43);
        let mut c = c0.clone();
        DgemmRunner::new(Variant::Sched)
            .params(BlockingParams::test_small())
            .pad(true)
            .run(1.25, &a, &b, -0.5, &mut c)
            .unwrap_or_else(|e| panic!("{m}x{n}x{k}: {e}"));
        let mut expect = c0;
        dgemm_naive(1.25, &a, &b, -0.5, &mut expect);
        let tol = gemm_tolerance(&a, &b, 1.25).max(1e-12);
        assert!(
            c.max_abs_diff(&expect) <= tol,
            "{m}x{n}x{k}: error {} > {tol}",
            c.max_abs_diff(&expect)
        );
    }
}

#[test]
fn padding_no_op_on_aligned_dims() {
    let (m, n, k) = (128, 64, 128);
    let a = random_matrix(m, k, 51);
    let b = random_matrix(k, n, 52);
    let c0 = random_matrix(m, n, 53);
    let mut c1 = c0.clone();
    let mut c2 = c0;
    let r = DgemmRunner::new(Variant::Db).params(BlockingParams::test_small());
    r.clone().pad(true).run(1.0, &a, &b, 1.0, &mut c1).unwrap();
    r.run(1.0, &a, &b, 1.0, &mut c2).unwrap();
    assert_eq!(c1, c2, "padding must be the identity on aligned dimensions");
}

#[test]
fn transposed_operands_match_reference() {
    use sw_dgemm::{dgemm_ex, Op};
    let (m, n, k) = (96, 40, 72);
    let c0 = random_matrix(m, n, 63);
    for (opa, opb) in [
        (Op::NoTrans, Op::NoTrans),
        (Op::Trans, Op::NoTrans),
        (Op::NoTrans, Op::Trans),
        (Op::Trans, Op::Trans),
    ] {
        // Store each operand so that op(X) has the shape GEMM needs.
        let a = match opa {
            Op::NoTrans => random_matrix(m, k, 61),
            Op::Trans => random_matrix(k, m, 61),
        };
        let b = match opb {
            Op::NoTrans => random_matrix(k, n, 62),
            Op::Trans => random_matrix(n, k, 62),
        };
        let mut c = c0.clone();
        dgemm_ex(Variant::Sched, opa, opb, 1.5, &a, &b, 0.25, &mut c)
            .unwrap_or_else(|e| panic!("{opa:?}/{opb:?}: {e}"));
        // Reference on explicitly transposed copies.
        let t = |mtx: &Matrix| Matrix::from_fn(mtx.cols(), mtx.rows(), |r, cc| mtx.get(cc, r));
        let ae = if opa == Op::Trans { t(&a) } else { a.clone() };
        let be = if opb == Op::Trans { t(&b) } else { b.clone() };
        let mut expect = c0.clone();
        dgemm_naive(1.5, &ae, &be, 0.25, &mut expect);
        let tol = gemm_tolerance(&ae, &be, 1.5);
        assert!(
            c.max_abs_diff(&expect) <= tol,
            "{opa:?}/{opb:?}: error {}",
            c.max_abs_diff(&expect)
        );
    }
}
