//! Shape-level reproduction checks of the paper's evaluation (§V):
//! the orderings, crossovers and efficiency bands of Figures 4, 6 and
//! 7 and the §IV-C kernel profile, as produced by the timing simulator
//! at the paper's production sizes.

use sw26010_dgemm::mem::dma::{BandwidthModel, DmaMode};
use sw26010_dgemm::mem::microbench::{fig4_sweep, sustained_bandwidth_gbs, MicrobenchConfig};
use sw_dgemm::timing::{estimate, measure_kernel};
use sw_dgemm::Variant;
use sw_isa::kernels::KernelStyle;

#[test]
fn fig4_row_mode_superior_and_rising() {
    let pts = fig4_sweep(&BandwidthModel::calibrated());
    for p in &pts {
        assert!(p.row_gbs > p.pe_gbs, "ROW must beat PE at {}", p.mk);
        assert!(
            p.pe_gbs > 10.0 && p.row_gbs < 34.0,
            "bandwidths within the channel envelope"
        );
    }
    for w in pts.windows(2) {
        assert!(w[1].pe_gbs > w[0].pe_gbs && w[1].row_gbs > w[0].row_gbs);
    }
    // The ROW advantage narrows with size (as in Figure 4).
    let gap_small = pts[0].row_gbs - pts[0].pe_gbs;
    let gap_large = pts[9].row_gbs - pts[9].pe_gbs;
    assert!(gap_large < gap_small);
}

#[test]
fn fig4_defaults_match_paper_parameters() {
    let cfg = MicrobenchConfig::default();
    assert_eq!((cfg.bm, cfg.bk, cfg.pm, cfg.pk), (128, 768, 16, 96));
    let model = BandwidthModel::calibrated();
    let pe = sustained_bandwidth_gbs(&model, DmaMode::Pe, 9216, 9216, &cfg);
    let row = sustained_bandwidth_gbs(&model, DmaMode::Row, 9216, 9216, &cfg);
    assert!(
        row / pe > 1.1,
        "ROW should be clearly superior at 9216 ({row:.1} vs {pe:.1})"
    );
}

#[test]
fn fig6_full_ladder_and_gains() {
    // Paper (at the sustained-performance level): PE is +42.3% over
    // RAW, ROW +16.6% over PE, DB +26% over ROW, SCHED +113.9% over
    // DB, peaking at 706.1 Gflops/s = 95% of peak.
    let at = |v| estimate(v, 9216, 9216, 9216).unwrap().gflops;
    let (raw, pe, row, db, sched) = (
        at(Variant::Raw),
        at(Variant::Pe),
        at(Variant::Row),
        at(Variant::Db),
        at(Variant::Sched),
    );
    assert!(
        raw < pe && pe < row && row < db && db < sched,
        "ladder must be monotone"
    );
    // RAW sits below one third of peak (§IV: "less than 1/3 of the
    // peak performance ... without further optimizations").
    assert!(raw / 742.4 < 1.0 / 3.0);
    // Shape bands (generous): the big gains are data sharing and
    // instruction scheduling; ROW and DB are meaningful but smaller.
    assert!(
        pe / raw > 1.3,
        "data sharing gain was only {:.2}x",
        pe / raw
    );
    assert!(
        (1.05..1.4).contains(&(row / pe)),
        "ROW/PE = {:.3}",
        row / pe
    );
    assert!(
        (1.1..1.45).contains(&(db / row)),
        "DB/ROW = {:.3}",
        db / row
    );
    assert!(
        (1.8..2.5).contains(&(sched / db)),
        "SCHED/DB = {:.3}",
        sched / db
    );
    // Final efficiency in the 90%+ band (paper: 95%).
    assert!(
        sched / 742.4 > 0.90,
        "SCHED efficiency {:.3}",
        sched / 742.4
    );
}

#[test]
fn fig6_monotone_in_size_for_every_variant() {
    for v in Variant::ALL {
        let mut last = 0.0;
        for i in [1usize, 2, 4, 6] {
            let mk = 1536 * i;
            let g = estimate(v, mk, mk, mk).unwrap().gflops;
            assert!(g > last, "{v} at {mk}: {g:.1} did not improve on {last:.1}");
            last = g;
        }
    }
}

#[test]
fn fig6_sched_saturates_near_9216() {
    // "the performance of all five DGEMM implementations increases
    // monotonically until the maximum performance reaches when the
    // matrix size is around 9216".
    let at = |mk| estimate(Variant::Sched, mk, mk, mk).unwrap().gflops;
    let g1536 = at(1536);
    let g9216 = at(9216);
    let g15360 = at(15360);
    assert!(g9216 / g1536 > 1.1, "large sizes clearly beat small");
    assert!(
        (g15360 - g9216) / g9216 < 0.02,
        "growth beyond 9216 is marginal"
    );
}

#[test]
fn fig7_small_m_penalized_n_k_negligible() {
    // "The performance for matrices with small m is relatively low
    // ... the sizes of n and k have negligible influence."
    let base = estimate(Variant::Sched, 9216, 9216, 9216).unwrap().gflops;
    let small_m = estimate(Variant::Sched, 1536, 9216, 9216).unwrap().gflops;
    let small_n = estimate(Variant::Sched, 9216, 1536, 9216).unwrap().gflops;
    let small_k = estimate(Variant::Sched, 9216, 9216, 1536).unwrap().gflops;
    assert!(
        small_m < 0.95 * base,
        "small m should hurt: {small_m:.1} vs {base:.1}"
    );
    assert!(
        small_n > 0.95 * base,
        "small n should be negligible: {small_n:.1} vs {base:.1}"
    );
    assert!(
        small_k > 0.95 * base,
        "small k should be negligible: {small_k:.1} vs {base:.1}"
    );
    assert!(small_m < small_n && small_m < small_k);
}

#[test]
fn sched_kernel_profile_matches_paper() {
    // §IV-C: "the whole loop takes 101,858 cycles in total, and vmad
    // takes 97% of the cycles" — the loop being the 8 strip steps of
    // one thread-level block at pM=16, pN=32, pK=96.
    let r = measure_kernel(16, 32, 96, KernelStyle::Scheduled);
    let loop_cycles = 8 * r.cycles;
    assert!(
        (97_000..=107_000).contains(&loop_cycles),
        "whole-loop cycles {loop_cycles} should be near the paper's 101,858"
    );
    assert!(
        r.vmad_occupancy() > 0.94,
        "vmad occupancy {:.3} (paper: 0.97)",
        r.vmad_occupancy()
    );
}

#[test]
fn naive_kernel_explains_sched_gain() {
    let naive = measure_kernel(16, 32, 96, KernelStyle::Naive);
    let sched = measure_kernel(16, 32, 96, KernelStyle::Scheduled);
    let ratio = naive.cycles as f64 / sched.cycles as f64;
    assert!(
        (1.9..2.4).contains(&ratio),
        "kernel ratio {ratio:.2} (paper's SCHED gain: 2.14x)"
    );
    // Same arithmetic either way.
    assert_eq!(naive.vmads, sched.vmads);
}
