//! Transport- and path-equivalence properties of the mesh fast path:
//! the lock-free SPSC ring transport and the bulk panel broadcasts
//! must be observationally identical to the Mutex-channel / per-word
//! baseline — bitwise-identical C, identical `MeshStats`, identical
//! per-CPE `MeshGridStats` cells, and identical `faults.*` counters
//! under an active `FaultInjector` with the same seed. The batched
//! paths consume exactly the per-word `send_idx` sequence the injector
//! keys on, so every drop/wedge decision lands on the same word.

use std::time::Duration;
use sw_dgemm::gen::random_matrix;
use sw_dgemm::{
    AbftPolicy, BlockingParams, DgemmError, DgemmReport, DgemmRunner, FaultSpec, Matrix, MeshPath,
    MeshTransport, Variant, WedgeSpec,
};
use sw_probe::metrics::MetricValue;

/// The four (transport, path) combinations, baseline first.
const COMBOS: [(MeshTransport, MeshPath, &str); 4] = [
    (MeshTransport::Fallback, MeshPath::Word, "fallback+word"),
    (MeshTransport::Fallback, MeshPath::Bulk, "fallback+bulk"),
    (MeshTransport::Ring, MeshPath::Word, "ring+word"),
    (MeshTransport::Ring, MeshPath::Bulk, "ring+bulk"),
];

fn operands(
    p: &BlockingParams,
    blocks: (usize, usize, usize),
    seed: u64,
) -> (Matrix, Matrix, Matrix) {
    let (m, n, k) = (p.bm() * blocks.0, p.bn() * blocks.1, p.bk() * blocks.2);
    (
        random_matrix(m, k, seed),
        random_matrix(k, n, seed + 1),
        random_matrix(m, n, seed + 2),
    )
}

#[allow(clippy::too_many_arguments)] // variant + blocking + three operands + mesh config
fn run_combo(
    v: Variant,
    p: BlockingParams,
    a: &Matrix,
    b: &Matrix,
    c0: &Matrix,
    transport: MeshTransport,
    path: MeshPath,
    faults: Option<(FaultSpec, AbftPolicy)>,
) -> (Matrix, Result<DgemmReport, DgemmError>) {
    let mut c = c0.clone();
    let mut runner = DgemmRunner::new(v)
        .params(p)
        .mesh_transport(transport)
        .mesh_path(path);
    if let Some((spec, abft)) = faults {
        runner = runner
            .faults(spec)
            .abft(abft)
            .mesh_timeout(Duration::from_millis(200));
    }
    let report = runner.run(1.5, a, b, 0.5, &mut c);
    (c, report)
}

/// Clean runs: all four combinations agree bitwise on C and exactly on
/// every mesh counter, for each data-sharing variant.
#[test]
fn transports_and_paths_agree_bitwise_on_clean_runs() {
    let p = BlockingParams::test_small();
    for v in [Variant::Pe, Variant::Row, Variant::Db, Variant::Sched] {
        let (a, b, c0) = operands(&p, (2, 1, 2), 41);
        let (c_base, r_base) = run_combo(v, p, &a, &b, &c0, COMBOS[0].0, COMBOS[0].1, None);
        let r_base = r_base.expect("baseline run failed");
        for &(t, path, name) in &COMBOS[1..] {
            let (c, r) = run_combo(v, p, &a, &b, &c0, t, path, None);
            let r = r.unwrap_or_else(|e| panic!("{v} {name} failed: {e}"));
            assert_eq!(c.max_abs_diff(&c_base), 0.0, "{v} {name}: C diverges");
            assert_eq!(r.stats.mesh, r_base.stats.mesh, "{v} {name}: MeshStats");
            assert_eq!(r.stats.grid, r_base.stats.grid, "{v} {name}: grid cells");
        }
    }
}

/// Healed faulted runs: with DMA/LDM faults under `AbftPolicy::Correct`
/// all combinations converge to the same bitwise C and report the same
/// `FaultStats` — the injector's (epoch, attempt, site) decisions do
/// not see the transport or the batching.
#[test]
fn faulted_runs_heal_identically_across_combos() {
    let p = BlockingParams::test_small();
    let (a, b, c0) = operands(&p, (2, 1, 2), 43);
    let spec = FaultSpec {
        bitflip_every_epoch: true,
        dma_transient_per_myriad: 100,
        ..FaultSpec::seeded(0xFA57)
    };
    let faults = Some((spec, AbftPolicy::Correct));
    let (c_base, r_base) = run_combo(
        Variant::Sched,
        p,
        &a,
        &b,
        &c0,
        COMBOS[0].0,
        COMBOS[0].1,
        faults,
    );
    let r_base = r_base.expect("baseline faulted run failed");
    let f_base = r_base.faults.expect("fault plan installed");
    assert!(f_base.total_injected() > 0, "vacuous: nothing injected");
    for &(t, path, name) in &COMBOS[1..] {
        let (c, r) = run_combo(Variant::Sched, p, &a, &b, &c0, t, path, faults);
        let r = r.unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(c.max_abs_diff(&c_base), 0.0, "{name}: healed C diverges");
        assert_eq!(r.faults, r_base.faults, "{name}: FaultStats diverge");
        assert_eq!(r.stats.mesh, r_base.stats.mesh, "{name}: MeshStats");
        assert_eq!(r.stats.grid, r_base.stats.grid, "{name}: grid cells");
    }
}

/// `faults.*` counters from a global-registry snapshot, in name order.
fn faults_counters() -> Vec<(String, u64)> {
    sw_probe::metrics::global()
        .snapshot()
        .entries
        .iter()
        .filter_map(|(name, v)| match v {
            MetricValue::Counter(c) if name.starts_with("faults.") => Some((name.clone(), *c)),
            _ => None,
        })
        .collect()
}

fn faults_delta(before: &[(String, u64)], after: &[(String, u64)]) -> Vec<(String, u64)> {
    after
        .iter()
        .map(|(name, v)| {
            let prev = before
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, p)| *p);
            (name.clone(), v - prev)
        })
        .collect()
}

/// Runs an unrecoverable mesh-fault plan through every combination and
/// asserts the outcome class and the `faults.*` counter deltas
/// (published even on failure) are identical. Mesh damage of this kind
/// deterministically starves a receive on every attempt, so the runs
/// end in the structured `MeshDeadlock`; what must match exactly is
/// which words the injector damaged — the `send_idx` identity the bulk
/// paths preserve.
fn assert_mesh_fault_deltas_identical(spec: FaultSpec, must_inject: &str) {
    let p = BlockingParams::test_small();
    let (a, b, c0) = operands(&p, (1, 1, 1), 47);
    let mut base: Option<(bool, Vec<(String, u64)>)> = None;
    for &(t, path, name) in &COMBOS {
        let before = faults_counters();
        let (_, r) = run_combo(
            Variant::Sched,
            p,
            &a,
            &b,
            &c0,
            t,
            path,
            Some((spec, AbftPolicy::Off)),
        );
        if let Err(e) = &r {
            assert!(
                matches!(e, DgemmError::MeshDeadlock { .. }),
                "{name}: expected MeshDeadlock, got {e}"
            );
        }
        let delta = faults_delta(&before, &faults_counters());
        let injected = delta
            .iter()
            .find(|(n, _)| n == must_inject)
            .map_or(0, |(_, v)| *v);
        assert!(injected > 0, "{name}: vacuous, no {must_inject} injected");
        match &base {
            None => base = Some((r.is_ok(), delta)),
            Some((base_ok, base_delta)) => {
                assert_eq!(r.is_ok(), *base_ok, "{name}: outcome class diverges");
                assert_eq!(&delta, base_delta, "{name}: faults.* deltas diverge");
            }
        }
    }
}

/// Seeded mesh word drops make bit-for-bit the same decisions on the
/// batched paths as on the per-word path.
#[test]
fn mesh_drop_decisions_identical_across_combos() {
    assert_mesh_fault_deltas_identical(
        FaultSpec {
            mesh_drop_per_myriad: 1,
            ..FaultSpec::seeded(0xD201)
        },
        "faults.injected.mesh_drop",
    );
}

/// A wedged CPE suppresses the same number of copies whether its sends
/// are counted one word at a time or as one batched
/// `note_wedge_suppressions(n)` per panel.
#[test]
fn mesh_wedge_suppressions_identical_across_combos() {
    assert_mesh_fault_deltas_identical(
        FaultSpec {
            wedge: Some(WedgeSpec { cpe: 13, epoch: 0 }),
            ..FaultSpec::seeded(0x3E06)
        },
        "faults.injected.mesh_wedge",
    );
}
