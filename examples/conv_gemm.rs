//! Convolution-as-GEMM: lower CNN convolution layers to the simulated
//! DGEMM via im2col, and verify against direct convolution.
//!
//! The paper's introduction cites convolutional neural networks among
//! the applications whose performance reduces to GEMM; this example
//! runs that reduction end-to-end on the simulator, twice:
//!
//! 1. a large layer as **one** GEMM through the three-level-blocked
//!    SCHED variant (input 8×19×19, 128 filters of 8×4×4 → a
//!    128×256×128 product), and
//! 2. a mini-batch of small layers through the **batched** path (one
//!    whole product per CPE, round-robin) — the shape CNN inference
//!    actually produces.
//!
//! ```text
//! cargo run --release --example conv_gemm
//! ```

use sw_dgemm::gen::random_matrix;
use sw_dgemm::{dgemm, dgemm_batched, Matrix, Variant};

/// Dimensions of one convolution layer (stride 1, no padding).
#[derive(Clone, Copy)]
struct Layer {
    c: usize,  // input channels
    h: usize,  // input height
    w: usize,  // input width
    kh: usize, // kernel height
    kw: usize, // kernel width
    f: usize,  // filters
}

impl Layer {
    fn oh(&self) -> usize {
        self.h - self.kh + 1
    }
    fn ow(&self) -> usize {
        self.w - self.kw + 1
    }
    /// GEMM inner dimension (filter taps).
    fn k(&self) -> usize {
        self.c * self.kh * self.kw
    }
    /// GEMM columns (output pixels).
    fn n(&self) -> usize {
        self.oh() * self.ow()
    }

    fn at(&self, input: &[f64], c: usize, y: usize, x: usize) -> f64 {
        input[(c * self.h + y) * self.w + x]
    }

    /// Direct convolution, the ground truth.
    fn conv_direct(&self, input: &[f64], filters: &Matrix) -> Vec<f64> {
        let (oh, ow) = (self.oh(), self.ow());
        let mut out = vec![0.0; self.f * oh * ow];
        for fi in 0..self.f {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for c in 0..self.c {
                        for ky in 0..self.kh {
                            for kx in 0..self.kw {
                                let widx = (c * self.kh + ky) * self.kw + kx;
                                acc += filters.get(fi, widx) * self.at(input, c, oy + ky, ox + kx);
                            }
                        }
                    }
                    out[(fi * oh + oy) * ow + ox] = acc;
                }
            }
        }
        out
    }

    /// im2col: one column per output pixel, one row per filter tap.
    fn im2col(&self, input: &[f64]) -> Matrix {
        Matrix::from_fn(self.k(), self.n(), |row, col| {
            let (c, rem) = (row / (self.kh * self.kw), row % (self.kh * self.kw));
            let (ky, kx) = (rem / self.kw, rem % self.kw);
            let (oy, ox) = (col / self.ow(), col % self.ow());
            self.at(input, c, oy + ky, ox + kx)
        })
    }

    fn max_err(&self, out: &Matrix, truth: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for fi in 0..self.f {
            for p in 0..self.n() {
                worst = worst.max((out.get(fi, p) - truth[fi * self.n() + p]).abs());
            }
        }
        worst
    }
}

fn main() {
    // --- One large layer as a single blocked GEMM. ---
    let big = Layer {
        c: 8,
        h: 19,
        w: 19,
        kh: 4,
        kw: 4,
        f: 128,
    };
    assert_eq!(
        (big.k(), big.n()),
        (128, 256),
        "dims align to the test blocking"
    );
    let input: Vec<f64> = random_matrix(big.c * big.h * big.w, 1, 11).into_vec();
    let filters = random_matrix(big.f, big.k(), 12);
    let patches = big.im2col(&input);
    let mut out = Matrix::zeros(big.f, big.n());
    let report = dgemm(Variant::Sched, 1.0, &filters, &patches, 0.0, &mut out).expect("conv GEMM");
    let truth = big.conv_direct(&input, &filters);
    let err = big.max_err(&out, &truth);
    let tol = 8.0 * big.k() as f64 * filters.max_abs() * patches.max_abs() * f64::EPSILON;
    println!(
        "conv 8x19x19 * 128 filters (4x4) as a {}x{}x{} GEMM on the simulator",
        big.f,
        big.n(),
        big.k()
    );
    println!("  max |gemm - direct conv| = {err:.3e} (tolerance {tol:.3e})");
    assert!(err <= tol);
    println!(
        "  DMA: {} B, mesh: {} B",
        report.stats.dma.total_bytes(),
        report.stats.mesh.bytes_sent()
    );

    // --- A mini-batch of small layers through the batched path:
    // one whole product per CPE. Working set per item must fit one
    // 64 KB LDM: 16·16 + 16·100 + 16·100 = 3456 doubles. ---
    let small = Layer {
        c: 4,
        h: 11,
        w: 11,
        kh: 2,
        kw: 2,
        f: 16,
    };
    assert_eq!((small.k(), small.n()), (16, 100));
    let batch_size = 96; // more items than CPEs: round-robin wraps
    let inputs: Vec<Vec<f64>> = (0..batch_size)
        .map(|i| random_matrix(small.c * small.h * small.w, 1, 100 + i as u64).into_vec())
        .collect();
    let small_filters = random_matrix(small.f, small.k(), 13);
    let patch_mats: Vec<Matrix> = inputs.iter().map(|inp| small.im2col(inp)).collect();
    let filter_mats: Vec<Matrix> = (0..batch_size).map(|_| small_filters.clone()).collect();
    let mut outs: Vec<Matrix> = (0..batch_size)
        .map(|_| Matrix::zeros(small.f, small.n()))
        .collect();
    let stats =
        dgemm_batched(1.0, &filter_mats, &patch_mats, 0.0, &mut outs).expect("batched conv");

    let mut worst: f64 = 0.0;
    for (img, out_i) in outs.iter().enumerate() {
        let truth = small.conv_direct(&inputs[img], &small_filters);
        worst = worst.max(small.max_err(out_i, &truth));
    }
    let small_tol = 8.0 * small.k() as f64 * small_filters.max_abs() * f64::EPSILON * 2.0;
    println!(
        "\nbatched mode: {batch_size} images of 4x11x11, one {}x{}x{} GEMM per CPE round-robin",
        small.f,
        small.n(),
        small.k()
    );
    println!("  max error over the batch = {worst:.3e}");
    assert!(
        worst <= small_tol,
        "batched error {worst:.3e} vs {small_tol:.3e}"
    );
    println!(
        "  DMA: {} B over {} descriptors",
        stats.dma.total_bytes(),
        stats.dma.descriptors
    );
    println!("\nboth convolution lowerings verified against direct convolution.");
}
