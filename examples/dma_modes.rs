//! Tour of the five DMA distribution modes on the functional
//! simulator: distribute one matrix five ways and show what lands in
//! each CPE's LDM.
//!
//! ```text
//! cargo run --release --example dma_modes
//! ```

use std::sync::Mutex;
use sw26010_dgemm::mem::dma::MatRegion;
use sw26010_dgemm::mem::HostMatrix;
use sw26010_dgemm::sim::CoreGroup;

fn main() {
    let mut cg = CoreGroup::new();
    // A 128×8 matrix whose element (r, c) encodes its own coordinates.
    let mat = cg
        .mem
        .install(HostMatrix::from_fn(128, 8, |r, c| (1000 * c + r) as f64))
        .unwrap();

    let firsts = Mutex::new(vec![(0usize, 0.0f64, 0.0f64, 0.0f64); 64]);
    let firsts_ref = &firsts;
    let stats = cg.run(move |ctx| {
        // PE_MODE: each CPE privately loads one 16-row stripe.
        let pe_buf = ctx.ldm.alloc(16).unwrap();
        let id = ctx.coord.id();
        ctx.dma_pe_get(MatRegion::new(mat, (id % 8) * 16, id / 8, 16, 1), pe_buf)
            .unwrap();

        // BCAST_MODE: everyone gets the same column.
        let bc_buf = ctx.ldm.alloc(128).unwrap();
        ctx.dma_bcast_get(MatRegion::new(mat, 0, 7, 128, 1), bc_buf)
            .unwrap();

        // ROW_MODE: each mesh row collectively loads one column,
        // interleaved in 16 B slices.
        let row_buf = ctx.ldm.alloc(16).unwrap();
        ctx.dma_row_get(
            MatRegion::new(mat, 0, ctx.coord.row as usize, 128, 1),
            row_buf,
        )
        .unwrap();

        let f = (
            id,
            ctx.ldm.slice(pe_buf)[0],
            ctx.ldm.slice(bc_buf)[0],
            ctx.ldm.slice(row_buf)[0],
        );
        firsts_ref.lock().unwrap()[id] = f;
    });

    println!("first double landed in each CPE's LDM (element value = 1000*col + row):\n");
    println!("CPE    PE_MODE   BCAST   ROW_MODE");
    for &(id, pe, bc, row) in firsts.lock().unwrap().iter().take(16) {
        println!("{id:>3}  {pe:>9} {bc:>7} {row:>10}");
    }
    println!("...\n");
    println!(
        "totals: {} B over {} descriptors ({} B PE, {} B bcast, {} B row)",
        stats.dma.total_bytes(),
        stats.dma.descriptors,
        stats.dma.pe_bytes,
        stats.dma.bcast_bytes,
        stats.dma.row_bytes
    );
    println!(
        "\nROW_MODE per-CPE view: CPE at mesh column c holds rows 2c, 2c+1, 2c+16, 2c+17, ..."
    );
    println!("— the Figure 5 interleave the data-thread mapping of §IV-A is built around.");
}
