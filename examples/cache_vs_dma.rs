//! Explicit LDM management vs the software-emulated cache.
//!
//! §II notes the LDM can serve either as "a fast user-controlled
//! cache" (what the paper's DGEMM uses, via explicit DMA) or as "a
//! software-emulated cache that achieves automatic data caching". This
//! example runs the same small per-CPE matrix multiplication both ways
//! on one simulated CPE and compares the main-memory traffic — the
//! quantitative reason the paper manages the LDM explicitly.
//!
//! ```text
//! cargo run --release --example cache_vs_dma
//! ```

use sw26010_dgemm::mem::dma::{self, MatRegion};
use sw26010_dgemm::mem::{HostMatrix, Ldm, MainMemory, SoftCache};

fn main() {
    let (m, n, k) = (32usize, 32, 64);
    let mut mem = MainMemory::new();
    let a = mem
        .install(HostMatrix::from_fn(m, k, |r, c| {
            ((r * 7 + c) % 13) as f64 - 6.0
        }))
        .unwrap();
    let b = mem
        .install(HostMatrix::from_fn(k, n, |r, c| {
            ((r * 5 + c) % 11) as f64 - 5.0
        }))
        .unwrap();
    let c_exp = mem.install(HostMatrix::zeros(m, n)).unwrap();
    let c_cch = mem.install(HostMatrix::zeros(m, n)).unwrap();

    // --- Explicit mode: stage whole panels with three DMA
    // descriptors, compute from LDM, store with one. ---
    let mut ldm = Ldm::new();
    let a_buf = ldm.alloc(m * k).unwrap();
    let b_buf = ldm.alloc(k * n).unwrap();
    let c_buf = ldm.alloc(m * n).unwrap();
    let mut explicit_bytes = 0usize;
    let mut explicit_desc = 0usize;
    for (mat, buf, rows, cols) in [(a, a_buf, m, k), (b, b_buf, k, n)] {
        let r = dma::pe_get(&mem, MatRegion::new(mat, 0, 0, rows, cols), &mut ldm, buf).unwrap();
        explicit_bytes += r.bytes_total;
        explicit_desc += 1;
    }
    {
        // Compute C = A·B entirely in LDM.
        let (a_lo, a_hi) = (a_buf.offset(), a_buf.offset() + a_buf.len());
        let (b_lo, b_hi) = (b_buf.offset(), b_buf.offset() + b_buf.len());
        let raw = ldm.raw_mut();
        for j in 0..n {
            for i in 0..m {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += raw[a_lo + l * m + i] * raw[b_lo + j * k + l];
                }
                let _ = (a_hi, b_hi);
                raw[c_buf.offset() + j * m + i] = acc;
            }
        }
    }
    let r = dma::pe_put(&mem, MatRegion::new(c_exp, 0, 0, m, n), &ldm, c_buf).unwrap();
    explicit_bytes += r.bytes_total;
    explicit_desc += 1;

    // --- Automatic mode: the same triple loop through a software
    // cache (1 KB per operand — LDM-realistic once real block sizes
    // are at play). ---
    let mut ldm2 = Ldm::new();
    let ca_buf = ldm2.alloc(8 * 16).unwrap();
    let cb_buf = ldm2.alloc(8 * 16).unwrap();
    let cc_buf = ldm2.alloc(8 * 16).unwrap();
    let mut ca = SoftCache::new(&mem, a, ca_buf).unwrap();
    let mut cb = SoftCache::new(&mem, b, cb_buf).unwrap();
    let mut cc = SoftCache::new(&mem, c_cch, cc_buf).unwrap();
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for l in 0..k {
                acc += ca.read(&mem, &mut ldm2, i, l).unwrap()
                    * cb.read(&mem, &mut ldm2, l, j).unwrap();
            }
            cc.write(&mem, &mut ldm2, i, j, acc).unwrap();
        }
    }
    cc.flush(&mem, &ldm2).unwrap();

    // Results identical?
    let e = mem.extract(c_exp).unwrap();
    let c = mem.extract(c_cch).unwrap();
    assert_eq!(e, c, "both modes must compute the same product");

    let cached_desc =
        (ca.stats().misses + cb.stats().misses + cc.stats().misses + cc.stats().writebacks)
            as usize;
    let cached_bytes = cached_desc * 128;
    println!("same {m}x{n}x{k} product, two LDM disciplines (one CPE):\n");
    println!("                     descriptors      bytes    miss ratio");
    println!("explicit DMA         {explicit_desc:>11}  {explicit_bytes:>9}           n/a");
    println!(
        "software cache       {cached_desc:>11}  {cached_bytes:>9}   A {:.1}% / B {:.1}% / C {:.1}%",
        100.0 * ca.stats().miss_ratio(),
        100.0 * cb.stats().miss_ratio(),
        100.0 * cc.stats().miss_ratio()
    );
    println!(
        "\nautomatic caching moves {:.0}x the data and issues {:.0}x the descriptors —",
        cached_bytes as f64 / explicit_bytes as f64,
        cached_desc as f64 / explicit_desc as f64
    );
    println!("the quantitative reason the paper's DGEMM manages the LDM explicitly (§II, §III).");
}
