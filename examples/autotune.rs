//! Block-size auto-tuning — the paper's future-work direction, closed.
//!
//! Enumerates every feasible thread-level blocking for the
//! double-buffered SCHED variant, ranks them with the timing
//! simulator at the paper's sweet-spot size (9216³), and reports where
//! the paper's hand-picked pN = 32, pK = 96 lands.
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use sw26010_dgemm::mem::dma::BandwidthModel;
use sw_dgemm::tuner::tune;
use sw_dgemm::Variant;

fn main() {
    let model = BandwidthModel::calibrated();
    let results = tune(Variant::Sched, 9216, &model).expect("tuning failed");
    println!(
        "{} feasible (pM=16, pN, pK) blockings for double-buffered SCHED\n",
        results.len()
    );
    println!("rank   pN   pK    bN    bK   LDM doubles   Gflops/s");
    for (rank, r) in results.iter().take(12).enumerate() {
        println!(
            "{:>4}  {:>3}  {:>3}  {:>4}  {:>4}  {:>11}  {:>8.1}{}",
            rank + 1,
            r.params.pn,
            r.params.pk,
            r.params.bn(),
            r.params.bk(),
            r.ldm_doubles,
            r.gflops,
            if r.params.pn == 32 && r.params.pk == 96 {
                "   <- paper's choice"
            } else {
                ""
            }
        );
    }
    let paper_rank = results
        .iter()
        .position(|r| r.params.pn == 32 && r.params.pk == 96)
        .expect("paper blocking feasible");
    let best = &results[0];
    let paper = &results[paper_rank];
    println!(
        "\npaper's (pN=32, pK=96): rank {} of {}, {:.1} Gflops vs best {:.1} ({:+.2}%)",
        paper_rank + 1,
        results.len(),
        paper.gflops,
        best.gflops,
        100.0 * (paper.gflops / best.gflops - 1.0)
    );
}
