//! Block-size auto-tuning — the paper's future-work direction, closed.
//!
//! Runs the staged search for the double-buffered SCHED variant at the
//! paper's sweet-spot size (9216³): enumerate every legal
//! (pM, pN, pK) × (rM, rN) blocking, prune with the §IV analytic model
//! and the static stall prover (no simulation), then time only the
//! surviving top-k — and reports where the paper's hand-picked
//! pN = 32, pK = 96 lands.
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use sw26010_dgemm::mem::dma::BandwidthModel;
use sw_dgemm::tuner::{search, TuneRequest};
use sw_dgemm::Variant;

fn main() {
    let model = BandwidthModel::calibrated();
    let req = TuneRequest {
        top_k: 16,
        ..TuneRequest::square(Variant::Sched, 9216)
    };
    let outcome = search(&req, &model).expect("tuning failed");
    let s = outcome.stats;
    println!(
        "staged search, double-buffered SCHED at 9216^3:\n\
         {} register tiles considered ({} supported by the generator), \
         {} blockings enumerated\n\
         -> {} feasible after validate + i-cache lint \
         -> {} timed ({:.1}% pruned by the analytic + stall-prover rank)\n",
        s.register_tiles,
        s.register_tiles_supported,
        s.enumerated,
        s.feasible,
        s.timed,
        s.pruned_pct()
    );
    println!("rank   pN   pK    bN    bK   LDM doubles   Gflops/s");
    for (rank, r) in outcome.results.iter().take(12).enumerate() {
        println!(
            "{:>4}  {:>3}  {:>3}  {:>4}  {:>4}  {:>11}  {:>8.1}{}",
            rank + 1,
            r.params.pn,
            r.params.pk,
            r.params.bn(),
            r.params.bk(),
            r.ldm_doubles,
            r.gflops,
            if r.params.pn == 32 && r.params.pk == 96 {
                "   <- paper's choice"
            } else {
                ""
            }
        );
    }
    let paper_rank = outcome
        .results
        .iter()
        .position(|r| r.params.pn == 32 && r.params.pk == 96)
        .expect("paper blocking is always seeded into the timed stage");
    let best = &outcome.results[0];
    let paper = &outcome.results[paper_rank];
    println!(
        "\npaper's (pN=32, pK=96): rank {} of {} timed, {:.1} Gflops vs best {:.1} ({:+.2}%)",
        paper_rank + 1,
        outcome.results.len(),
        paper.gflops,
        best.gflops,
        100.0 * (paper.gflops / best.gflops - 1.0)
    );
}
