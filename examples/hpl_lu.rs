//! HPL-style blocked LU factorization with the simulated DGEMM doing
//! the trailing-matrix updates.
//!
//! The paper motivates DGEMM as "a performance-critical basis in the
//! HPL package"; this example shows the dependency for real: a
//! right-looking blocked LU *with partial pivoting* (`sw-linalg`)
//! whose rank-`nb` trailing updates `A22 ← A22 − L21·U12` — the O(n³)
//! bulk of HPL — run as `C = −1·A·B + 1·C` on the simulated core
//! group, followed by a residual check and a solve.
//!
//! ```text
//! cargo run --release --example hpl_lu
//! ```

use sw_dgemm::gen::random_matrix;
use sw_dgemm::{Matrix, Variant};
use sw_linalg::{lu_factor, lu_residual, lu_solve, Backend, GemmBackend};

fn main() {
    let n = 512;
    let nb = 64;
    let a = random_matrix(n, n, 7);

    println!("factoring a {n}x{n} matrix, panel width {nb}, trailing updates on the simulator...");
    let backend = Backend::Simulated(Variant::Sched);
    let f = lu_factor(&a, nb, &backend).expect("LU factorization");

    let swaps = f.piv.iter().enumerate().filter(|&(i, &p)| p != i).count();
    println!("  partial pivoting performed {swaps} row swaps over {n} steps");

    let res = lu_residual(&a, &f);
    let scale = a.max_abs() * n as f64 * f64::EPSILON;
    println!("  max |P*A - L*U| = {res:.3e} (scale {scale:.3e})");
    assert!(res < 128.0 * scale, "LU residual too large");

    // Solve A·x = b for a known solution and report the error.
    let xs = random_matrix(n, 1, 8);
    let mut b = Matrix::zeros(n, 1);
    Backend::Host.gemm(1.0, &a, &xs, 0.0, &mut b).unwrap();
    let x = lu_solve(&f, &b).expect("triangular solves");
    println!("  solve error |x - x*|_max = {:.3e}", x.max_abs_diff(&xs));
    assert!(x.max_abs_diff(&xs) < 1e-6);

    // Where did the flops go? 2/3·n³ total, almost all in the GEMM.
    let total = 2.0 * (n as f64).powi(3) / 3.0;
    let mut gemm_flops = 0.0;
    for k0 in (0..n).step_by(nb) {
        let rest = (n - k0).saturating_sub(nb);
        gemm_flops += 2.0 * rest as f64 * rest as f64 * nb.min(n - k0) as f64;
    }
    println!(
        "  {:.1}% of the {:.2e} factorization flops ran as simulated DGEMM",
        100.0 * gemm_flops / total,
        total
    );
    println!("residual OK — the simulated DGEMM is HPL-grade.");
}
