//! Quickstart: run the paper's DGEMM on the simulated core group and
//! check it against a host reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sw_dgemm::gen::random_matrix;
use sw_dgemm::reference::{dgemm_naive, gemm_tolerance};
use sw_dgemm::timing::estimate;
use sw_dgemm::{dgemm, Variant};

fn main() {
    // --- Functional mode: really compute C = αAB + βC on 64 simulated
    // CPE threads with DMA, LDM blocking and register-communication
    // data sharing. ---
    let (m, n, k) = (256, 128, 256);
    let (alpha, beta) = (1.5, 0.5);
    let a = random_matrix(m, k, 1);
    let b = random_matrix(k, n, 2);
    let mut c = random_matrix(m, n, 3);
    let mut expect = c.clone();

    let report = dgemm(Variant::Sched, alpha, &a, &b, beta, &mut c).expect("simulated DGEMM");
    dgemm_naive(alpha, &a, &b, beta, &mut expect);
    let err = c.max_abs_diff(&expect);
    let tol = gemm_tolerance(&a, &b, alpha);

    println!("functional SCHED DGEMM, {m}x{n}x{k}:");
    println!("  max |simulated - reference| = {err:.3e} (tolerance {tol:.3e})");
    assert!(err <= tol);
    println!(
        "  DMA traffic: {} B over {} descriptors",
        report.stats.dma.total_bytes(),
        report.stats.dma.descriptors
    );
    println!(
        "  mesh traffic: {} B in 256-bit broadcasts",
        report.stats.mesh.bytes_sent()
    );
    println!("  host wall time: {:?}", report.stats.wall);

    // --- Timing mode: estimate sustained performance at the paper's
    // production sizes for the whole optimization ladder. ---
    println!("\ntiming mode at m = n = k = 9216 (paper's Figure 6 point):");
    for v in Variant::ALL {
        let t = estimate(v, 9216, 9216, 9216).expect("estimate");
        println!(
            "  {:<6} {:7.1} Gflops/s  ({:4.1}% of the 742.4 peak)",
            v.name(),
            t.gflops,
            100.0 * t.efficiency
        );
    }

    // --- The full processor: all four core groups of the SW26010. ---
    let four = sw_dgemm::estimate_multi_cg(Variant::Sched, 4, 9216, 9216, 9216).expect("multi-CG");
    println!(
        "\nfull 4-CG processor: {:.1} Gflops/s ({:.1}% of the 2969.6 chip peak)",
        four.gflops,
        100.0 * four.efficiency
    );
}
